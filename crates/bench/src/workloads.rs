//! Reusable workload kernels, shared by the Criterion benches and the
//! experiments binary so both measure exactly the same code.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use machk_core::{
    Backoff, ComplexLock, Kobj, ObjRef, RawSimpleLock, Refable, RwData, SimpleLocked, SpinPolicy,
    UpgradeFailed,
};
use machk_ipc::{DispatchTable, KernError, Message, Port, RefSemantics, RpcStats};
use machk_kernel::{MonoTask, Task};
use machk_vm::{OrderingDiscipline, PageId, PvSystem, VmObject};

use crate::util::{ops_per_sec, run_concurrent};

// ---------------------------------------------------------------- E1

/// E1: increment a shared counter under a simple lock with the given
/// acquisition policy; returns aggregate ops/s.
pub fn simple_lock_counter(
    policy: SpinPolicy,
    backoff: Backoff,
    threads: usize,
    iters: u64,
) -> f64 {
    let lock = RawSimpleLock::with_policy(policy, backoff);
    let mut counter = 0u64;
    let cp = &mut counter as *mut u64 as usize;
    let elapsed = run_concurrent(threads, |_t| {
        for _ in 0..iters {
            lock.lock_raw();
            // Tiny critical section, as in kernel hot paths.
            unsafe {
                let p = cp as *mut u64;
                p.write(p.read().wrapping_add(1));
            }
            lock.unlock_raw();
        }
    });
    assert_eq!(counter, threads as u64 * iters);
    ops_per_sec(threads as u64 * iters, elapsed)
}

/// E1 (ablation): fraction of first-try acquisitions under the given
/// policy and thread count (checks "most locks ... are acquired on the
/// first attempt").
pub fn simple_lock_first_try_rate(policy: SpinPolicy, threads: usize, iters: u64) -> f64 {
    use machk_core::sync::InstrumentedSimpleLock;
    let lock = InstrumentedSimpleLock::with_policy(policy, Backoff::NONE);
    run_concurrent(threads, |_t| {
        for _ in 0..iters {
            lock.lock().unlock();
        }
    });
    lock.stats().snapshot().first_try_rate()
}

// ---------------------------------------------------------------- E2

/// How kernel entry is serialized in the E2 granularity comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Granularity {
    /// One lock around the whole "kernel" (all structures).
    GlobalLock,
    /// A master processor: every operation is funneled through one
    /// service thread (the paper's `[16]` design).
    MasterProcessor,
    /// A lock per data structure (Mach's choice).
    PerStructure,
}

impl Granularity {
    /// All variants for sweeps.
    pub const ALL: [Granularity; 3] = [
        Granularity::GlobalLock,
        Granularity::MasterProcessor,
        Granularity::PerStructure,
    ];

    /// Table label.
    pub fn name(self) -> &'static str {
        match self {
            Granularity::GlobalLock => "global-lock",
            Granularity::MasterProcessor => "master-cpu",
            Granularity::PerStructure => "per-structure",
        }
    }
}

/// Simulated per-operation work inside the critical section: touch the
/// structure a few times so lock hold time is non-trivial.
fn structure_op(slot: &mut [u64; 8]) {
    for (i, word) in slot.iter_mut().enumerate() {
        *word = word
            .wrapping_mul(6364136223846793005)
            .wrapping_add(i as u64 + 1);
    }
}

/// E2: `threads` workers each perform `iters` operations on a bank of
/// `nstructs` independent structures under the given granularity;
/// returns aggregate ops/s.
pub fn granularity_bank(g: Granularity, nstructs: usize, threads: usize, iters: u64) -> f64 {
    match g {
        Granularity::GlobalLock => {
            let bank = SimpleLocked::new(vec![[0u64; 8]; nstructs]);
            let elapsed = run_concurrent(threads, |t| {
                let mut idx = t;
                for _ in 0..iters {
                    idx = (idx * 1103515245 + 12345) % nstructs.max(1);
                    let mut b = bank.lock();
                    structure_op(&mut b[idx]);
                }
            });
            ops_per_sec(threads as u64 * iters, elapsed)
        }
        Granularity::PerStructure => {
            let bank: Vec<SimpleLocked<[u64; 8]>> = (0..nstructs)
                .map(|_| SimpleLocked::new([0u64; 8]))
                .collect();
            let elapsed = run_concurrent(threads, |t| {
                let mut idx = t;
                for _ in 0..iters {
                    idx = (idx * 1103515245 + 12345) % nstructs.max(1);
                    structure_op(&mut bank[idx].lock());
                }
            });
            ops_per_sec(threads as u64 * iters, elapsed)
        }
        Granularity::MasterProcessor => {
            // Requests funneled to a single service thread over a
            // channel; callers spin-wait for their reply flag.
            type Req = (usize, Arc<AtomicBool>);
            let (tx, rx) = mpsc::channel::<Req>();
            let stop = Arc::new(AtomicBool::new(false));
            let stop2 = Arc::clone(&stop);
            let master = std::thread::spawn(move || {
                let mut bank = vec![[0u64; 8]; nstructs];
                while let Ok((idx, done)) = rx.recv() {
                    structure_op(&mut bank[idx]);
                    done.store(true, Ordering::Release);
                    if stop2.load(Ordering::Relaxed) {
                        // Drain whatever remains, then exit on channel
                        // close.
                    }
                }
            });
            let elapsed = run_concurrent(threads, |t| {
                let tx = tx.clone();
                let mut idx = t;
                let done = Arc::new(AtomicBool::new(false));
                for _ in 0..iters {
                    idx = (idx * 1103515245 + 12345) % nstructs.max(1);
                    done.store(false, Ordering::Relaxed);
                    tx.send((idx, Arc::clone(&done))).unwrap();
                    let mut spins = 0u32;
                    while !done.load(Ordering::Acquire) {
                        std::hint::spin_loop();
                        spins += 1;
                        if spins >= 256 {
                            std::thread::yield_now();
                            spins = 0;
                        }
                    }
                }
            });
            stop.store(true, Ordering::Relaxed);
            drop(tx);
            master.join().unwrap();
            ops_per_sec(threads as u64 * iters, elapsed)
        }
    }
}

// ---------------------------------------------------------------- E3

/// E3: readers/writer mix over a shared table under a complex lock.
/// `write_pct` of operations are writes. Returns aggregate ops/s.
pub fn complex_lock_mix(write_pct: u32, threads: usize, iters: u64) -> f64 {
    let table = RwData::new(vec![0u64; 256], true);
    let elapsed = run_concurrent(threads, |t| {
        let mut x = (t as u64).wrapping_mul(0x9E3779B97F4A7C15) | 1;
        for _ in 0..iters {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let slot = (x >> 33) as usize % 256;
            if (x % 100) < write_pct as u64 {
                let mut w = table.write();
                w[slot] = w[slot].wrapping_add(1);
            } else {
                let r = table.read();
                std::hint::black_box(r[slot]);
            }
        }
    });
    ops_per_sec(threads as u64 * iters, elapsed)
}

/// E3 (starvation probe): (mean, worst) writer wait in µs while
/// `threads` readers hammer the lock for `dur`.
pub fn writer_latency_under_readers(threads: usize, dur: Duration) -> (f64, f64) {
    let lock = ComplexLock::new(true);
    let stop = AtomicBool::new(false);
    let worst_ns = AtomicU64::new(0);
    let total_ns = AtomicU64::new(0);
    let acquisitions = AtomicU64::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                while !stop.load(Ordering::Relaxed) {
                    let r = lock.read();
                    std::hint::black_box(&r);
                }
            });
        }
        s.spawn(|| {
            let end = std::time::Instant::now() + dur;
            while std::time::Instant::now() < end {
                let t0 = std::time::Instant::now();
                let w = lock.write();
                let waited = t0.elapsed().as_nanos() as u64;
                worst_ns.fetch_max(waited, Ordering::Relaxed);
                total_ns.fetch_add(waited, Ordering::Relaxed);
                acquisitions.fetch_add(1, Ordering::Relaxed);
                drop(w);
                std::thread::yield_now();
            }
            stop.store(true, Ordering::Relaxed);
        });
    });
    let n = acquisitions.load(Ordering::Relaxed).max(1);
    (
        total_ns.load(Ordering::Relaxed) as f64 / n as f64 / 1_000.0,
        worst_ns.load(Ordering::Relaxed) as f64 / 1_000.0,
    )
}

// ---------------------------------------------------------------- E4

/// Outcome of an E4 run: throughput plus upgrade behaviour.
#[derive(Debug, Clone, Copy)]
pub struct UpgradeOutcome {
    /// Aggregate ops/s.
    pub ops_per_sec: f64,
    /// Upgrade attempts that failed and lost the read lock (upgrade
    /// strategy only).
    pub failed_upgrades: u64,
    /// Total operations that needed the write side.
    pub writes: u64,
}

/// E4, strategy A: lookup under a read lock, upgrade when an insert is
/// needed, with the paper's retry-from-scratch recovery on failure.
pub fn lookup_insert_upgrade(threads: usize, iters: u64, miss_pct: u32) -> UpgradeOutcome {
    let table = RwData::new(std::collections::HashSet::<u64>::new(), true);
    let failed = AtomicU64::new(0);
    let writes = AtomicU64::new(0);
    let elapsed = run_concurrent(threads, |t| {
        let mut x = (t as u64).wrapping_mul(0x9E3779B97F4A7C15) | 1;
        for _ in 0..iters {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // A "miss" means the key is fresh and must be inserted.
            let key = if (x % 100) < miss_pct as u64 {
                x
            } else {
                x % 64
            };
            'retry: loop {
                let r = table.read();
                if r.contains(&key) {
                    break 'retry;
                }
                match r.upgrade() {
                    Ok(mut w) => {
                        w.insert(key);
                        writes.fetch_add(1, Ordering::Relaxed);
                        break 'retry;
                    }
                    Err(UpgradeFailed) => {
                        // Read lock lost: the recovery logic the paper
                        // complains about — restart the whole lookup.
                        failed.fetch_add(1, Ordering::Relaxed);
                        continue 'retry;
                    }
                }
            }
        }
    });
    UpgradeOutcome {
        ops_per_sec: ops_per_sec(threads as u64 * iters, elapsed),
        failed_upgrades: failed.load(Ordering::Relaxed),
        writes: writes.load(Ordering::Relaxed),
    }
}

/// E4, strategy B: the paper's recommended alternative — lock for
/// write, do the update if needed, downgrade for any remaining reads.
pub fn lookup_insert_write_downgrade(threads: usize, iters: u64, miss_pct: u32) -> UpgradeOutcome {
    let table = RwData::new(std::collections::HashSet::<u64>::new(), true);
    let writes = AtomicU64::new(0);
    let elapsed = run_concurrent(threads, |t| {
        let mut x = (t as u64).wrapping_mul(0x9E3779B97F4A7C15) | 1;
        for _ in 0..iters {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = if (x % 100) < miss_pct as u64 {
                x
            } else {
                x % 64
            };
            // Quick optimistic read first.
            {
                let r = table.read();
                if r.contains(&key) {
                    continue;
                }
            }
            let mut w = table.write();
            if !w.contains(&key) {
                w.insert(key);
                writes.fetch_add(1, Ordering::Relaxed);
            }
            // Downgrade (cannot fail) for the post-update read.
            let r = w.downgrade();
            std::hint::black_box(r.len());
        }
    });
    UpgradeOutcome {
        ops_per_sec: ops_per_sec(threads as u64 * iters, elapsed),
        failed_upgrades: 0,
        writes: writes.load(Ordering::Relaxed),
    }
}

// ---------------------------------------------------------------- E5

/// Which reference-counting implementation E5 measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefImpl {
    /// Mach's protocol: count under the object's simple lock
    /// (`ObjRef`).
    LockedCount,
    /// Lock-free atomic count (`std::sync::Arc`).
    Arc,
    /// Sharded count with drain-to-exact final release
    /// (`ShardedRefCount` behind the same `ObjRef` protocol).
    Sharded,
}

impl RefImpl {
    /// All variants.
    pub const ALL: [RefImpl; 3] = [RefImpl::LockedCount, RefImpl::Arc, RefImpl::Sharded];

    /// Table label.
    pub fn name(self) -> &'static str {
        match self {
            RefImpl::LockedCount => "lock+count (Mach)",
            RefImpl::Arc => "atomic (Arc)",
            RefImpl::Sharded => "sharded",
        }
    }
}

/// E5: clone/release storm on a single shared object. Returns ops/s
/// (one op = clone + release).
pub fn refcount_storm(imp: RefImpl, threads: usize, iters: u64) -> f64 {
    match imp {
        RefImpl::LockedCount | RefImpl::Sharded => {
            let obj: ObjRef<Kobj<u64>> = match imp {
                RefImpl::Sharded => Kobj::create_sharded(0u64),
                _ => Kobj::create(0u64),
            };
            let elapsed = run_concurrent(threads, |_t| {
                for _ in 0..iters {
                    let c = obj.clone();
                    std::hint::black_box(&c);
                    drop(c);
                }
            });
            ops_per_sec(threads as u64 * iters, elapsed)
        }
        RefImpl::Arc => {
            let obj = Arc::new(0u64);
            let elapsed = run_concurrent(threads, |_t| {
                for _ in 0..iters {
                    let c = Arc::clone(&obj);
                    std::hint::black_box(&c);
                    drop(c);
                }
            });
            ops_per_sec(threads as u64 * iters, elapsed)
        }
    }
}

/// E5 (churn): create an object, clone it `fanout` times across the
/// releasing side, destroy. Returns objects/s.
pub fn refcount_churn(imp: RefImpl, threads: usize, iters: u64, fanout: usize) -> f64 {
    match imp {
        RefImpl::LockedCount | RefImpl::Sharded => {
            let elapsed = run_concurrent(threads, |_t| {
                for _ in 0..iters {
                    let obj: ObjRef<Kobj<u64>> = match imp {
                        RefImpl::Sharded => Kobj::create_sharded(0u64),
                        _ => Kobj::create(0u64),
                    };
                    let clones: Vec<_> = (0..fanout).map(|_| obj.clone()).collect();
                    drop(clones);
                    drop(obj);
                }
            });
            ops_per_sec(threads as u64 * iters, elapsed)
        }
        RefImpl::Arc => {
            let elapsed = run_concurrent(threads, |_t| {
                for _ in 0..iters {
                    let obj = Arc::new(0u64);
                    let clones: Vec<_> = (0..fanout).map(|_| Arc::clone(&obj)).collect();
                    drop(clones);
                    drop(obj);
                }
            });
            ops_per_sec(threads as u64 * iters, elapsed)
        }
    }
}

/// E5 (adopted call sites): clone/release storm on the real kernel
/// objects whose headers are sharded in production code — `Task` and
/// `VmObject` — exercising the unchanged `ObjRef` protocol end to end.
/// Returns ops/s (one op = clone + release).
pub fn adopted_ref_storm(use_task: bool, threads: usize, iters: u64) -> f64 {
    if use_task {
        let task = Task::create();
        assert!(task.header().is_sharded(), "Task must adopt the sharded count");
        let elapsed = run_concurrent(threads, |_t| {
            for _ in 0..iters {
                let c = task.clone();
                std::hint::black_box(&c);
                drop(c);
            }
        });
        ops_per_sec(threads as u64 * iters, elapsed)
    } else {
        let obj = VmObject::create();
        assert!(obj.header().is_sharded(), "VmObject must adopt the sharded count");
        let elapsed = run_concurrent(threads, |_t| {
            for _ in 0..iters {
                let c = obj.clone();
                std::hint::black_box(&c);
                drop(c);
            }
        });
        ops_per_sec(threads as u64 * iters, elapsed)
    }
}

// ---------------------------------------------------------------- E6

/// E6: ping-pong handoffs through the event-wait mechanism; returns
/// handoffs/s across `pairs` producer/consumer pairs.
pub fn event_handoff(pairs: usize, iters: u64) -> f64 {
    let elapsed = run_concurrent(pairs * 2, |t| {
        // Threads 2k and 2k+1 form a pair around a shared mailbox.
        let pair = t / 2;
        let is_producer = t % 2 == 0;
        mailbox_pingpong(pair, is_producer, iters);
    });
    ops_per_sec(pairs as u64 * iters, elapsed)
}

// A bank of mailboxes for the handoff benchmark; static so both sides
// of a pair find the same one.
const MAILBOXES: usize = 64;
static MAILBOX_BANK: [MailboxSlot; MAILBOXES] = [const {
    MailboxSlot {
        full: SimpleLocked::new(false),
    }
}; MAILBOXES];

struct MailboxSlot {
    full: SimpleLocked<bool>,
}

fn mailbox_pingpong(pair: usize, is_producer: bool, iters: u64) {
    use machk_core::{assert_wait, thread_block, thread_wakeup, Event};
    let slot = &MAILBOX_BANK[pair % MAILBOXES];
    let ev_full = Event::from_addr(slot);
    let ev_empty = ev_full.offset(1);
    for _ in 0..iters {
        if is_producer {
            loop {
                {
                    let mut full = slot.full.lock();
                    if !*full {
                        *full = true;
                        drop(full);
                        thread_wakeup(ev_full);
                        break;
                    }
                    assert_wait(ev_empty, false);
                }
                thread_block();
            }
        } else {
            loop {
                {
                    let mut full = slot.full.lock();
                    if *full {
                        *full = false;
                        drop(full);
                        thread_wakeup(ev_empty);
                        break;
                    }
                    assert_wait(ev_full, false);
                }
                thread_block();
            }
        }
    }
}

/// E6 baseline: the same ping-pong over `std::sync::Mutex` +
/// `Condvar`, for calibration against the host's native primitive.
pub fn condvar_handoff(pairs: usize, iters: u64) -> f64 {
    let slots: Vec<Arc<(std::sync::Mutex<bool>, std::sync::Condvar)>> = (0..pairs)
        .map(|_| Arc::new((std::sync::Mutex::new(false), std::sync::Condvar::new())))
        .collect();
    let elapsed = run_concurrent(pairs * 2, |t| {
        let pair = t / 2;
        let is_producer = t % 2 == 0;
        let (m, cv) = &*slots[pair];
        for _ in 0..iters {
            let mut full = m.lock().unwrap();
            if is_producer {
                while *full {
                    full = cv.wait(full).unwrap();
                }
                *full = true;
            } else {
                while !*full {
                    full = cv.wait(full).unwrap();
                }
                *full = false;
            }
            cv.notify_all();
        }
    });
    ops_per_sec(pairs as u64 * iters, elapsed)
}

// ---------------------------------------------------------------- E8

/// Task flavour measured by E8.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskFlavor {
    /// Two locks: task lock + IPC translation lock (Mach, section 5).
    TwoLock,
    /// One lock serializing both (the ablation).
    OneLock,
}

impl TaskFlavor {
    /// Both flavours.
    pub const ALL: [TaskFlavor; 2] = [TaskFlavor::TwoLock, TaskFlavor::OneLock];

    /// Table label.
    pub fn name(self) -> &'static str {
        match self {
            TaskFlavor::TwoLock => "two-lock (Mach)",
            TaskFlavor::OneLock => "one-lock",
        }
    }
}

/// E8: a mixed workload against one task: `translate_pct`% port-name
/// translations, the rest suspend/resume pairs. Returns aggregate
/// ops/s.
pub fn task_mixed_ops(flavor: TaskFlavor, translate_pct: u32, threads: usize, iters: u64) -> f64 {
    match flavor {
        TaskFlavor::TwoLock => {
            let task = Task::create();
            let name = task.port_insert(Port::create());
            let elapsed = run_concurrent(threads, |t| {
                let mut x = (t as u64).wrapping_mul(0x9E3779B97F4A7C15) | 1;
                for _ in 0..iters {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    if (x % 100) < translate_pct as u64 {
                        std::hint::black_box(task.port_translate(name));
                    } else {
                        let _ = task.suspend();
                        let _ = task.resume();
                    }
                }
            });
            task.terminate_simple().unwrap();
            ops_per_sec(threads as u64 * iters, elapsed)
        }
        TaskFlavor::OneLock => {
            let task = MonoTask::create();
            let name = task.port_insert(Port::create());
            let elapsed = run_concurrent(threads, |t| {
                let mut x = (t as u64).wrapping_mul(0x9E3779B97F4A7C15) | 1;
                for _ in 0..iters {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    if (x % 100) < translate_pct as u64 {
                        std::hint::black_box(task.port_translate(name));
                    } else {
                        let _ = task.suspend();
                        let _ = task.resume();
                    }
                }
            });
            task.terminate().unwrap();
            ops_per_sec(threads as u64 * iters, elapsed)
        }
    }
}

// ---------------------------------------------------------------- E9

/// E9: concurrent `pmap_enter`/`pmap_remove` (forward order) and
/// `pmap_page_protect` (reverse order) storms under the given
/// discipline. Returns aggregate ops/s; panics on any pv/pmap
/// inconsistency (deadlocks would hang, which the test-suite variants
/// bound).
pub fn pmap_storm(discipline: OrderingDiscipline, threads: usize, iters: u64) -> f64 {
    let npmaps = threads.max(2);
    let sys = PvSystem::new(npmaps, 64, discipline);
    let elapsed = run_concurrent(threads, |t| {
        let mut x = (t as u64).wrapping_mul(0x9E3779B97F4A7C15) | 1;
        for i in 0..iters {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let pm = t % npmaps;
            let va = 0x1000 * (x % 32);
            let pa = PageId((x % 64) as u32);
            match i % 4 {
                0 | 1 => sys.pmap_enter(pm, va, pa),
                2 => sys.pmap_remove(pm, va),
                _ => {
                    std::hint::black_box(sys.pmap_page_protect(pa));
                }
            }
        }
    });
    // Consistency: every pv mapper translates back to its page.
    for pa in 0..64u32 {
        for (pm, va) in sys.mappers_of(PageId(pa)) {
            assert_eq!(
                sys.pmap(pm).translate(va),
                Some(PageId(pa)),
                "pv/pmap inconsistency under {}",
                discipline.name()
            );
        }
    }
    ops_per_sec(threads as u64 * iters, elapsed)
}

// ---------------------------------------------------------------- E11

/// E11: paging operations racing with object churn. Returns paging
/// ops/s; asserts the termination-exclusion invariant.
pub fn vm_object_paging_storm(threads: usize, iters: u64) -> f64 {
    let obj = VmObject::create();
    let elapsed = run_concurrent(threads, |_t| {
        for _ in 0..iters {
            if let Ok(op) = obj.paging_begin() {
                std::hint::black_box(&op);
                drop(op);
            }
        }
    });
    assert_eq!(obj.paging_in_progress(), 0);
    obj.terminate().unwrap();
    ops_per_sec(threads as u64 * iters, elapsed)
}

// ---------------------------------------------------------------- E12

/// E12 setup: a counter object behind a port plus its dispatch table.
pub fn rpc_setup() -> (DispatchTable, ObjRef<Kobj<u64>>, ObjRef<Port>) {
    const OP_ADD: u32 = 1;
    let mut table = DispatchTable::new();
    table.register::<Kobj<u64>>(OP_ADD, |obj, msg| {
        let d = msg.int_at(0).ok_or(KernError::InvalidArgument)?;
        let v = obj.with_active(|n| {
            *n = n.wrapping_add(d);
            *n
        })?;
        Ok(Message::new(OP_ADD).with_int(v))
    });
    let obj = Kobj::create(0u64);
    let port = Port::create();
    port.set_kernel_object(obj.clone().into_dyn());
    (table, obj, port)
}

/// E12: RPC op storm under the given reference semantics; returns
/// (ops/s, stats).
pub fn rpc_storm(semantics: RefSemantics, threads: usize, iters: u64) -> (f64, RpcStats) {
    let (table, _obj, port) = rpc_setup();
    let stats = RpcStats::new();
    let elapsed = run_concurrent(threads, |_t| {
        for _ in 0..iters {
            let r = table.msg_rpc(&port, Message::new(1).with_int(1), semantics, &stats);
            std::hint::black_box(r.ok());
        }
    });
    assert!(stats.balanced(), "reference flow must balance");
    (ops_per_sec(threads as u64 * iters, elapsed), stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: usize = 2;
    const N: u64 = 2_000;

    #[test]
    fn e1_kernels_run() {
        for p in SpinPolicy::ALL {
            assert!(simple_lock_counter(p, Backoff::NONE, T, N) > 0.0);
        }
        let r = simple_lock_first_try_rate(SpinPolicy::TasThenTtas, 1, N);
        assert!((0.0..=1.0).contains(&r));
    }

    #[test]
    fn e2_kernels_run() {
        for g in Granularity::ALL {
            assert!(granularity_bank(g, 16, T, 500) > 0.0);
        }
    }

    #[test]
    fn e3_kernels_run() {
        assert!(complex_lock_mix(10, T, N) > 0.0);
        let (mean, worst) = writer_latency_under_readers(2, Duration::from_millis(50));
        assert!(mean >= 0.0 && worst >= mean);
    }

    #[test]
    fn e4_kernels_run() {
        let a = lookup_insert_upgrade(T, N, 30);
        let b = lookup_insert_write_downgrade(T, N, 30);
        assert!(a.ops_per_sec > 0.0 && b.ops_per_sec > 0.0);
        assert!(a.writes > 0 && b.writes > 0);
        assert_eq!(b.failed_upgrades, 0, "downgrade cannot fail");
    }

    #[test]
    fn e5_kernels_run() {
        for imp in RefImpl::ALL {
            assert!(refcount_storm(imp, T, N) > 0.0);
            assert!(refcount_churn(imp, T, 200, 4) > 0.0);
        }
        assert!(adopted_ref_storm(true, T, N) > 0.0);
        assert!(adopted_ref_storm(false, T, N) > 0.0);
    }

    #[test]
    fn e6_kernels_run() {
        assert!(event_handoff(2, 500) > 0.0);
        assert!(condvar_handoff(2, 500) > 0.0);
    }

    #[test]
    fn e8_kernels_run() {
        for f in TaskFlavor::ALL {
            assert!(task_mixed_ops(f, 50, T, N) > 0.0);
        }
    }

    #[test]
    fn e9_kernels_run() {
        for d in OrderingDiscipline::ALL {
            assert!(pmap_storm(d, T, 500) > 0.0);
        }
    }

    #[test]
    fn e11_kernel_runs() {
        assert!(vm_object_paging_storm(T, N) > 0.0);
    }

    #[test]
    fn e15_kernels_run() {
        for imp in TimerImpl::ALL {
            assert!(timer_tick_storm(imp, 2, 1, 2_000) > 0.0);
        }
    }

    #[test]
    fn e12_kernels_run() {
        for s in [RefSemantics::Mach25, RefSemantics::Mach30] {
            let (rate, stats) = rpc_storm(s, T, 500);
            assert!(rate > 0.0);
            assert!(stats.balanced());
        }
    }
}

// ---------------------------------------------------------------- E15

/// Timer implementation measured by E15.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerImpl {
    /// Per-CPU single-writer cells, no locks (Mach's usage-timing
    /// exception, paper section 2).
    LockFree,
    /// The same accounting under per-CPU simple locks.
    Locked,
}

impl TimerImpl {
    /// Both variants.
    pub const ALL: [TimerImpl; 2] = [TimerImpl::LockFree, TimerImpl::Locked];

    /// Table label.
    pub fn name(self) -> &'static str {
        match self {
            TimerImpl::LockFree => "per-cpu cell (Mach)",
            TimerImpl::Locked => "simple lock",
        }
    }
}

/// E15: every CPU ticks its own timer `iters` times while `readers`
/// unbound threads continuously sum the bank. Returns ticks/s.
pub fn timer_tick_storm(imp: TimerImpl, cpus: usize, readers: usize, iters: u64) -> f64 {
    use machk_intr::{LockedTimerBank, Machine, TimeKind, TimerBank};
    let machine = Machine::new(cpus);
    let stop = AtomicBool::new(false);
    enum Bank {
        Free(TimerBank),
        Locked(LockedTimerBank),
    }
    let bank = match imp {
        TimerImpl::LockFree => Bank::Free(TimerBank::new(cpus)),
        TimerImpl::Locked => Bank::Locked(LockedTimerBank::new(cpus)),
    };
    let start = std::time::Instant::now();
    std::thread::scope(|s| {
        // Reader threads (any thread may read).
        for _ in 0..readers {
            let bank = &bank;
            let stop = &stop;
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let t = match bank {
                        Bank::Free(b) => b.totals(),
                        Bank::Locked(b) => b.totals(),
                    };
                    std::hint::black_box(t);
                }
            });
        }
        // One ticking thread per CPU.
        let handles: Vec<_> = machine
            .cpus()
            .iter()
            .map(|cpu| {
                let bank = &bank;
                let cpu = Arc::clone(cpu);
                s.spawn(move || {
                    let _g = cpu.enter();
                    for i in 0..iters {
                        let kind = if i % 4 == 0 {
                            TimeKind::System
                        } else {
                            TimeKind::User
                        };
                        match bank {
                            Bank::Free(b) => b.tick_current(kind, 10),
                            Bank::Locked(b) => b.tick_current(kind, 10),
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
    });
    let elapsed = start.elapsed();
    // Sanity: every tick accounted.
    let total = match &bank {
        Bank::Free(b) => b.totals(),
        Bank::Locked(b) => b.totals(),
    };
    assert_eq!(total.ticks, cpus as u64 * iters);
    ops_per_sec(cpus as u64 * iters, elapsed)
}
