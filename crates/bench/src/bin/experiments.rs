//! The experiments binary: regenerate every table of the reproduction.
//!
//! The source paper has no tables or figures of its own (it is a
//! design/experience paper); DESIGN.md defines experiments E1–E20, one
//! per mechanism or claim in the text, and this binary prints them.
//!
//! Usage:
//!
//! ```text
//! experiments [--quick] [--artifacts DIR] [E1 E7 E10 ...]
//! experiments lockstat [--quick] [--json]
//! experiments e17 --seeds N
//! experiments e18 [--quick] [--sim-seed N]
//! ```
//!
//! `--quick` shrinks iteration counts (used by CI); naming experiment
//! ids runs a subset. Results for the repository's EXPERIMENTS.md come
//! from a `--release` run without `--quick`.
//!
//! `--seeds N` overrides E17's seed count (each seed drives two
//! determinism-probe runs plus four chaos scenarios). Requires a build
//! with `--features fault`.
//!
//! `--artifacts DIR` additionally writes each experiment's
//! `machk-bench/v1` envelope as `BENCH_E01.json` … `BENCH_E20.json`
//! into `DIR` — the files CI uploads as run artifacts and diffs against
//! `bench/baselines/` with `bench-compare`. Feature-gated experiments
//! (E16 obs, E17 fault, E18/E19/E20-sim sim) still emit envelopes when the
//! feature is off, carrying an `*_enabled = 0` exact metric so compare
//! flags a misbuilt trajectory run. Under `--features obs` the E16
//! exporter outputs (`E16.ndjson`, `E16.folded`) are written too.
//!
//! E18 (schedule exploration on simulated hosts) requires a build with
//! `--features sim`; `--sim-seed N` overrides its base scheduler seed
//! (CI runs a small fixed matrix of seeds).
//!
//! `lockstat` runs the E16 workload and prints only the lockstat
//! report (text, or JSON with `--json`) — the `lockstat(1M)`-style
//! entry point. Requires a build with `--features obs`.

use machk_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");

    if args.iter().any(|a| a.eq_ignore_ascii_case("lockstat")) {
        lockstat(quick, args.iter().any(|a| a == "--json"));
        return;
    }

    let seeds: Option<u64> = args
        .iter()
        .position(|a| a == "--seeds")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok());

    let artifacts: Option<String> = args
        .iter()
        .position(|a| a == "--artifacts")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let sim_seed: Option<u64> = args
        .iter()
        .position(|a| a == "--sim-seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok());

    let wanted: Vec<String> = args
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            // Skip flags and the values that belong to value-taking ones.
            !a.starts_with("--")
                && (*i == 0
                    || (args[i - 1] != "--seeds"
                        && args[i - 1] != "--artifacts"
                        && args[i - 1] != "--sim-seed"))
        })
        .map(|(_, a)| a.to_uppercase())
        .collect();

    println!("Locking and Reference Counting in the Mach Kernel (ICPP 1991)");
    println!(
        "reproduction experiment suite — {} mode",
        if quick { "quick" } else { "full" }
    );
    println!(
        "host: {} hardware threads",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(0)
    );

    let mut ran = 0;
    for (id, title, run_report) in experiments::all() {
        if !wanted.is_empty() && !wanted.iter().any(|w| w == id) {
            continue;
        }
        println!("\n################ {id}: {title}");
        let started = std::time::Instant::now();
        // E17/E18 honour their CLI overrides; everything else runs the
        // uniform run_report entry from the experiment table.
        let (table, json) = match id {
            "E17" => {
                let n = seeds.unwrap_or(if quick { 5 } else { 200 });
                experiments::e17_chaos::run_report(n)
            }
            "E18" => experiments::e18_sim::run_report_seeded(quick, sim_seed),
            _ => run_report(quick),
        };
        write_artifact(artifacts.as_deref(), &artifact_name(id), &json);
        if id == "E16" {
            write_e16_exporter_artifacts(artifacts.as_deref());
        }
        print!("{table}");
        println!("  [{id} completed in {:?}]", started.elapsed());
        ran += 1;
    }
    if ran == 0 {
        eprintln!("no experiment matched {wanted:?}; known ids are E1..E20 and `lockstat`");
        std::process::exit(2);
    }
}

/// Zero-padded artifact name for an experiment id: `E7` →
/// `BENCH_E07.json`. Padding keeps directory listings and the
/// bench-compare pairing in experiment order.
fn artifact_name(id: &str) -> String {
    let n: u32 = id
        .trim_start_matches(['E', 'e'])
        .parse()
        .unwrap_or_else(|_| panic!("experiment id {id} is not E<number>"));
    format!("BENCH_E{n:02}.json")
}

/// Write one experiment's JSON summary into the `--artifacts` directory
/// (no-op when the flag is absent).
fn write_artifact(dir: Option<&str>, name: &str, json: &str) {
    let Some(dir) = dir else { return };
    std::fs::create_dir_all(dir).expect("create artifacts dir");
    let path = std::path::Path::new(dir).join(name);
    std::fs::write(&path, format!("{json}\n")).expect("write artifact");
    println!("  [artifact: {}]", path.display());
}

/// After E16 has run with obs, its exporter subscribers hold the
/// NDJSON backlog (whatever arrived after the in-run drain) and the
/// cumulative flamegraph rollup; write both next to the envelopes.
#[cfg(feature = "obs")]
fn write_e16_exporter_artifacts(dir: Option<&str>) {
    if dir.is_none() {
        return;
    }
    let (ndjson, buf, flame) = experiments::e16_lockstat::exporters();
    ndjson.drain().expect("ndjson drain failed");
    let text = String::from_utf8(buf.lock().unwrap().clone()).expect("ndjson not UTF-8");
    write_artifact(dir, "E16.ndjson", text.trim_end());
    write_artifact(
        dir,
        "E16.folded",
        flame.render_folded(machk_obs::FlameMetric::Wait).trim_end(),
    );
}

#[cfg(not(feature = "obs"))]
fn write_e16_exporter_artifacts(_dir: Option<&str>) {}

/// The `lockstat` subcommand: drive the E16 workload, print the report.
#[cfg(feature = "obs")]
fn lockstat(quick: bool, json: bool) {
    // The experiment runner asserts the report's claims as it goes.
    let rendered = experiments::e16_lockstat::run(quick);
    if json {
        println!("{}", machk_obs::Lockstat::collect().render_json());
    } else {
        print!("{rendered}");
    }
}

/// Without the obs feature there is nothing to trace — say so and fail,
/// so scripts notice a mis-built binary.
#[cfg(not(feature = "obs"))]
fn lockstat(_quick: bool, _json: bool) {
    eprintln!("lockstat requires a build with `--features obs` (tracing is compiled out)");
    std::process::exit(2);
}
