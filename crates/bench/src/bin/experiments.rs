//! The experiments binary: regenerate every table of the reproduction.
//!
//! The source paper has no tables or figures of its own (it is a
//! design/experience paper); DESIGN.md defines experiments E1–E15, one
//! per mechanism or claim in the text, and this binary prints them.
//!
//! Usage:
//!
//! ```text
//! experiments [--quick] [E1 E7 E10 ...]
//! experiments lockstat [--quick] [--json]
//! experiments e17 --seeds N
//! ```
//!
//! `--quick` shrinks iteration counts (used by CI); naming experiment
//! ids runs a subset. Results for the repository's EXPERIMENTS.md come
//! from a `--release` run without `--quick`.
//!
//! `--seeds N` overrides E17's seed count (each seed drives two
//! determinism-probe runs plus four chaos scenarios). Requires a build
//! with `--features fault`.
//!
//! `lockstat` runs the E16 workload and prints only the lockstat
//! report (text, or JSON with `--json`) — the `lockstat(1M)`-style
//! entry point. Requires a build with `--features obs`.

use machk_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");

    if args.iter().any(|a| a.eq_ignore_ascii_case("lockstat")) {
        lockstat(quick, args.iter().any(|a| a == "--json"));
        return;
    }

    let seeds: Option<u64> = args
        .iter()
        .position(|a| a == "--seeds")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok());

    let wanted: Vec<String> = args
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            // Skip flags and the value that belongs to --seeds.
            !a.starts_with("--") && (*i == 0 || args[i - 1] != "--seeds")
        })
        .map(|(_, a)| a.to_uppercase())
        .collect();

    println!("Locking and Reference Counting in the Mach Kernel (ICPP 1991)");
    println!(
        "reproduction experiment suite — {} mode",
        if quick { "quick" } else { "full" }
    );
    println!(
        "host: {} hardware threads",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(0)
    );

    let mut ran = 0;
    for (id, title, run) in experiments::all() {
        if !wanted.is_empty() && !wanted.iter().any(|w| w == id) {
            continue;
        }
        println!("\n################ {id}: {title}");
        let started = std::time::Instant::now();
        let table = match (id, seeds) {
            ("E17", Some(n)) => experiments::e17_chaos::run_with_seeds(n),
            _ => run(quick),
        };
        print!("{table}");
        println!("  [{id} completed in {:?}]", started.elapsed());
        ran += 1;
    }
    if ran == 0 {
        eprintln!("no experiment matched {wanted:?}; known ids are E1..E16 and `lockstat`");
        std::process::exit(2);
    }
}

/// The `lockstat` subcommand: drive the E16 workload, print the report.
#[cfg(feature = "obs")]
fn lockstat(quick: bool, json: bool) {
    // The experiment runner asserts the report's claims as it goes.
    let rendered = experiments::e16_lockstat::run(quick);
    if json {
        println!("{}", machk_obs::Lockstat::collect().render_json());
    } else {
        print!("{rendered}");
    }
}

/// Without the obs feature there is nothing to trace — say so and fail,
/// so scripts notice a mis-built binary.
#[cfg(not(feature = "obs"))]
fn lockstat(_quick: bool, _json: bool) {
    eprintln!("lockstat requires a build with `--features obs` (tracing is compiled out)");
    std::process::exit(2);
}
