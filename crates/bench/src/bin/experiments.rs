//! The experiments binary: regenerate every table of the reproduction.
//!
//! The source paper has no tables or figures of its own (it is a
//! design/experience paper); DESIGN.md defines experiments E1–E15, one
//! per mechanism or claim in the text, and this binary prints them.
//!
//! Usage:
//!
//! ```text
//! experiments [--quick] [E1 E7 E10 ...]
//! ```
//!
//! `--quick` shrinks iteration counts (used by CI); naming experiment
//! ids runs a subset. Results for the repository's EXPERIMENTS.md come
//! from a `--release` run without `--quick`.

use machk_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let wanted: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|a| a.to_uppercase())
        .collect();

    println!("Locking and Reference Counting in the Mach Kernel (ICPP 1991)");
    println!(
        "reproduction experiment suite — {} mode",
        if quick { "quick" } else { "full" }
    );
    println!(
        "host: {} hardware threads",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(0)
    );

    let mut ran = 0;
    for (id, title, run) in experiments::all() {
        if !wanted.is_empty() && !wanted.iter().any(|w| w == id) {
            continue;
        }
        println!("\n################ {id}: {title}");
        let started = std::time::Instant::now();
        let table = run(quick);
        print!("{table}");
        println!("  [{id} completed in {:?}]", started.elapsed());
        ran += 1;
    }
    if ran == 0 {
        eprintln!("no experiment matched {wanted:?}; known ids are E1..E15");
        std::process::exit(2);
    }
}
