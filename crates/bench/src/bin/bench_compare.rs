//! `bench-compare` — gate a fresh artifact run against the committed
//! baselines.
//!
//! ```text
//! bench-compare --baselines bench/baselines --fresh target/bench-artifacts
//! ```
//!
//! Exit status: 0 when every gated metric holds its baseline within
//! the baseline's own tolerance, 1 on any regression (or missing
//! artifact / unparseable envelope), 2 on usage errors. The rules
//! live in `machk_bench::compare`; the envelope schema in
//! `machk_bench::report` and DESIGN.md.

use std::path::PathBuf;

fn arg_value(args: &[String], flag: &str) -> Option<PathBuf> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (Some(baselines), Some(fresh)) =
        (arg_value(&args, "--baselines"), arg_value(&args, "--fresh"))
    else {
        eprintln!("usage: bench-compare --baselines DIR --fresh DIR");
        std::process::exit(2);
    };

    match machk_bench::compare::compare_dirs(&baselines, &fresh) {
        Ok(result) => {
            print!("{}", result.render());
            std::process::exit(if result.passed() { 0 } else { 1 });
        }
        Err(e) => {
            eprintln!("bench-compare: {e}");
            std::process::exit(2);
        }
    }
}
