//! # machk-bench — the experiment harness
//!
//! The source paper ("Locking and Reference Counting in the Mach
//! Kernel", ICPP 1991) is a design/experience paper with **no tables or
//! figures**; its claims are qualitative. This crate regenerates those
//! claims as measurements: experiments **E1–E15** (indexed in
//! `DESIGN.md`), each implemented as
//!
//! * a function in [`experiments`] that runs the workload and returns a
//!   formatted table (printed by the `experiments` binary), and
//! * where timing precision matters, a Criterion bench under
//!   `benches/` driving the same workload functions.
//!
//! Workload code shared by both lives in [`workloads`]; thread sweeps,
//! timing, and table formatting in [`util`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod compare;
pub mod experiments;
pub mod json;
pub mod report;
pub mod util;
pub mod workloads;
