//! A minimal JSON reader for `bench-compare`.
//!
//! The workspace deliberately has no serde (every artifact writer
//! hand-rolls its JSON), so the comparison side hand-rolls its reader
//! too: a recursive-descent parser for exactly the JSON the envelopes
//! in [`crate::report`] produce — objects, arrays, strings with the
//! escapes we emit, numbers, booleans, null. It accepts all of JSON's
//! value grammar; it is not lenient about anything JSON rejects.

/// A parsed JSON value. Object keys keep insertion order (the
/// comparison never relies on it, but error messages read better).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`, which covers every value the
    /// envelopes emit).
    Num(f64),
    /// A string literal.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object; `None` on missing key or non-object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse one JSON document; trailing whitespace is allowed, trailing
/// content is an error.
pub fn parse(src: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after the document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("json: {msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Envelopes only escape control chars; a
                            // surrogate here means a foreign file.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("\\u escape is not a scalar"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // the byte stream is valid UTF-8 by construction).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .unwrap()
            .parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_an_envelope_shape() {
        let v = parse(
            "{\"schema\":\"machk-bench/v1\",\"metrics\":[{\"name\":\"a\",\"value\":1.5},\
             {\"name\":\"b\",\"value\":-2}],\"extra\":null,\"ok\":true}",
        )
        .unwrap();
        assert_eq!(v.get("schema").unwrap().as_str(), Some("machk-bench/v1"));
        let m = v.get("metrics").unwrap().as_arr().unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m[0].get("value").unwrap().as_f64(), Some(1.5));
        assert_eq!(m[1].get("value").unwrap().as_f64(), Some(-2.0));
        assert_eq!(v.get("extra"), Some(&Value::Null));
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
    }

    #[test]
    fn escapes_round_trip() {
        let escaped = crate::report::json_escape("a\"b\\c\nd\te\u{1}");
        let v = parse(&format!("\"{escaped}\"")).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\te\u{1}"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} tail").is_err());
        assert!(parse("nulll").is_err());
    }

    #[test]
    fn nested_and_empty_containers() {
        let v = parse("{\"a\":[],\"b\":{},\"c\":[[1],[2,3]]}").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 0);
        assert_eq!(v.get("b"), Some(&Value::Obj(vec![])));
        let c = v.get("c").unwrap().as_arr().unwrap();
        assert_eq!(c[1].as_arr().unwrap().len(), 2);
    }
}
