//! Timing, thread sweeps, and table formatting for the experiments.

use std::time::{Duration, Instant};

/// Thread counts to sweep: 1, 2, 4, … up to at least 4 *concurrent*
/// threads (capped at 8).
///
/// Deliberately not capped at `available_parallelism`: the experiments
/// measure *coordination* under concurrency, which exists on a 1-CPU
/// host too (contention there shows as preemption-and-yield rather
/// than cache-line traffic — EXPERIMENTS.md discusses the difference).
pub fn thread_sweep() -> Vec<usize> {
    let max = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(4, 8);
    let mut v = vec![1];
    while *v.last().unwrap() * 2 <= max {
        v.push(v.last().unwrap() * 2);
    }
    if *v.last().unwrap() != max {
        v.push(max);
    }
    v
}

/// [`thread_sweep`] extended to at least 8 threads, for experiments
/// whose subject is *contention* itself (E1's queued-policy comparison):
/// queued locks only separate from word-spinning ones once enough
/// waiters pile up, which requires oversubscription on small hosts.
pub fn contention_sweep() -> Vec<usize> {
    let mut v = thread_sweep();
    while *v.last().unwrap() < 8 {
        let next = v.last().unwrap() * 2;
        v.push(next);
    }
    v
}

/// Run `threads` copies of `work` concurrently (each gets its thread
/// index) and return the wall-clock duration of the whole batch.
pub fn run_concurrent<F>(threads: usize, work: F) -> Duration
where
    F: Fn(usize) + Sync,
{
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let work = &work;
            s.spawn(move || work(t));
        }
    });
    start.elapsed()
}

/// Throughput in operations per second.
pub fn ops_per_sec(total_ops: u64, elapsed: Duration) -> f64 {
    total_ops as f64 / elapsed.as_secs_f64()
}

/// Human formatting for an ops/s figure (e.g. `12.3M`).
pub fn fmt_rate(ops_per_sec: f64) -> String {
    if ops_per_sec >= 1e9 {
        format!("{:.2}G", ops_per_sec / 1e9)
    } else if ops_per_sec >= 1e6 {
        format!("{:.2}M", ops_per_sec / 1e6)
    } else if ops_per_sec >= 1e3 {
        format!("{:.1}k", ops_per_sec / 1e3)
    } else {
        format!("{ops_per_sec:.0}")
    }
}

/// A plain-text table builder for experiment output.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// A table titled `title` with the given column headers.
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a data row (stringified cells).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Append a free-text note shown under the table.
    pub fn note(&mut self, text: &str) {
        self.notes.push(text.to_string());
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::from("| ");
            for i in 0..ncols {
                s.push_str(&format!("{:<w$} ", cells[i], w = widths[i]));
                s.push_str("| ");
            }
            s.trim_end().to_string()
        };
        out.push_str(&line(&self.headers, &widths));
        out.push('\n');
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&line(&sep, &widths));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("  note: {note}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_starts_at_one_and_is_increasing() {
        let s = thread_sweep();
        assert_eq!(s[0], 1);
        assert!(s.windows(2).all(|w| w[0] < w[1]) || s.len() == 1);
    }

    #[test]
    fn run_concurrent_runs_all_threads() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits = AtomicUsize::new(0);
        let d = run_concurrent(4, |_t| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 4);
        assert!(d > Duration::ZERO);
    }

    #[test]
    fn rate_formatting() {
        assert_eq!(fmt_rate(1_500.0), "1.5k");
        assert_eq!(fmt_rate(2_500_000.0), "2.50M");
        assert_eq!(fmt_rate(3_000_000_000.0), "3.00G");
        assert_eq!(fmt_rate(12.0), "12");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["a", "long-header"]);
        t.row(&["1".into(), "2".into()]);
        t.note("a note");
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long-header"));
        assert!(s.contains("note: a note"));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn table_rejects_bad_row() {
        let mut t = Table::new("demo", &["a"]);
        t.row(&["1".into(), "2".into()]);
    }
}
