//! Baseline comparison for the bench trajectory.
//!
//! `bench-compare --baselines DIR --fresh DIR` (the binary is a thin
//! wrapper over [`compare_dirs`]) diffs a fresh `experiments
//! --artifacts` run against the committed baselines in
//! `bench/baselines/` and fails CI when a gated metric regresses
//! beyond its tolerance.
//!
//! The rules, driven entirely by the **baseline** file (so gates are
//! loosened by editing a committed artifact, a reviewable change):
//!
//! * Every baseline file must have a fresh counterpart, and every
//!   gated (non-`info`) baseline metric must appear in the fresh
//!   envelope — a metric that silently disappears is a regression in
//!   the harness itself.
//! * `exact` metrics must be bit-identical (structural invariants:
//!   `lost_wakeups`, `hangs`, audit booleans).
//! * `higher` metrics regress when `fresh < base / tol`; `lower` when
//!   `fresh > base * tol`.
//! * `info` metrics and the `extra` member are recorded, never gated.
//! * `mode` must match: a quick baseline compared against a full run
//!   (or vice versa) is a harness misconfiguration, not a measurement.
//!
//! Fresh files with no baseline are listed but do not fail — that is
//! how a new experiment lands before its first baseline is committed.

use std::path::Path;

use crate::json::{parse, Value};

/// One comparison outcome (gated check, informational drift line, or
/// file-level problem).
#[derive(Debug)]
pub struct Finding {
    /// Experiment id (or file name when the envelope did not parse).
    pub experiment: String,
    /// Metric name, or `"<file>"` for file-level findings.
    pub metric: String,
    /// Human-readable outcome.
    pub detail: String,
    /// Whether this finding fails the comparison.
    pub failed: bool,
}

/// The result of comparing two artifact directories.
#[derive(Debug, Default)]
pub struct Comparison {
    /// Every outcome, failures first within each experiment.
    pub findings: Vec<Finding>,
    /// Gated metrics checked.
    pub gated: usize,
    /// Gated metrics that failed (plus file-level failures).
    pub failures: usize,
}

impl Comparison {
    /// Whether the fresh run holds the baseline.
    pub fn passed(&self) -> bool {
        self.failures == 0
    }

    /// Render the report for the CI log.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{} {:>4} {:<40} {}\n",
                if f.failed { "FAIL" } else { "  ok" },
                f.experiment,
                f.metric,
                f.detail
            ));
        }
        out.push_str(&format!(
            "bench-compare: {} gated metrics checked, {} failure(s)\n",
            self.gated, self.failures
        ));
        out
    }

    fn fail(&mut self, experiment: &str, metric: &str, detail: String) {
        self.failures += 1;
        self.findings.push(Finding {
            experiment: experiment.to_string(),
            metric: metric.to_string(),
            detail,
            failed: true,
        });
    }

    fn note(&mut self, experiment: &str, metric: &str, detail: String) {
        self.findings.push(Finding {
            experiment: experiment.to_string(),
            metric: metric.to_string(),
            detail,
            failed: false,
        });
    }
}

/// Check one gated value against its baseline. Returns `Err(reason)`
/// on regression. `dir` and `tol` come from the baseline metric.
pub fn check_metric(dir: &str, tol: f64, base: f64, fresh: f64) -> Result<(), String> {
    match dir {
        "exact" => {
            if fresh == base {
                Ok(())
            } else {
                Err(format!("must not change: baseline {base}, fresh {fresh}"))
            }
        }
        "higher" => {
            if fresh >= base / tol {
                Ok(())
            } else {
                Err(format!(
                    "regressed: fresh {fresh} < baseline {base} / tol {tol}"
                ))
            }
        }
        "lower" => {
            if fresh <= base * tol {
                Ok(())
            } else {
                Err(format!(
                    "regressed: fresh {fresh} > baseline {base} * tol {tol}"
                ))
            }
        }
        "info" => Ok(()),
        other => Err(format!("unknown dir '{other}' in baseline")),
    }
}

fn metric_fields(m: &Value) -> Option<(String, f64, String, f64)> {
    Some((
        m.get("name")?.as_str()?.to_string(),
        m.get("value")?.as_f64()?,
        m.get("dir")?.as_str()?.to_string(),
        m.get("tol")?.as_f64()?,
    ))
}

/// Compare two parsed envelopes (baseline rules; see module docs).
pub fn compare_docs(file: &str, base: &Value, fresh: &Value, out: &mut Comparison) {
    let id = base
        .get("experiment")
        .and_then(Value::as_str)
        .unwrap_or(file)
        .to_string();

    for (doc, which) in [(base, "baseline"), (fresh, "fresh")] {
        if doc.get("schema").and_then(Value::as_str) != Some("machk-bench/v1") {
            out.fail(&id, "<file>", format!("{which} is not a machk-bench/v1 envelope"));
            return;
        }
    }
    let (bmode, fmode) = (
        base.get("mode").and_then(Value::as_str).unwrap_or("?"),
        fresh.get("mode").and_then(Value::as_str).unwrap_or("?"),
    );
    if bmode != fmode {
        out.fail(
            &id,
            "<file>",
            format!("mode mismatch: baseline '{bmode}' vs fresh '{fmode}'"),
        );
        return;
    }

    let fresh_metrics: Vec<(String, f64, String, f64)> = fresh
        .get("metrics")
        .and_then(Value::as_arr)
        .map(|a| a.iter().filter_map(metric_fields).collect())
        .unwrap_or_default();

    for m in base.get("metrics").and_then(Value::as_arr).unwrap_or(&[]) {
        let Some((name, bval, dir, tol)) = metric_fields(m) else {
            out.fail(&id, "<file>", "malformed baseline metric".to_string());
            continue;
        };
        let found = fresh_metrics.iter().find(|(n, ..)| *n == name);
        if dir == "info" {
            match found {
                Some((_, fval, ..)) => out.note(
                    &id,
                    &name,
                    format!("info: baseline {bval} -> fresh {fval}"),
                ),
                None => out.note(&id, &name, "info metric absent in fresh run".to_string()),
            }
            continue;
        }
        out.gated += 1;
        match found {
            None => out.fail(&id, &name, "gated metric missing from fresh run".to_string()),
            Some((_, fval, ..)) => match check_metric(&dir, tol, bval, *fval) {
                Ok(()) => out.note(&id, &name, format!("{dir}: baseline {bval}, fresh {fval}")),
                Err(why) => out.fail(&id, &name, why),
            },
        }
    }
}

/// Compare every `BENCH_*.json` under `baselines` against `fresh`.
pub fn compare_dirs(baselines: &Path, fresh: &Path) -> Result<Comparison, String> {
    let mut out = Comparison::default();
    let mut names: Vec<String> = std::fs::read_dir(baselines)
        .map_err(|e| format!("read baselines dir {}: {e}", baselines.display()))?
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        .collect();
    names.sort();
    if names.is_empty() {
        return Err(format!("no BENCH_*.json baselines in {}", baselines.display()));
    }

    for name in &names {
        let bpath = baselines.join(name);
        let fpath = fresh.join(name);
        let btext = std::fs::read_to_string(&bpath)
            .map_err(|e| format!("read {}: {e}", bpath.display()))?;
        let bdoc = parse(&btext).map_err(|e| format!("{}: {e}", bpath.display()))?;
        let ftext = match std::fs::read_to_string(&fpath) {
            Ok(t) => t,
            Err(_) => {
                out.fail(name, "<file>", "baseline has no fresh artifact".to_string());
                continue;
            }
        };
        match parse(&ftext) {
            Ok(fdoc) => compare_docs(name, &bdoc, &fdoc, &mut out),
            Err(e) => out.fail(name, "<file>", format!("fresh artifact unparseable: {e}")),
        }
    }

    // Fresh artifacts with no baseline: visible, not gated.
    if let Ok(dir) = std::fs::read_dir(fresh) {
        let mut extra: Vec<String> = dir
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| {
                n.starts_with("BENCH_") && n.ends_with(".json") && !names.contains(n)
            })
            .collect();
        extra.sort();
        for name in extra {
            out.note(&name, "<file>", "fresh artifact has no baseline yet".to_string());
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{BenchReport, Dir};

    fn envelope(id: &str, metrics: &[(&str, f64, Dir, f64)]) -> Value {
        let mut r = BenchReport::new(id, "fixture", true);
        for (name, value, dir, tol) in metrics {
            r.metric(name, *value, "ns", *dir, *tol);
        }
        parse(&r.render()).unwrap()
    }

    #[test]
    fn identical_run_passes() {
        let doc = envelope(
            "E02",
            &[
                ("wait_ns", 100.0, Dir::Lower, 1.5),
                ("lost", 0.0, Dir::Exact, 1.0),
                ("ops", 5e6, Dir::Info, 1.0),
            ],
        );
        let mut c = Comparison::default();
        compare_docs("BENCH_E02.json", &doc, &doc, &mut c);
        assert!(c.passed(), "{}", c.render());
        assert_eq!(c.gated, 2);
    }

    /// The acceptance fixture: a synthetic 2x wait-time regression
    /// against a baseline whose tolerance is 1.5x must fail.
    #[test]
    fn doubled_wait_time_fails_the_gate() {
        let base = envelope("E02", &[("lock_wait_ns", 100.0, Dir::Lower, 1.5)]);
        let fresh = envelope("E02", &[("lock_wait_ns", 200.0, Dir::Lower, 1.5)]);
        let mut c = Comparison::default();
        compare_docs("BENCH_E02.json", &base, &fresh, &mut c);
        assert!(!c.passed());
        assert!(c.render().contains("FAIL"));
        assert!(c.render().contains("lock_wait_ns"));
    }

    #[test]
    fn within_tolerance_passes_either_direction() {
        assert!(check_metric("lower", 1.5, 100.0, 149.0).is_ok());
        assert!(check_metric("lower", 1.5, 100.0, 151.0).is_err());
        assert!(check_metric("higher", 2.0, 100.0, 51.0).is_ok());
        assert!(check_metric("higher", 2.0, 100.0, 49.0).is_err());
        // Improvements never fail.
        assert!(check_metric("lower", 1.5, 100.0, 1.0).is_ok());
        assert!(check_metric("higher", 1.5, 100.0, 1e9).is_ok());
    }

    #[test]
    fn exact_metrics_reject_any_change() {
        assert!(check_metric("exact", 1.0, 0.0, 0.0).is_ok());
        assert!(check_metric("exact", 1.0, 0.0, 1.0).is_err());
        assert!(check_metric("exact", 1.0, 1.0, 0.0).is_err());
    }

    #[test]
    fn missing_gated_metric_fails_missing_info_does_not() {
        let base = envelope(
            "E03",
            &[("gated", 1.0, Dir::Exact, 1.0), ("informational", 2.0, Dir::Info, 1.0)],
        );
        let fresh = envelope("E03", &[]);
        let mut c = Comparison::default();
        compare_docs("BENCH_E03.json", &base, &fresh, &mut c);
        assert_eq!(c.failures, 1);
        assert!(c.render().contains("gated metric missing"));
    }

    #[test]
    fn mode_mismatch_fails() {
        let base = envelope("E04", &[]);
        let full = parse(
            &BenchReport::new("E04", "fixture", false).render(),
        )
        .unwrap();
        let mut c = Comparison::default();
        compare_docs("BENCH_E04.json", &base, &full, &mut c);
        assert!(!c.passed());
        assert!(c.render().contains("mode mismatch"));
    }

    #[test]
    fn directory_comparison_round_trips() {
        let root = std::env::temp_dir().join(format!("machk-bench-compare-{}", std::process::id()));
        let (bdir, fdir) = (root.join("base"), root.join("fresh"));
        std::fs::create_dir_all(&bdir).unwrap();
        std::fs::create_dir_all(&fdir).unwrap();
        let mut r = BenchReport::new("E05", "fixture", true);
        r.metric("wait_ns", 100.0, "ns", Dir::Lower, 1.5);
        std::fs::write(bdir.join("BENCH_E05.json"), r.render()).unwrap();
        // Fresh regresses 2x, and a second baseline has no fresh file.
        let mut r = BenchReport::new("E05", "fixture", true);
        r.metric("wait_ns", 200.0, "ns", Dir::Lower, 1.5);
        std::fs::write(fdir.join("BENCH_E05.json"), r.render()).unwrap();
        std::fs::write(
            bdir.join("BENCH_E06.json"),
            BenchReport::new("E06", "fixture", true).render(),
        )
        .unwrap();

        let c = compare_dirs(&bdir, &fdir).unwrap();
        assert_eq!(c.failures, 2, "{}", c.render());
        std::fs::remove_dir_all(&root).ok();
    }
}
