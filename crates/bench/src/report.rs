//! The `machk-bench/v1` artifact envelope.
//!
//! Every experiment's `run_report` returns its rendered tables plus a
//! JSON artifact body built here. The envelope is what `bench-compare`
//! diffs against the committed baselines in `bench/baselines/`, so its
//! shape is versioned (`"schema": "machk-bench/v1"`) and every metric
//! carries its own comparison rule:
//!
//! ```json
//! {"schema": "machk-bench/v1",
//!  "experiment": "E02",
//!  "title": "Locking granularity: code vs data",
//!  "mode": "quick",
//!  "host_threads": 8,
//!  "metrics": [
//!    {"name": "sim_separation_8c", "value": 5.31, "unit": "ratio",
//!     "dir": "higher", "tol": 1.6}
//!  ],
//!  "extra": {"...": "experiment-specific detail, not gated"}}
//! ```
//!
//! * `dir` says which direction is good: `"higher"`, `"lower"`,
//!   `"exact"` (must not change at all — structural invariants like
//!   `lost_wakeups == 0`), or `"info"` (recorded, never gated —
//!   host-dependent throughput numbers).
//! * `tol` is the multiplicative slack *the baseline grants*: a
//!   `higher` metric regresses when `fresh < base / tol`, a `lower`
//!   one when `fresh > base * tol`. `bench-compare` reads the
//!   tolerance from the baseline file, so loosening a gate is a
//!   reviewed change to a committed artifact.
//! * `extra` carries the experiment's legacy free-form detail (sweep
//!   tables, ledgers, fingerprints); `bench-compare` ignores it.
//!
//! Gated metrics should be host-independent: structural counts,
//! virtual-time ratios from `machk-sim`, rates with analytic bounds.
//! Wall-clock throughput belongs in `info` metrics — CI runners vary
//! too much for ops/s gates to mean anything.

/// Which direction of change is an improvement for a metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dir {
    /// Bigger is better; regresses when `fresh < base / tol`.
    Higher,
    /// Smaller is better; regresses when `fresh > base * tol`.
    Lower,
    /// Structural invariant; any change at all is a regression.
    Exact,
    /// Recorded for the trajectory, never gated.
    Info,
}

impl Dir {
    /// The wire name used in the JSON envelope.
    pub fn as_str(self) -> &'static str {
        match self {
            Dir::Higher => "higher",
            Dir::Lower => "lower",
            Dir::Exact => "exact",
            Dir::Info => "info",
        }
    }
}

/// Render an `f64` as minimal JSON: integers without a fraction,
/// everything else with enough digits to round-trip the comparison.
pub fn json_num(v: f64) -> String {
    if !v.is_finite() {
        // JSON has no Inf/NaN; an envelope should never contain one,
        // but a broken workload must not produce an unparseable file.
        return "null".to_string();
    }
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.6}")
    }
}

/// Escape a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Builder for one experiment's envelope.
pub struct BenchReport {
    id: String,
    title: String,
    mode: String,
    metrics: Vec<String>,
    extra: Option<String>,
}

impl BenchReport {
    /// Start an envelope for experiment `id` (e.g. `"E02"`); `quick`
    /// sets the mode field so a baseline generated in one mode is
    /// never silently compared against the other.
    pub fn new(id: &str, title: &str, quick: bool) -> BenchReport {
        BenchReport::with_mode(id, title, if quick { "quick" } else { "full" })
    }

    /// [`BenchReport::new`] with a free-form mode string (E17 uses
    /// `seeds=N`).
    pub fn with_mode(id: &str, title: &str, mode: &str) -> BenchReport {
        BenchReport {
            id: id.to_string(),
            title: title.to_string(),
            mode: mode.to_string(),
            metrics: Vec::new(),
            extra: None,
        }
    }

    /// Append a metric with an explicit comparison rule.
    pub fn metric(&mut self, name: &str, value: f64, unit: &str, dir: Dir, tol: f64) {
        assert!(tol >= 1.0, "tolerance is multiplicative slack, >= 1.0");
        self.metrics.push(format!(
            "{{\"name\":\"{}\",\"value\":{},\"unit\":\"{}\",\"dir\":\"{}\",\"tol\":{}}}",
            json_escape(name),
            json_num(value),
            json_escape(unit),
            dir.as_str(),
            json_num(tol),
        ));
    }

    /// A structural invariant: gated, must not change at all.
    pub fn exact(&mut self, name: &str, value: f64, unit: &str) {
        self.metric(name, value, unit, Dir::Exact, 1.0);
    }

    /// A trajectory-only metric: recorded, never gated.
    pub fn info(&mut self, name: &str, value: f64, unit: &str) {
        self.metric(name, value, unit, Dir::Info, 1.0);
    }

    /// Attach the experiment's free-form detail (must already be valid
    /// JSON); `bench-compare` ignores it.
    pub fn extra(&mut self, json: &str) {
        self.extra = Some(json.to_string());
    }

    /// Render the complete envelope.
    pub fn render(&self) -> String {
        format!(
            "{{\"schema\":\"machk-bench/v1\",\"experiment\":\"{}\",\"title\":\"{}\",\
             \"mode\":\"{}\",\"host_threads\":{},\"metrics\":[{}],\"extra\":{}}}",
            json_escape(&self.id),
            json_escape(&self.title),
            json_escape(&self.mode),
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(0),
            self.metrics.join(","),
            self.extra.as_deref().unwrap_or("null"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_has_schema_and_metrics() {
        let mut r = BenchReport::new("E99", "demo \"quoted\"", true);
        r.metric("ratio", 4.25, "ratio", Dir::Higher, 1.5);
        r.exact("lost", 0.0, "count");
        r.info("ops", 123456.0, "ops/s");
        r.extra("{\"k\":1}");
        let s = r.render();
        assert!(s.contains("\"schema\":\"machk-bench/v1\""));
        assert!(s.contains("\"experiment\":\"E99\""));
        assert!(s.contains("demo \\\"quoted\\\""));
        assert!(s.contains("\"mode\":\"quick\""));
        assert!(s.contains("{\"name\":\"ratio\",\"value\":4.250000,\"unit\":\"ratio\",\"dir\":\"higher\",\"tol\":1.500000}"));
        assert!(s.contains("{\"name\":\"lost\",\"value\":0,\"unit\":\"count\",\"dir\":\"exact\",\"tol\":1}"));
        assert!(s.contains("\"extra\":{\"k\":1}"));
    }

    #[test]
    fn numbers_render_minimal() {
        assert_eq!(json_num(0.0), "0");
        assert_eq!(json_num(42.0), "42");
        assert_eq!(json_num(-3.0), "-3");
        assert_eq!(json_num(1.5), "1.500000");
        assert_eq!(json_num(f64::NAN), "null");
    }

    #[test]
    fn extra_defaults_to_null() {
        let r = BenchReport::new("E01", "t", false);
        assert!(r.render().ends_with("\"extra\":null}"));
    }

    #[test]
    #[should_panic(expected = "tolerance")]
    fn sub_unit_tolerance_rejected() {
        let mut r = BenchReport::new("E01", "t", false);
        r.metric("m", 1.0, "u", Dir::Lower, 0.5);
    }
}
