//! Cross-validation: the obs layer's *runtime* lock-order graph against
//! machk-lint's *static* one.
//!
//! The two diagnostics answer the same §5 question from opposite ends:
//! machk-obs watches acquisitions as they happen; machk-lint reads the
//! source and never runs it. If the tools agree, every ordering the
//! kernel actually exercises was already visible to the static scanner
//! — the runtime cycle E16 provokes on purpose must be a subgraph of
//! what the linter predicted. A runtime edge the static graph lacks
//! would mean the scanner has a blind spot (an acquisition path it
//! cannot see), which is exactly the regression this test pins down.
#![cfg(feature = "obs")]

use std::path::Path;

use machk_lint::{analyze, Workspace};

#[test]
fn e16_runtime_cycle_edges_are_in_the_static_order_graph() {
    // Drive the E16 workload (quick mode): this populates the global
    // obs registry and order graph, including the deliberate
    // e16.order.a/e16.order.b inversion.
    let report = machk_bench::experiments::e16_lockstat::run(true);
    assert!(report.contains("e16"), "E16 report looks empty:\n{report}");

    // Static side: scan the workspace sources the same way
    // `machk-lint --workspace` does.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let ws = Workspace::load(&root).expect("workspace sources load");
    let analysis = analyze(&ws);
    assert!(
        !analysis.graph.is_empty(),
        "static order graph is empty — scanner regression"
    );

    // Runtime side: collect the observed order graph.
    let stat = machk_obs::Lockstat::collect();
    assert!(
        !stat.cycles.is_empty(),
        "E16 ran but the obs layer observed no order cycle"
    );

    // Every edge of every observed cycle must exist in the static
    // graph. A cycle `[a, b, …]` means a → b → … → a, so the edge list
    // is consecutive pairs plus the wrap-around. Unnamed locks cannot
    // be matched by class name; E16's cycle locks are all named, so
    // requiring names here keeps the check honest without making the
    // test depend on unrelated anonymous locks.
    let mut checked = 0usize;
    for cycle in &stat.cycles {
        let names: Vec<&str> = cycle
            .iter()
            .map(|&id| machk_obs::registry::name_of(id))
            .collect();
        if names.iter().any(|n| n.is_empty()) {
            continue;
        }
        for i in 0..names.len() {
            let from = names[i];
            let to = names[(i + 1) % names.len()];
            assert!(
                analysis.graph.has_edge(from, to),
                "runtime order edge {from} -> {to} (from observed cycle \
                 {names:?}) is missing from the static order graph — \
                 machk-lint did not see an acquisition path the kernel \
                 actually executed"
            );
            checked += 1;
        }
    }
    assert!(
        checked >= 2,
        "no named runtime cycle edges were checked; observed cycles: {:?}",
        stat.cycles
    );

    // And the marquee cycle specifically: both tools call out the
    // deliberate inversion by name.
    assert!(
        analysis
            .graph
            .cycles()
            .iter()
            .any(|c| c.iter().any(|n| n == "e16.order.a")),
        "static analysis lost the deliberate e16.order.a cycle"
    );
}
