//! E4 Criterion bench: upgrade vs write-then-downgrade.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use machk_bench::workloads::{lookup_insert_upgrade, lookup_insert_write_downgrade};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_upgrade");
    g.sample_size(10);
    for threads in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("upgrade", threads), &threads, |b, &t| {
            b.iter(|| lookup_insert_upgrade(t, 5_000, 30));
        });
        g.bench_with_input(
            BenchmarkId::new("write_downgrade", threads),
            &threads,
            |b, &t| {
                b.iter(|| lookup_insert_write_downgrade(t, 5_000, 30));
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
