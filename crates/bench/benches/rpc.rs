//! E12 Criterion bench: kernel RPC under both reference semantics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use machk_bench::workloads::rpc_storm;
use machk_ipc::RefSemantics;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e12_rpc");
    g.sample_size(10);
    for threads in [1usize, 2, 4] {
        for (name, sem) in [
            ("mach25", RefSemantics::Mach25),
            ("mach30", RefSemantics::Mach30),
        ] {
            g.bench_with_input(BenchmarkId::new(name, threads), &threads, |b, &t| {
                b.iter(|| rpc_storm(sem, t, 2_000));
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
