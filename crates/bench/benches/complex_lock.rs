//! E3 Criterion bench: complex-lock read/write mixes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use machk_bench::workloads::complex_lock_mix;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_complex_lock");
    g.sample_size(10);
    for threads in [1usize, 2, 4] {
        for write_pct in [0u32, 1, 10, 50] {
            g.bench_with_input(
                BenchmarkId::new(format!("writes_{write_pct}pct"), threads),
                &threads,
                |b, &threads| {
                    b.iter(|| complex_lock_mix(write_pct, threads, 10_000));
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
