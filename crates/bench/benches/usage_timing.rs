//! E15 Criterion bench: lock-free vs locked usage timers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use machk_bench::workloads::{timer_tick_storm, TimerImpl};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e15_usage_timing");
    g.sample_size(10);
    for readers in [0usize, 2] {
        for imp in TimerImpl::ALL {
            g.bench_with_input(BenchmarkId::new(imp.name(), readers), &readers, |b, &r| {
                b.iter(|| timer_tick_storm(imp, 2, r, 20_000));
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
