//! Queued-lock Criterion bench: contention scaling of the ticket and
//! MCS policies against the paper's word-spinning baselines, plus the
//! raw handoff cost of each queued mechanism at fixed oversubscription.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use machk_bench::util::run_concurrent;
use machk_bench::workloads::simple_lock_counter;
use machk_core::{Backoff, RawSimpleLock, SpinPolicy};

/// Build-level tracing marker: bench ids carry it so a default run and
/// a `--features obs` run of the same bench land side by side, and the
/// obs-on/obs-off delta can be read straight off the report (recorded
/// in EXPERIMENTS.md).
#[cfg(feature = "obs")]
const TRACING: &str = "obs-on";
#[cfg(not(feature = "obs"))]
const TRACING: &str = "obs-off";

/// Throughput of the shared-counter workload per policy as waiters pile
/// up; 8 and 16 threads oversubscribe small hosts on purpose — that is
/// where admission order and per-waiter spinning start to matter.
fn contention_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("queued_lock_scaling");
    g.sample_size(10);
    for threads in [1usize, 2, 4, 8, 16] {
        for policy in SpinPolicy::ALL {
            g.bench_with_input(
                BenchmarkId::new(policy.name(), threads),
                &threads,
                |b, &threads| {
                    b.iter(|| simple_lock_counter(policy, Backoff::NONE, threads, 10_000));
                },
            );
        }
    }
    g.finish();
}

/// Uncontended single-thread cost: the queued fast paths must stay in
/// the same league as a plain test-and-set for the common
/// first-try-succeeds case the paper designs for.
fn uncontended_cost(c: &mut Criterion) {
    let mut g = c.benchmark_group("queued_lock_uncontended");
    g.sample_size(10);
    for policy in SpinPolicy::ALL {
        g.bench_with_input(BenchmarkId::new(policy.name(), 1), &1usize, |b, &threads| {
            b.iter(|| simple_lock_counter(policy, Backoff::NONE, threads, 100_000));
        });
    }
    g.finish();
}

/// The shared-counter loop against a caller-supplied lock (the
/// workload crate's version constructs its own anonymous lock, which
/// an obs build deliberately does not trace).
fn counter_on(lock: &RawSimpleLock, threads: usize, iters: u64) {
    let mut counter = 0u64;
    let cp = &mut counter as *mut u64 as usize;
    run_concurrent(threads, |_t| {
        for _ in 0..iters {
            lock.lock_raw();
            unsafe {
                let p = cp as *mut u64;
                p.write(p.read().wrapping_add(1));
            }
            lock.unlock_raw();
        }
    });
    assert_eq!(counter, threads as u64 * iters);
}

/// Tracing overhead, isolated two ways: the group name carries the
/// build's obs state (compare across a default and a `--features obs`
/// run), and within an obs build the named/anonymous pair separates
/// full tracing (registry counters + histograms + ring events) from
/// the clock reads alone (anonymous locks skip recording).
fn tracing_overhead(c: &mut Criterion) {
    static NAMED: RawSimpleLock =
        RawSimpleLock::named_with_policy("bench.queued.named", SpinPolicy::TasThenTtas, Backoff::NONE);
    static ANON: RawSimpleLock =
        RawSimpleLock::with_policy(SpinPolicy::TasThenTtas, Backoff::NONE);
    let mut g = c.benchmark_group(&format!("queued_lock_tracing_{TRACING}"));
    g.sample_size(10);
    for threads in [1usize, 4] {
        g.bench_with_input(
            BenchmarkId::new("anonymous", threads),
            &threads,
            |b, &threads| b.iter(|| counter_on(&ANON, threads, 50_000)),
        );
        g.bench_with_input(
            BenchmarkId::new("named", threads),
            &threads,
            |b, &threads| b.iter(|| counter_on(&NAMED, threads, 50_000)),
        );
    }
    g.finish();
}

/// Dispatch fan-out cost as subscribers accumulate: the same traced
/// counter loop at 0, 1 (stats), and 3 (stats + ndjson + flame)
/// subscribers. Must be listed FIRST in the group macro — installation
/// is forever, so the 0-subscriber case is only measurable before
/// anything in this process emits with auto-install still on.
#[cfg(feature = "obs")]
fn multi_subscriber(c: &mut Criterion) {
    static LOCK: RawSimpleLock = RawSimpleLock::named_with_policy(
        "bench.queued.subs",
        SpinPolicy::TasThenTtas,
        Backoff::NONE,
    );
    machk_obs::set_auto_install(false);
    assert_eq!(
        machk_obs::subscriber::subscriber_count(),
        0,
        "another bench emitted first; subs0 would not measure the empty dispatcher"
    );
    let mut g = c.benchmark_group("queued_lock_subscribers");
    g.sample_size(10);
    for threads in [1usize, 4] {
        g.bench_with_input(BenchmarkId::new("subs0", threads), &threads, |b, &t| {
            b.iter(|| counter_on(&LOCK, t, 50_000));
        });
    }
    assert!(machk_obs::subscriber::install_default());
    for threads in [1usize, 4] {
        g.bench_with_input(BenchmarkId::new("subs1", threads), &threads, |b, &t| {
            b.iter(|| counter_on(&LOCK, t, 50_000));
        });
    }
    let (ndjson, _sink) = machk_obs::NdjsonSubscriber::to_shared_vec(4_096);
    machk_obs::install(Box::new(ndjson))
        .ok()
        .expect("subscriber slots exhausted");
    machk_obs::install(Box::new(machk_obs::FlameSubscriber::new()))
        .ok()
        .expect("subscriber slots exhausted");
    for threads in [1usize, 4] {
        g.bench_with_input(BenchmarkId::new("subs3", threads), &threads, |b, &t| {
            b.iter(|| counter_on(&LOCK, t, 50_000));
        });
    }
    g.finish();
}

/// Without obs there is no dispatcher to scale; keep the group list
/// identical across builds.
#[cfg(not(feature = "obs"))]
fn multi_subscriber(_c: &mut Criterion) {}

criterion_group!(
    benches,
    multi_subscriber,
    contention_scaling,
    uncontended_cost,
    tracing_overhead
);
criterion_main!(benches);
