//! Queued-lock Criterion bench: contention scaling of the ticket and
//! MCS policies against the paper's word-spinning baselines, plus the
//! raw handoff cost of each queued mechanism at fixed oversubscription.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use machk_bench::workloads::simple_lock_counter;
use machk_core::{Backoff, SpinPolicy};

/// Throughput of the shared-counter workload per policy as waiters pile
/// up; 8 and 16 threads oversubscribe small hosts on purpose — that is
/// where admission order and per-waiter spinning start to matter.
fn contention_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("queued_lock_scaling");
    g.sample_size(10);
    for threads in [1usize, 2, 4, 8, 16] {
        for policy in SpinPolicy::ALL {
            g.bench_with_input(
                BenchmarkId::new(policy.name(), threads),
                &threads,
                |b, &threads| {
                    b.iter(|| simple_lock_counter(policy, Backoff::NONE, threads, 10_000));
                },
            );
        }
    }
    g.finish();
}

/// Uncontended single-thread cost: the queued fast paths must stay in
/// the same league as a plain test-and-set for the common
/// first-try-succeeds case the paper designs for.
fn uncontended_cost(c: &mut Criterion) {
    let mut g = c.benchmark_group("queued_lock_uncontended");
    g.sample_size(10);
    for policy in SpinPolicy::ALL {
        g.bench_with_input(BenchmarkId::new(policy.name(), 1), &1usize, |b, &threads| {
            b.iter(|| simple_lock_counter(policy, Backoff::NONE, threads, 100_000));
        });
    }
    g.finish();
}

criterion_group!(benches, contention_scaling, uncontended_cost);
criterion_main!(benches);
