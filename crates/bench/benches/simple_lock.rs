//! E1 Criterion bench: simple-lock acquisition policies.
//!
//! One Criterion group per thread count; bars compare TAS, TTAS,
//! TAS-then-TTAS (± backoff) on the shared-counter workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use machk_bench::workloads::simple_lock_counter;
use machk_core::{Backoff, SpinPolicy};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_simple_lock");
    g.sample_size(10);
    for threads in [1usize, 2, 4] {
        for policy in SpinPolicy::ALL {
            g.bench_with_input(
                BenchmarkId::new(policy.name(), threads),
                &threads,
                |b, &threads| {
                    b.iter(|| simple_lock_counter(policy, Backoff::NONE, threads, 20_000));
                },
            );
        }
        g.bench_with_input(
            BenchmarkId::new("tas+ttas+backoff", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    simple_lock_counter(SpinPolicy::TasThenTtas, Backoff::DEFAULT, threads, 20_000)
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
