//! E6 Criterion bench: event-wait handoffs vs host condvar.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use machk_bench::workloads::{condvar_handoff, event_handoff};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_event_wait");
    g.sample_size(10);
    for pairs in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("event_wait", pairs), &pairs, |b, &p| {
            b.iter(|| event_handoff(p, 2_000));
        });
        g.bench_with_input(BenchmarkId::new("condvar", pairs), &pairs, |b, &p| {
            b.iter(|| condvar_handoff(p, 2_000));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
