//! E9 Criterion bench: pmap/pv lock-ordering disciplines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use machk_bench::workloads::pmap_storm;
use machk_vm::OrderingDiscipline;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e9_pmap_order");
    g.sample_size(10);
    for threads in [1usize, 2, 4] {
        for d in OrderingDiscipline::ALL {
            g.bench_with_input(BenchmarkId::new(d.name(), threads), &threads, |b, &t| {
                b.iter(|| pmap_storm(d, t, 2_000));
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
