//! E14 Criterion bench: TLB shootdown latency vs machine size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use machk_intr::{BarrierOutcome, Machine};
use machk_vm::{PageId, TlbSystem};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One batch of `rounds` shootdowns on a fresh machine of `cpus`.
fn shootdown_batch(cpus: usize, rounds: u32) {
    let machine = Arc::new(Machine::new(cpus));
    let tlb = Arc::new(TlbSystem::new(Arc::clone(&machine), 1));
    let done = Arc::new(AtomicBool::new(false));
    machine.run(|cpu| {
        if cpu.id() == 0 {
            for i in 0..rounds {
                tlb.cache_translation(0, 0x1000 * i as u64, PageId(i));
                let outcome = tlb.shootdown_update(0, || {}, Duration::from_secs(10));
                assert_eq!(outcome, BarrierOutcome::Completed);
            }
            done.store(true, Ordering::SeqCst);
        } else {
            while !done.load(Ordering::SeqCst) {
                cpu.poll();
                core::hint::spin_loop();
            }
        }
    });
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e14_shootdown");
    g.sample_size(10);
    for cpus in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("rounds_50", cpus), &cpus, |b, &n| {
            b.iter(|| shootdown_batch(n, 50));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
