//! E8 Criterion bench: two-lock vs one-lock task.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use machk_bench::workloads::{task_mixed_ops, TaskFlavor};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_task_locks");
    g.sample_size(10);
    for threads in [1usize, 2, 4] {
        for flavor in TaskFlavor::ALL {
            for pct in [50u32, 90] {
                g.bench_with_input(
                    BenchmarkId::new(format!("{}/translate_{pct}pct", flavor.name()), threads),
                    &threads,
                    |b, &t| {
                        b.iter(|| task_mixed_ops(flavor, pct, t, 10_000));
                    },
                );
            }
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
