//! E2 Criterion bench: code locking vs data locking.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use machk_bench::workloads::{granularity_bank, Granularity};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2_granularity");
    g.sample_size(10);
    for threads in [1usize, 2, 4] {
        for kind in Granularity::ALL {
            let iters = if kind == Granularity::MasterProcessor {
                2_000
            } else {
                10_000
            };
            g.bench_with_input(
                BenchmarkId::new(kind.name(), threads),
                &threads,
                |b, &threads| {
                    b.iter(|| granularity_bank(kind, 64, threads, iters));
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
