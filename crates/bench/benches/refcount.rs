//! E5 Criterion bench: reference counting implementations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use machk_bench::workloads::{refcount_churn, refcount_storm, RefImpl};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5_refcount");
    g.sample_size(10);
    for threads in [1usize, 2, 4] {
        for imp in RefImpl::ALL {
            g.bench_with_input(
                BenchmarkId::new(format!("storm/{}", imp.name()), threads),
                &threads,
                |b, &t| {
                    b.iter(|| refcount_storm(imp, t, 20_000));
                },
            );
            g.bench_with_input(
                BenchmarkId::new(format!("churn/{}", imp.name()), threads),
                &threads,
                |b, &t| {
                    b.iter(|| refcount_churn(imp, t, 2_000, 4));
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
