//! E11 Criterion bench: paging-in-progress count throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use machk_bench::workloads::vm_object_paging_storm;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e11_vm_object");
    g.sample_size(10);
    for threads in [1usize, 2, 4] {
        g.bench_with_input(
            BenchmarkId::new("paging_ops", threads),
            &threads,
            |b, &t| {
                b.iter(|| vm_object_paging_storm(t, 10_000));
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
