//! NDJSON exporter through the real dispatcher: a bounded queue accepts
//! up to capacity, drops-and-counts past it, and resumes after a drain
//! — the "degrade to a sampler, account for every loss" contract.
//!
//! Own process on purpose: the installed exporter and its counters are
//! process-forever, and the capacity arithmetic below assumes no other
//! test shares the stream.

use machk_obs::{registry, EventKind, LockClass, NdjsonSubscriber};

#[test]
fn dispatcher_fed_exporter_drops_and_counts_past_capacity() {
    machk_obs::set_auto_install(false);

    const CAPACITY: usize = 16;
    let (sub, buf) = NdjsonSubscriber::to_shared_vec(CAPACITY);
    let sub: &'static NdjsonSubscriber = Box::leak(Box::new(sub));
    machk_obs::install_static(sub).expect("slot");

    // Overflow the queue through the real emit path.
    let id = registry::register("ndjson.probe", LockClass::Simple, "tas");
    let emits = (CAPACITY * 3) as u64;
    for i in 0..emits {
        machk_obs::emit(EventKind::SimpleAcquire, id, i);
    }

    assert_eq!(sub.accepted(), CAPACITY as u64, "queue accepts exactly capacity");
    assert_eq!(
        sub.dropped(),
        emits - CAPACITY as u64,
        "every overflow event is drop-counted, none silently lost"
    );

    // Drain: exactly the accepted events come out, one JSON line each,
    // with the registry-resolved lock name serialized in.
    assert_eq!(sub.drain().unwrap(), CAPACITY);
    assert_eq!(sub.written(), CAPACITY as u64);
    let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), CAPACITY);
    for line in &lines {
        assert!(line.starts_with('{') && line.ends_with('}'), "not NDJSON: {line}");
        assert!(line.contains("\"lock\":\"ndjson.probe\""), "name missing: {line}");
    }

    // The queue freed up: the stream resumes without further drops.
    machk_obs::emit(EventKind::SimpleRelease, id, 7);
    assert_eq!(sub.drain().unwrap(), 1);
    assert_eq!(sub.dropped(), emits - CAPACITY as u64, "post-drain emit was dropped");
    assert_eq!(sub.accepted(), CAPACITY as u64 + 1);
}
