//! Stress test for the seqlock trace ring: a writer overwriting the
//! oldest slots at full speed while readers snapshot concurrently must
//! never yield a torn event.
//!
//! Tearing is made detectable by construction: every pushed event
//! carries `arg = checksum(ts_ns, lock_id, thread)`. A snapshot that
//! mixed words from two different writes would (with overwhelming
//! probability) fail the checksum. The ring is allowed to *skip* a
//! slot that is mid-write — overwrite-oldest loses old events by
//! design — but everything it returns must be internally consistent.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use machk_obs::ring::{TraceRing, RING_CAPACITY};
use machk_obs::{EventKind, TraceEvent};

fn checksum(ts: u64, lock_id: u32, thread: u32) -> u64 {
    ts.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (u64::from(lock_id) << 32 | u64::from(thread)).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
}

fn make_event(i: u64) -> TraceEvent {
    let lock_id = (i % 509) as u32; // co-prime with capacity
    let thread = (i % 127) as u32;
    TraceEvent {
        ts_ns: i,
        kind: EventKind::from_u8((i % 20) as u8),
        lock_id,
        thread,
        arg: checksum(i, lock_id, thread),
        flags: (i % 3) as u8,
    }
}

fn assert_untorn(e: &TraceEvent) {
    assert_eq!(
        e.arg,
        checksum(e.ts_ns, e.lock_id, e.thread),
        "torn event read from ring: {e:?}"
    );
}

/// One writer laps the ring many times over while several readers
/// snapshot continuously. Every event any reader ever observes must
/// pass its checksum.
#[test]
fn concurrent_snapshots_never_observe_torn_events() {
    let ring = Arc::new(TraceRing::new(7));
    let stop = Arc::new(AtomicBool::new(false));
    let writes: u64 = (RING_CAPACITY as u64) * 64;

    std::thread::scope(|s| {
        for _ in 0..3 {
            let ring = Arc::clone(&ring);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut seen = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let snap = ring.snapshot();
                    for e in &snap {
                        assert_untorn(e);
                    }
                    seen += snap.len();
                }
                // One final full pass after the writer quiesced.
                let snap = ring.snapshot();
                for e in &snap {
                    assert_untorn(e);
                }
                seen + snap.len()
            });
        }
        // Writer: overwrite the ring dozens of times.
        for i in 0..writes {
            ring.push_owned(&make_event(i));
        }
        stop.store(true, Ordering::Relaxed);
    });

    assert_eq!(ring.pushed(), writes);
    // After the writer stops, the snapshot is exactly the newest
    // RING_CAPACITY events, in order.
    let settled = ring.snapshot();
    assert_eq!(settled.len(), RING_CAPACITY);
    for (off, e) in settled.iter().enumerate() {
        let expect = writes - RING_CAPACITY as u64 + off as u64;
        assert_eq!(*e, make_event(expect), "overwrite-oldest kept the newest window");
    }
}

/// The public `push` routes through the per-thread ring: hammer it
/// from many threads while aggregating, and verify merged snapshots
/// stay internally consistent and the totals add up.
#[test]
fn per_thread_push_with_concurrent_aggregation() {
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 20_000;
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        for t in 0..THREADS {
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    machk_obs::ring::push(make_event(t * PER_THREAD + i));
                }
            });
        }
        let stop2 = Arc::clone(&stop);
        s.spawn(move || {
            while !stop2.load(Ordering::Relaxed) {
                for e in machk_obs::ring::snapshot_all() {
                    assert_untorn(&e);
                }
            }
        });
        // Aggregate while the writers run, then release the aggregator
        // (the scope joins everything on exit).
        std::thread::sleep(std::time::Duration::from_millis(50));
        stop.store(true, Ordering::Relaxed);
    });

    let (pushed, rings) = machk_obs::ring::totals();
    assert!(
        pushed >= THREADS * PER_THREAD,
        "all pushes counted (other tests in this binary may add more): {pushed}"
    );
    assert!(rings >= THREADS as usize);
    for e in machk_obs::ring::snapshot_all() {
        assert_untorn(&e);
    }
}
