//! Property tests: the concurrent atomic histogram is exactly the
//! serial reference histogram for the same multiset of samples —
//! regardless of how the samples are split across recording threads.

use machk_obs::{HistSnapshot, Log2Hist};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Samples recorded concurrently from several threads aggregate to
    /// the same snapshot as histogramming the values serially.
    #[test]
    fn concurrent_recording_matches_serial_reference(
        values in proptest::collection::vec(any::<u64>(), 0..512),
        threads in 1usize..5,
    ) {
        let hist = Log2Hist::new();
        let chunk = values.len().div_ceil(threads).max(1);
        std::thread::scope(|s| {
            for part in values.chunks(chunk) {
                let hist = &hist;
                s.spawn(move || {
                    for &v in part {
                        hist.record(v);
                    }
                });
            }
        });
        prop_assert_eq!(hist.snapshot(), HistSnapshot::from_values(&values));
    }

    /// Merging per-thread snapshots equals one snapshot of everything:
    /// the report's merge pass loses nothing.
    #[test]
    fn merged_partial_snapshots_equal_whole(
        a in proptest::collection::vec(0u64..1_000_000, 0..256),
        b in proptest::collection::vec(0u64..1_000_000, 0..256),
    ) {
        let mut merged = HistSnapshot::from_values(&a);
        merged.merge(&HistSnapshot::from_values(&b));
        let mut all = a.clone();
        all.extend_from_slice(&b);
        prop_assert_eq!(merged, HistSnapshot::from_values(&all));
    }

    /// Derived statistics stay within the recorded range.
    #[test]
    fn percentiles_are_ordered_and_bounded(
        values in proptest::collection::vec(0u64..10_000_000, 1..256),
    ) {
        let s = HistSnapshot::from_values(&values);
        let p50 = s.percentile(50);
        let p99 = s.percentile(99);
        prop_assert!(p50 <= p99, "p50 {p50} <= p99 {p99}");
        // Log2 resolution: a percentile is at most one bucket above max.
        let max = *values.iter().max().unwrap();
        prop_assert!(p99 <= max.next_power_of_two().max(1), "p99 {p99} vs max {max}");
    }
}
