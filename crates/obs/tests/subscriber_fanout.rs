//! Dispatcher fan-out: every installed subscriber sees every event, in
//! the same order, on the emitting thread.
//!
//! Lives in its own integration-test binary on purpose: subscriber
//! installation is process-forever, so this file must own its process
//! (sharing one with other dispatcher tests would entangle their
//! install sets).

use std::sync::Mutex;

use machk_obs::{EventKind, LockSubscriber, TraceEvent};

/// Records every `(kind, lock_id, arg)` it is handed.
struct Recorder {
    seen: Mutex<Vec<(EventKind, u32, u64)>>,
}

impl Recorder {
    const fn new() -> Recorder {
        Recorder {
            seen: Mutex::new(Vec::new()),
        }
    }
}

impl LockSubscriber for Recorder {
    fn name(&self) -> &'static str {
        "recorder"
    }
    fn on_event(&self, ev: &TraceEvent) {
        self.seen.lock().unwrap().push((ev.kind, ev.lock_id, ev.arg));
    }
}

#[test]
fn every_subscriber_sees_the_same_event_sequence() {
    static A: Recorder = Recorder::new();
    static B: Recorder = Recorder::new();
    static C: Recorder = Recorder::new();

    // Keep the stats subscriber out so the install set is exactly ours.
    machk_obs::set_auto_install(false);
    machk_obs::install_static(&A).expect("slot");
    machk_obs::install_static(&B).expect("slot");
    machk_obs::install_static(&C).expect("slot");
    assert_eq!(
        machk_obs::subscriber::subscriber_names(),
        vec!["recorder"; 3]
    );

    let sequence: Vec<(EventKind, u32, u64)> = vec![
        (EventKind::SimpleAcquire, 1, 0),
        (EventKind::SimpleRelease, 1, 120),
        (EventKind::ComplexRead, 2, 40),
        (EventKind::ComplexUpgradeFail, 2, 0),
        (EventKind::RefTake, 3, 2),
        (EventKind::RingPush, 4, 7),
        (EventKind::RefRelease, 3, 1),
        (EventKind::ComplexRelease, 2, 900),
    ];
    for &(kind, id, arg) in &sequence {
        machk_obs::emit(kind, id, arg);
    }

    for rec in [&A, &B, &C] {
        assert_eq!(
            *rec.seen.lock().unwrap(),
            sequence,
            "a subscriber saw a different event sequence"
        );
    }
    assert_eq!(machk_obs::subscriber::reentrant_drops(), 0);
}
