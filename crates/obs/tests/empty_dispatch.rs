//! The zero-subscriber fast path: with auto-install off and nothing
//! installed, emits take the counted empty branch and no downstream
//! machinery (rings, registry counters) runs at all.
//!
//! Own process on purpose: the test's premise is that *nothing* in the
//! process ever installs a subscriber, which no shared test binary
//! could promise.

use machk_obs::{registry, ring, EventKind, LockClass};

#[test]
fn no_subscribers_means_counted_empty_dispatches_and_untouched_sinks() {
    // Before any traced operation: keep the default StatsSubscriber out.
    machk_obs::set_auto_install(false);

    let id = registry::register("empty.probe", LockClass::Simple, "tas");
    let emits = 100u64;
    for i in 0..emits {
        machk_obs::emit(EventKind::SimpleAcquire, id, i);
        machk_obs::emit(EventKind::SimpleRelease, id, i);
    }

    assert_eq!(machk_obs::subscriber::subscriber_count(), 0);
    assert_eq!(
        machk_obs::subscriber::empty_dispatches(),
        emits * 2,
        "every emit must take the counted empty branch"
    );

    // The sinks the StatsSubscriber would have fed stayed untouched:
    // nothing reached the per-thread rings…
    let (pushed, rings) = ring::totals();
    assert_eq!((pushed, rings), (0, 0), "events leaked into trace rings");
    assert!(ring::snapshot_all().is_empty());

    // …and the registered lock's counters never moved.
    let report = registry::snapshot()
        .into_iter()
        .find(|r| r.id == id)
        .expect("registered lock is in the registry snapshot");
    assert_eq!(report.acquires, 0, "registry counters moved without a subscriber");
    assert_eq!(report.wait.count, 0);
    assert_eq!(report.hold.count, 0);
}
