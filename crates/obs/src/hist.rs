//! Log2 (power-of-two bucket) time histograms.
//!
//! Means hide everything interesting about blocking behaviour: a lock
//! with a 50 ns average wait and a 10 ms tail is a different beast from
//! one that always waits 60 ns. The registry therefore keeps full
//! log2-bucket distributions of wait and hold times, updated with one
//! relaxed atomic increment per sample — the `lockstat -H` shape.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets. Bucket `i` (for `i ≥ 1`) holds samples `v` with
/// `2^(i-1) ≤ v < 2^i` nanoseconds; bucket 0 holds `v == 0`; the last
/// bucket additionally absorbs everything at or above `2^(BUCKETS-2)`
/// ns (≈ 1 s), which no sane lock wait should reach.
pub const BUCKETS: usize = 32;

/// Bucket index for a nanosecond sample.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros() as usize).min(BUCKETS - 1)
    }
}

/// Inclusive lower bound of bucket `i` in nanoseconds.
pub fn bucket_floor(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// A lock-free log2 histogram: concurrent `record`s, snapshot reads.
#[derive(Debug)]
pub struct Log2Hist {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Log2Hist {
    /// An empty histogram.
    pub const fn new() -> Log2Hist {
        Log2Hist {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one nanosecond sample.
    #[inline]
    pub fn record(&self, v: u64) {
        // relaxed: independent monotone counters; readers accept a
        // torn cross-field view (see `snapshot`).
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Point-in-time copy. Cross-field consistency is not guaranteed
    /// while writers are active (same contract as the seed's
    /// `LockStats`).
    pub fn snapshot(&self) -> HistSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (dst, src) in buckets.iter_mut().zip(&self.buckets) {
            // relaxed: advisory snapshot, per the method contract.
            *dst = src.load(Ordering::Relaxed);
        }
        HistSnapshot {
            buckets,
            // relaxed: same advisory-snapshot contract.
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Zero every bucket and counter.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed); // relaxed: advisory zeroing
        }
        // relaxed: advisory zeroing, like the reads.
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

impl Default for Log2Hist {
    fn default() -> Self {
        Self::new()
    }
}

/// A plain-data copy of a [`Log2Hist`], with the derived statistics
/// reports need.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct HistSnapshot {
    /// Per-bucket sample counts.
    pub buckets: [u64; BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (ns).
    pub sum: u64,
    /// Largest sample (ns).
    pub max: u64,
}

impl HistSnapshot {
    /// The serial reference: histogram a slice of samples directly.
    /// The property tests assert the concurrent atomic histogram
    /// equals this for the same multiset of samples.
    pub fn from_values(values: &[u64]) -> HistSnapshot {
        let mut s = HistSnapshot::default();
        for &v in values {
            s.buckets[bucket_of(v)] += 1;
            s.count += 1;
            // The atomic histogram's sum wraps (fetch_add semantics);
            // the reference must agree on pathological inputs.
            s.sum = s.sum.wrapping_add(v);
            s.max = s.max.max(v);
        }
        s
    }

    /// Merge another snapshot into this one (bucket-wise sum).
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Mean sample in ns (0 for an empty histogram).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Upper bound (exclusive, in ns) of the bucket containing the
    /// p-th percentile sample, `p` in 0..=100. An approximation with
    /// log2 resolution, which is all a distribution report needs.
    pub fn percentile(&self, p: u8) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (u128::from(self.count) * u128::from(p.min(100)) / 100).max(1) as u64;
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return bucket_floor(i + 1).max(1);
            }
        }
        self.max
    }

    /// Render as an ASCII bar chart, one row per non-empty bucket
    /// range, `width` columns for the largest bucket.
    pub fn render(&self, indent: &str, width: usize) -> String {
        let mut out = String::new();
        if self.count == 0 {
            out.push_str(indent);
            out.push_str("(no samples)\n");
            return out;
        }
        let lo = self.buckets.iter().position(|&b| b > 0).unwrap_or(0);
        let hi = BUCKETS - 1 - self.buckets.iter().rev().position(|&b| b > 0).unwrap_or(0);
        let peak = *self.buckets.iter().max().unwrap();
        for i in lo..=hi {
            let bar = (self.buckets[i] as u128 * width as u128 / peak as u128) as usize;
            out.push_str(&format!(
                "{indent}{:>9} | {:<width$} {}\n",
                fmt_ns(bucket_floor(i)),
                "#".repeat(bar),
                self.buckets[i],
            ));
        }
        out
    }
}

/// Human formatting for a nanosecond figure (`640ns`, `2.1µs`, `3.4ms`).
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.1}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        // Floor of bucket i contains itself.
        for i in 1..BUCKETS - 1 {
            assert_eq!(bucket_of(bucket_floor(i)), i);
        }
    }

    #[test]
    fn atomic_matches_serial_reference() {
        let values = [0u64, 1, 1, 7, 64, 65, 1_000_000, u64::MAX];
        let h = Log2Hist::new();
        for &v in &values {
            h.record(v);
        }
        assert_eq!(h.snapshot(), HistSnapshot::from_values(&values));
    }

    #[test]
    fn merge_equals_concatenation() {
        let a = [1u64, 5, 9];
        let b = [2u64, 1024, 0];
        let mut m = HistSnapshot::from_values(&a);
        m.merge(&HistSnapshot::from_values(&b));
        let mut all = a.to_vec();
        all.extend(b);
        assert_eq!(m, HistSnapshot::from_values(&all));
    }

    #[test]
    fn percentile_and_mean() {
        let h = Log2Hist::new();
        for _ in 0..99 {
            h.record(10);
        }
        h.record(1_000_000);
        let s = h.snapshot();
        assert_eq!(s.mean(), (99 * 10 + 1_000_000) / 100);
        assert!(s.percentile(50) <= 16, "p50 in the 10ns bucket");
        assert!(s.percentile(100) >= 1_000_000 / 2, "p100 sees the tail");
        assert_eq!(HistSnapshot::default().percentile(99), 0);
    }

    #[test]
    fn reset_zeroes() {
        let h = Log2Hist::new();
        h.record(5);
        h.reset();
        assert_eq!(h.snapshot(), HistSnapshot::default());
    }

    #[test]
    fn render_is_nonempty_and_scaled() {
        let s = HistSnapshot::from_values(&[4, 4, 4, 4, 100]);
        let r = s.render("  ", 20);
        assert!(r.contains("####################"), "peak bucket at full width:\n{r}");
        assert!(HistSnapshot::default().render("", 10).contains("no samples"));
    }
}
