//! Streaming NDJSON export: a [`LockSubscriber`] that buffers events
//! and drains them as newline-delimited JSON to a pluggable writer.
//!
//! The hot path must never block on I/O (it runs while the traced lock
//! is held), so `on_event` only appends to a bounded in-memory queue —
//! serialization and writing happen in [`NdjsonSubscriber::drain`],
//! called from whatever cadence the consumer likes (end of an
//! experiment, a flusher thread, a test assertion). When the queue is
//! full the event is **dropped and counted**, never blocked on: the
//! exporter degrades to a sampler under overload, and the drop counter
//! says exactly how lossy the stream was (`lockstat`'s philosophy —
//! honest accounting beats silent loss).

use std::collections::VecDeque;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::event::TraceEvent;
use crate::registry;
use crate::subscriber::LockSubscriber;

/// Bounded, drop-counting, writer-pluggable NDJSON exporter.
pub struct NdjsonSubscriber {
    queue: Mutex<VecDeque<TraceEvent>>,
    capacity: usize,
    dropped: AtomicU64,
    accepted: AtomicU64,
    written: AtomicU64,
    writer: Mutex<Box<dyn Write + Send>>,
}

impl NdjsonSubscriber {
    /// Exporter with a `capacity`-event buffer draining into `writer`.
    pub fn new(capacity: usize, writer: Box<dyn Write + Send>) -> NdjsonSubscriber {
        NdjsonSubscriber {
            queue: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity: capacity.max(1),
            dropped: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            written: AtomicU64::new(0),
            writer: Mutex::new(writer),
        }
    }

    /// Exporter draining into a shared in-memory byte buffer (tests,
    /// E16's artifact capture). Returns the subscriber and the buffer.
    pub fn to_shared_vec(capacity: usize) -> (NdjsonSubscriber, Arc<Mutex<Vec<u8>>>) {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let writer = VecWriter(Arc::clone(&buf));
        (Self::new(capacity, Box::new(writer)), buf)
    }

    /// Serialize and write every buffered event; returns the number of
    /// lines written. I/O errors are returned, with the drained events
    /// lost (counted as written already — the stream is lossy by
    /// contract, not transactional).
    pub fn drain(&self) -> std::io::Result<usize> {
        let batch: Vec<TraceEvent> = {
            let mut q = self.queue.lock().unwrap();
            q.drain(..).collect()
        };
        if batch.is_empty() {
            return Ok(0);
        }
        let mut out = String::with_capacity(batch.len() * 96);
        for ev in &batch {
            out.push_str(&line_for(ev));
            out.push('\n');
        }
        let mut w = self.writer.lock().unwrap();
        w.write_all(out.as_bytes())?;
        w.flush()?;
        // relaxed: monotone stats counter.
        self.written.fetch_add(batch.len() as u64, Ordering::Relaxed); // relaxed: stats counter
        Ok(batch.len())
    }

    /// Events dropped because the buffer was full.
    pub fn dropped(&self) -> u64 {
        // relaxed: advisory read.
        self.dropped.load(Ordering::Relaxed)
    }

    /// Events accepted into the buffer (drained or still queued).
    pub fn accepted(&self) -> u64 {
        // relaxed: advisory read.
        self.accepted.load(Ordering::Relaxed)
    }

    /// Lines written out by [`NdjsonSubscriber::drain`] so far.
    pub fn written(&self) -> u64 {
        // relaxed: advisory read.
        self.written.load(Ordering::Relaxed)
    }

    /// Buffer capacity (events).
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl LockSubscriber for NdjsonSubscriber {
    fn name(&self) -> &'static str {
        "ndjson"
    }

    fn on_event(&self, ev: &TraceEvent) {
        let mut q = self.queue.lock().unwrap();
        if q.len() >= self.capacity {
            drop(q);
            // relaxed: monotone stats counter.
            self.dropped.fetch_add(1, Ordering::Relaxed); // relaxed: stats counter
            return;
        }
        q.push_back(*ev);
        drop(q);
        // relaxed: monotone stats counter.
        self.accepted.fetch_add(1, Ordering::Relaxed); // relaxed: stats counter
    }
}

/// One NDJSON line (no trailing newline) for an event. The lock name
/// is resolved through the registry at serialization time so the hot
/// path never touches the name table.
pub fn line_for(ev: &TraceEvent) -> String {
    format!(
        "{{\"ts_ns\":{},\"kind\":\"{}\",\"lock_id\":{},\"lock\":{},\"thread\":{},\"arg\":{},\"flags\":{}}}",
        ev.ts_ns,
        ev.kind.label(),
        ev.lock_id,
        json_name(ev.lock_id),
        ev.thread,
        ev.arg,
        ev.flags,
    )
}

fn json_name(id: u32) -> String {
    let name = if id == 0 { "" } else { registry::name_of(id) };
    let mut out = String::with_capacity(name.len() + 2);
    out.push('"');
    for c in name.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// `Write` into an `Arc<Mutex<Vec<u8>>>` — the shared-buffer writer
/// behind [`NdjsonSubscriber::to_shared_vec`].
pub struct VecWriter(pub Arc<Mutex<Vec<u8>>>);

impl Write for VecWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventKind;

    fn ev(arg: u64) -> TraceEvent {
        TraceEvent {
            ts_ns: arg,
            kind: EventKind::SimpleAcquire,
            lock_id: 0,
            thread: 1,
            arg,
            flags: 0,
        }
    }

    #[test]
    fn lines_are_single_json_objects() {
        let line = line_for(&ev(42));
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"kind\":\"simple_acquire\""));
        assert!(line.contains("\"arg\":42"));
        assert!(!line.contains('\n'));
    }

    #[test]
    fn drops_count_exactly_past_capacity() {
        let (sub, buf) = NdjsonSubscriber::to_shared_vec(4);
        for i in 0..10 {
            sub.on_event(&ev(i));
        }
        assert_eq!(sub.accepted(), 4);
        assert_eq!(sub.dropped(), 6);
        assert_eq!(sub.drain().unwrap(), 4);
        assert_eq!(sub.written(), 4);
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 4);
        // Capacity frees up after a drain; the stream resumes.
        sub.on_event(&ev(99));
        assert_eq!(sub.drain().unwrap(), 1);
        assert_eq!(sub.dropped(), 6, "post-drain events are not dropped");
    }
}
