//! Per-thread, lock-free, overwrite-oldest trace rings.
//!
//! Each thread owns one fixed-capacity ring; only the owning thread
//! writes it, so the write path is a handful of plain atomic stores
//! with no shared cache line between producers — the "per-CPU buffer"
//! discipline of kernel tracers (this reproduction's CPUs are
//! threads). Aggregation ([`snapshot_all`]) may run on any thread at
//! any time: each slot is a tiny seqlock (sequence word + four data
//! words, all atomics), so a reader either gets a whole event or
//! rejects the slot — never a torn record. The fence protocol is the
//! classic seqlock recipe: writer marks the slot odd, release-fences,
//! writes the words, then publishes an even sequence; the reader
//! validates with an acquire fence between the data loads and the
//! sequence re-check.

use std::cell::Cell;
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::event::TraceEvent;

/// Events per ring. Power of two; at ~1 event per traced lock
/// operation this holds the most recent few thousand operations per
/// thread, which is what a post-run report wants (totals live in the
/// registry, not the ring).
pub const RING_CAPACITY: usize = 4096;

/// One slot: a sequence word and the packed event.
///
/// `seq` is `2*generation + 1` while the owner is writing generation
/// `generation`, `2*generation + 2` once it is published, and 0 for a
/// never-written slot. Cache-line padding keeps a hot writer slot from
/// false-sharing with a concurrent reader's neighbour loads.
#[repr(align(64))]
struct Slot {
    seq: AtomicU64,
    words: [AtomicU64; 4],
}

impl Slot {
    const fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            words: [
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
            ],
        }
    }
}

/// A single thread's trace ring. Writes are owner-only; snapshots are
/// safe from any thread.
pub struct TraceRing {
    slots: Box<[Slot]>,
    /// Monotonic count of events ever pushed; the next write goes to
    /// `head % capacity`.
    head: AtomicU64,
    /// Thread tag of the owner, for reports.
    owner: u32,
}

impl TraceRing {
    /// A fresh ring. Most callers never construct one directly — the
    /// thread-local ring behind [`push`] is made on first use — but a
    /// standalone ring is handy for stress tests and embedding.
    pub fn new(owner: u32) -> TraceRing {
        TraceRing {
            slots: (0..RING_CAPACITY).map(|_| Slot::new()).collect(),
            head: AtomicU64::new(0),
            owner,
        }
    }

    /// Total events ever pushed (≥ events currently held).
    pub fn pushed(&self) -> u64 {
        // relaxed: advisory diagnostic counter.
        self.head.load(Ordering::Relaxed)
    }

    /// The owning thread's tag.
    pub fn owner(&self) -> u32 {
        self.owner
    }

    /// Owner-only write: overwrite the oldest slot with `ev`.
    ///
    /// Tracing callers go through [`push`], which routes to the calling
    /// thread's own ring, preserving the single-writer discipline.
    /// Calling this from two threads at once is memory-safe (all slots
    /// are atomics) but forfeits the tear-free guarantee — don't.
    pub fn push_owned(&self, ev: &TraceEvent) {
        // relaxed: `head` is only written by this owner thread.
        let h = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(h as usize) & (RING_CAPACITY - 1)];
        // Generation g = number of times this slot has been written.
        let generation = h / RING_CAPACITY as u64;
        // relaxed: the seqlock protocol orders these — the Release
        // fence keeps the odd seq before the word stores, and readers
        // reject any slot whose seq moved or is odd.
        slot.seq.store(2 * generation + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        let w = ev.pack();
        for (dst, src) in slot.words.iter().zip(w) {
            // relaxed: guarded by the seq protocol above.
            dst.store(src, Ordering::Relaxed);
        }
        slot.seq.store(2 * generation + 2, Ordering::Release);
        self.head.store(h + 1, Ordering::Release);
    }

    /// Copy out every published event, oldest first. Slots mid-write
    /// are retried briefly, then skipped; an event is either returned
    /// whole or not at all.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(RING_CAPACITY);
        let head = self.head.load(Ordering::Acquire);
        let start = head.saturating_sub(RING_CAPACITY as u64);
        for i in start..head {
            let slot = &self.slots[(i as usize) & (RING_CAPACITY - 1)];
            for _attempt in 0..4 {
                let s1 = slot.seq.load(Ordering::Acquire);
                if s1 == 0 || s1 & 1 == 1 {
                    // Unwritten, or the owner is mid-write: retry.
                    std::hint::spin_loop();
                    continue;
                }
                let mut w = [0u64; 4];
                for (dst, src) in w.iter_mut().zip(&slot.words) {
                    // relaxed: speculative; the seq re-check below
                    // (after the Acquire fence) rejects torn copies.
                    *dst = src.load(Ordering::Relaxed);
                }
                fence(Ordering::Acquire);
                // relaxed: ordered by the Acquire fence just above.
                let s2 = slot.seq.load(Ordering::Relaxed);
                if s1 == s2 {
                    out.push(TraceEvent::unpack(w));
                    break;
                }
                // The owner lapped us mid-copy; retry with the newer
                // generation.
            }
        }
        out.sort_by_key(|e| e.ts_ns);
        out
    }
}

/// All rings ever created, for aggregation. Rings outlive their
/// threads (a report after a worker exits still sees its events);
/// one ring per thread for the process lifetime is the deliberate
/// trade.
fn all_rings() -> &'static Mutex<Vec<Arc<TraceRing>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<TraceRing>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static MY_RING: Arc<TraceRing> = {
        let ring = Arc::new(TraceRing::new(crate::thread_tag()));
        all_rings().lock().unwrap().push(Arc::clone(&ring));
        ring
    };
    /// Reentrancy latch: registering a ring takes a mutex, which is a
    /// lock acquisition that could itself be traced. Drop events
    /// emitted while the ring is being set up.
    static IN_SETUP: Cell<bool> = const { Cell::new(false) };
}

/// Record `ev` in the calling thread's ring.
#[inline]
pub fn push(ev: TraceEvent) {
    IN_SETUP.with(|flag| {
        if flag.get() {
            return;
        }
        flag.set(true);
        MY_RING.with(|r| r.push_owned(&ev));
        flag.set(false);
    });
}

/// Snapshot of every thread's ring, merged oldest-first.
pub fn snapshot_all() -> Vec<TraceEvent> {
    let rings: Vec<Arc<TraceRing>> = all_rings().lock().unwrap().clone();
    let mut out: Vec<TraceEvent> = rings.iter().flat_map(|r| r.snapshot()).collect();
    out.sort_by_key(|e| e.ts_ns);
    out
}

/// Snapshot of the calling thread's ring only (tests, examples).
pub fn snapshot_current_thread() -> Vec<TraceEvent> {
    MY_RING.with(|r| r.snapshot())
}

/// Total events ever pushed across all rings, and the ring count.
pub fn totals() -> (u64, usize) {
    let rings = all_rings().lock().unwrap();
    (rings.iter().map(|r| r.pushed()).sum(), rings.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(i: u64) -> TraceEvent {
        TraceEvent {
            ts_ns: i,
            kind: EventKind::SimpleAcquire,
            lock_id: i as u32,
            thread: 1,
            arg: i.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            flags: (i % 5) as u8,
        }
    }

    #[test]
    fn ring_returns_pushed_events_in_order() {
        let ring = TraceRing::new(0);
        for i in 0..100 {
            ring.push_owned(&ev(i));
        }
        let got = ring.snapshot();
        assert_eq!(got.len(), 100);
        for (i, e) in got.iter().enumerate() {
            assert_eq!(*e, ev(i as u64));
        }
    }

    #[test]
    fn ring_overwrites_oldest() {
        let ring = TraceRing::new(0);
        let n = (RING_CAPACITY + 123) as u64;
        for i in 0..n {
            ring.push_owned(&ev(i));
        }
        let got = ring.snapshot();
        assert_eq!(got.len(), RING_CAPACITY);
        // The survivors are exactly the newest RING_CAPACITY events.
        assert_eq!(got.first().unwrap().ts_ns, n - RING_CAPACITY as u64);
        assert_eq!(got.last().unwrap().ts_ns, n - 1);
        assert_eq!(ring.pushed(), n);
    }

    #[test]
    fn snapshot_of_empty_ring_is_empty() {
        assert!(TraceRing::new(0).snapshot().is_empty());
    }

    #[test]
    fn per_thread_rings_merge() {
        push(ev(1));
        std::thread::scope(|s| {
            s.spawn(|| push(ev(2)));
        });
        let all = snapshot_all();
        assert!(all.iter().any(|e| e.ts_ns == 1));
        assert!(all.iter().any(|e| e.ts_ns == 2));
        let (pushed, rings) = totals();
        assert!(pushed >= 2);
        assert!(rings >= 2);
    }
}
