//! The aggregation pass: a `lockstat`-style report.
//!
//! [`Lockstat::collect`] freezes the registry counters, the order
//! graph, and the trace-ring totals into plain data;
//! [`Lockstat::render_text`] and [`Lockstat::render_json`] turn that
//! into the report the `experiments lockstat` subcommand prints: top-N
//! locks by contention, wait/hold log2 histograms, reader/writer/
//! upgrade breakdown, per-policy comparison, refcount traffic, and
//! lock-order cycles.

use std::collections::BTreeMap;

use crate::hist::{fmt_ns, HistSnapshot};
use crate::order;
use crate::registry::{self, LockClass, LockReport};
use crate::ring;

/// A frozen, plain-data lockstat capture.
pub struct Lockstat {
    /// Every registered lock, sorted by contended count descending.
    pub locks: Vec<LockReport>,
    /// Order-graph edges `(from, to, count)`.
    pub edges: Vec<(u32, u32, u64)>,
    /// Detected order cycles (id sequences).
    pub cycles: Vec<Vec<u32>>,
    /// Total trace events ever recorded, and ring (thread) count.
    pub events: (u64, usize),
}

impl Lockstat {
    /// Capture the current state of every obs surface.
    pub fn collect() -> Lockstat {
        let mut locks = registry::snapshot();
        locks.sort_by(|a, b| {
            b.contended
                .cmp(&a.contended)
                .then(b.acquires.cmp(&a.acquires))
                .then(a.id.cmp(&b.id))
        });
        Lockstat {
            locks,
            edges: order::edges(),
            cycles: order::cycles(),
            events: ring::totals(),
        }
    }

    /// Aggregate simple-lock counters by acquisition-policy label.
    fn by_policy(&self) -> BTreeMap<&'static str, (u64, u64, HistSnapshot)> {
        let mut map: BTreeMap<&'static str, (u64, u64, HistSnapshot)> = BTreeMap::new();
        for l in &self.locks {
            if l.policy.is_empty() || l.acquires == 0 {
                continue;
            }
            let slot = map.entry(l.policy).or_default();
            slot.0 += l.acquires;
            slot.1 += l.contended;
            slot.2.merge(&l.wait);
        }
        map
    }

    /// Render the text report; `top` bounds the per-lock sections and
    /// `histograms` controls whether the per-lock distributions print.
    pub fn render_text(&self, top: usize, histograms: bool) -> String {
        let mut out = String::new();
        let sep = "=".repeat(72);
        out.push_str(&format!("lockstat: kernel-wide lock contention profile\n{sep}\n"));
        out.push_str(&format!(
            "registered locks: {}   trace events: {} across {} thread ring(s)\n\n",
            self.locks.len(),
            self.events.0,
            self.events.1
        ));

        // ---- top-N by contention ----
        out.push_str(&format!("top {} locks by contention\n", top.min(self.locks.len())));
        out.push_str(&format!(
            "{:<26} {:<8} {:<6} {:>9} {:>9} {:>6} {:>9} {:>9} {:>9}\n",
            "name", "class", "policy", "acquires", "contended", "cont%", "wait-avg", "wait-max", "hold-avg"
        ));
        for l in self.locks.iter().take(top) {
            out.push_str(&format!(
                "{:<26} {:<8} {:<6} {:>9} {:>9} {:>5.1}% {:>9} {:>9} {:>9}\n",
                truncate(l.name, 26),
                l.class.label(),
                l.policy,
                l.acquires,
                l.contended,
                100.0 * l.contention_rate(),
                fmt_ns(l.wait.mean()),
                fmt_ns(l.wait.max),
                fmt_ns(l.hold.mean()),
            ));
        }
        out.push('\n');

        // ---- per-lock distributions ----
        if histograms {
            for l in self.locks.iter().take(top) {
                if l.wait.count == 0 && l.hold.count == 0 {
                    continue;
                }
                out.push_str(&format!(
                    "{} — wait-time distribution (p50 {} / p99 {}):\n",
                    l.name,
                    fmt_ns(l.wait.percentile(50)),
                    fmt_ns(l.wait.percentile(99)),
                ));
                out.push_str(&l.wait.render("  ", 40));
                if l.hold.count > 0 {
                    out.push_str(&format!(
                        "{} — hold-time distribution (p50 {} / p99 {}):\n",
                        l.name,
                        fmt_ns(l.hold.percentile(50)),
                        fmt_ns(l.hold.percentile(99)),
                    ));
                    out.push_str(&l.hold.render("  ", 40));
                }
                out.push('\n');
            }
        }

        // ---- complex-lock breakdown ----
        let complex: Vec<&LockReport> = self
            .locks
            .iter()
            .filter(|l| l.class == LockClass::Complex && l.acquires + l.upgrades_failed > 0)
            .collect();
        if !complex.is_empty() {
            out.push_str("complex locks: reader/writer/upgrade breakdown\n");
            out.push_str(&format!(
                "{:<26} {:>9} {:>9} {:>8} {:>9} {:>10} {:>10}\n",
                "name", "reads", "writes", "upg-ok", "upg-fail", "downgrades", "upg-fail%"
            ));
            for l in &complex {
                let upg = l.upgrades_ok + l.upgrades_failed;
                let rate = if upg == 0 {
                    0.0
                } else {
                    100.0 * l.upgrades_failed as f64 / upg as f64
                };
                out.push_str(&format!(
                    "{:<26} {:>9} {:>9} {:>8} {:>9} {:>10} {:>9.1}%\n",
                    truncate(l.name, 26),
                    l.reads,
                    l.writes,
                    l.upgrades_ok,
                    l.upgrades_failed,
                    l.downgrades,
                    rate,
                ));
            }
            out.push('\n');
        }

        // ---- per-policy comparison ----
        let policies = self.by_policy();
        if policies.len() > 1 {
            out.push_str("acquisition-policy comparison (aggregated over named locks)\n");
            out.push_str(&format!(
                "{:<10} {:>10} {:>10} {:>6} {:>9} {:>9} {:>9}\n",
                "policy", "acquires", "contended", "cont%", "wait-avg", "wait-p99", "wait-max"
            ));
            for (policy, (acq, cont, wait)) in &policies {
                out.push_str(&format!(
                    "{:<10} {:>10} {:>10} {:>5.1}% {:>9} {:>9} {:>9}\n",
                    policy,
                    acq,
                    cont,
                    if *acq == 0 { 0.0 } else { 100.0 * *cont as f64 / *acq as f64 },
                    fmt_ns(wait.mean()),
                    fmt_ns(wait.percentile(99)),
                    fmt_ns(wait.max),
                ));
            }
            out.push('\n');
        }

        // ---- refcount traffic ----
        let refs: Vec<&LockReport> = self
            .locks
            .iter()
            .filter(|l| l.ref_takes + l.ref_releases > 0)
            .collect();
        if !refs.is_empty() {
            out.push_str("reference counts\n");
            out.push_str(&format!(
                "{:<26} {:>10} {:>10} {:>8}\n",
                "name", "takes", "releases", "drains"
            ));
            for l in &refs {
                out.push_str(&format!(
                    "{:<26} {:>10} {:>10} {:>8}\n",
                    truncate(l.name, 26),
                    l.ref_takes,
                    l.ref_releases,
                    l.ref_drains,
                ));
            }
            out.push('\n');
        }

        // ---- lock-order diagnostics ----
        out.push_str(&format!(
            "lock-order graph: {} edge(s), {} cycle(s)\n",
            self.edges.len(),
            self.cycles.len()
        ));
        for (a, b, n) in self.edges.iter().take(top) {
            out.push_str(&format!(
                "  {} -> {}  ({} acquisition pair(s))\n",
                registry::name_of(*a),
                registry::name_of(*b),
                n
            ));
        }
        if self.cycles.is_empty() {
            out.push_str("  no order cycles observed — acquisition order is consistent\n");
        } else {
            out.push_str("  POTENTIAL DEADLOCK — cyclic acquisition order observed:\n");
            for c in &self.cycles {
                out.push_str(&format!("    cycle: {}\n", order::render_cycle(c)));
            }
        }
        out
    }

    /// Render as JSON (hand-rolled; the workspace deliberately has no
    /// serde). Schema: `{locks: [...], edges: [...], cycles: [...],
    /// events: n}`.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"locks\": [\n");
        for (i, l) in self.locks.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"id\": {}, \"name\": {}, \"class\": \"{}\", \"policy\": \"{}\", \
                 \"acquires\": {}, \"contended\": {}, \"try_failures\": {}, \
                 \"wait_mean_ns\": {}, \"wait_p99_ns\": {}, \"wait_max_ns\": {}, \
                 \"hold_mean_ns\": {}, \"reads\": {}, \"writes\": {}, \
                 \"upgrades_ok\": {}, \"upgrades_failed\": {}, \"downgrades\": {}, \
                 \"ref_takes\": {}, \"ref_releases\": {}, \"ref_drains\": {}}}{}\n",
                l.id,
                json_string(l.name),
                l.class.label(),
                l.policy,
                l.acquires,
                l.contended,
                l.try_failures,
                l.wait.mean(),
                l.wait.percentile(99),
                l.wait.max,
                l.hold.mean(),
                l.reads,
                l.writes,
                l.upgrades_ok,
                l.upgrades_failed,
                l.downgrades,
                l.ref_takes,
                l.ref_releases,
                l.ref_drains,
                if i + 1 == self.locks.len() { "" } else { "," },
            ));
        }
        out.push_str("  ],\n  \"edges\": [\n");
        for (i, (a, b, n)) in self.edges.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"from\": {}, \"to\": {}, \"count\": {}}}{}\n",
                json_string(registry::name_of(*a)),
                json_string(registry::name_of(*b)),
                n,
                if i + 1 == self.edges.len() { "" } else { "," },
            ));
        }
        out.push_str("  ],\n  \"cycles\": [\n");
        for (i, c) in self.cycles.iter().enumerate() {
            let names: Vec<String> = c.iter().map(|&id| json_string(registry::name_of(id))).collect();
            out.push_str(&format!(
                "    [{}]{}\n",
                names.join(", "),
                if i + 1 == self.cycles.len() { "" } else { "," },
            ));
        }
        out.push_str(&format!("  ],\n  \"trace_events\": {}\n}}\n", self.events.0));
        out
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}…", &s[..s.char_indices().take_while(|(i, _)| *i < n - 1).last().map(|(i, c)| i + c.len_utf8()).unwrap_or(0)])
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{record_acquire, record_hold, register};

    #[test]
    fn collect_and_render_include_registered_locks() {
        let id = register("test.report.hot", LockClass::Simple, "mcs");
        for i in 0..100 {
            record_acquire(id, i * 10, i % 4 == 0);
        }
        record_hold(id, 1_000);
        let stat = Lockstat::collect();
        let text = stat.render_text(10, true);
        assert!(text.contains("test.report.hot"), "{text}");
        assert!(text.contains("lock-order graph"), "{text}");
        let json = stat.render_json();
        assert!(json.contains("\"test.report.hot\""), "{json}");
        assert!(json.contains("\"acquires\": 100") || json.contains("\"acquires\":"), "{json}");
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("x\ny"), "\"x\\u000ay\"");
    }

    #[test]
    fn truncate_is_utf8_safe() {
        assert_eq!(truncate("short", 26), "short");
        let t = truncate("averyveryverylongname_with_more", 10);
        assert!(t.chars().count() <= 10);
        let _ = truncate("ünïcödé_nâmé_thät_ïs_lông_ënöügh", 10);
    }
}
