//! The typed trace event — the unit the rings record.
//!
//! Events are fixed-size and `Copy` so a ring slot can store one as
//! four atomic words (the crate-private `pack` / `unpack` pair);
//! the per-slot seqlock in [`crate::ring`] validates that the four
//! words belong to the same write, so readers never see a torn event.

/// What happened. One discriminant per traced operation across every
/// synchronization layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
#[allow(missing_docs)] // variant names are the documentation
pub enum EventKind {
    /// Simple lock acquired; `arg` = wait time in ns (0 if first-try).
    SimpleAcquire = 0,
    /// Simple lock acquisition was contended; `arg` = failed/waited
    /// spin rounds before success.
    SimpleContended = 1,
    /// Simple lock released; `arg` = hold time in ns.
    SimpleRelease = 2,
    /// `simple_lock_try` failed.
    SimpleTryFail = 3,
    /// Complex lock acquired for read; `arg` = wait ns.
    ComplexRead = 4,
    /// Complex lock acquired for write; `arg` = wait ns.
    ComplexWrite = 5,
    /// Read→write upgrade succeeded; `arg` = wait ns.
    ComplexUpgradeOk = 6,
    /// Read→write upgrade failed (read lock lost, §7.1 recovery case).
    ComplexUpgradeFail = 7,
    /// Write→read downgrade.
    ComplexDowngrade = 8,
    /// Complex lock released (`lock_done`); `arg` = hold ns for write
    /// holds, 0 where the raw interface cannot attribute the hold.
    ComplexRelease = 9,
    /// Complex try-acquisition failed.
    ComplexTryFail = 10,
    /// Reference taken; `arg` = approximate count after.
    RefTake = 11,
    /// Reference released; `arg` = approximate count after.
    RefRelease = 12,
    /// Sharded count drained to exact (slow path serialization).
    RefDrain = 13,
    /// Final release detected — the destroy-now signal of §8.
    RefFinal = 14,
    /// Object deactivated (§9 transition).
    Deactivate = 15,
    /// spl raised; `arg` = (new level << 8) | previous level.
    SplRaise = 16,
    /// spl restored; `arg` = restored-to level.
    SplRestore = 17,
    /// Thread declared + blocked on an event; `arg` = event word.
    EventWait = 18,
    /// Wakeup posted; `arg` = number of threads awakened.
    EventWakeup = 19,
    /// Message ring push succeeded; `arg` = approximate depth after.
    RingPush = 20,
    /// Message ring pop / batch drain; `arg` = messages dequeued.
    RingPop = 21,
    /// Message ring push refused (at its logical limit, §3 backpressure).
    RingFull = 22,
    /// IPC engine dispatch-loop batch completed; `arg` = ops dispatched.
    EngineBatch = 23,
    /// Unrecognized discriminant (forward compatibility of unpack).
    Unknown = 255,
}

impl EventKind {
    /// Decode a kind byte; unknown values map to [`EventKind::Unknown`].
    pub fn from_u8(v: u8) -> EventKind {
        use EventKind::*;
        match v {
            0 => SimpleAcquire,
            1 => SimpleContended,
            2 => SimpleRelease,
            3 => SimpleTryFail,
            4 => ComplexRead,
            5 => ComplexWrite,
            6 => ComplexUpgradeOk,
            7 => ComplexUpgradeFail,
            8 => ComplexDowngrade,
            9 => ComplexRelease,
            10 => ComplexTryFail,
            11 => RefTake,
            12 => RefRelease,
            13 => RefDrain,
            14 => RefFinal,
            15 => Deactivate,
            16 => SplRaise,
            17 => SplRestore,
            18 => EventWait,
            19 => EventWakeup,
            20 => RingPush,
            21 => RingPop,
            22 => RingFull,
            23 => EngineBatch,
            _ => Unknown,
        }
    }

    /// Stable lowercase label (NDJSON `kind` field, flame rollups).
    pub fn label(self) -> &'static str {
        use EventKind::*;
        match self {
            SimpleAcquire => "simple_acquire",
            SimpleContended => "simple_contended",
            SimpleRelease => "simple_release",
            SimpleTryFail => "simple_try_fail",
            ComplexRead => "complex_read",
            ComplexWrite => "complex_write",
            ComplexUpgradeOk => "complex_upgrade_ok",
            ComplexUpgradeFail => "complex_upgrade_fail",
            ComplexDowngrade => "complex_downgrade",
            ComplexRelease => "complex_release",
            ComplexTryFail => "complex_try_fail",
            RefTake => "ref_take",
            RefRelease => "ref_release",
            RefDrain => "ref_drain",
            RefFinal => "ref_final",
            Deactivate => "deactivate",
            SplRaise => "spl_raise",
            SplRestore => "spl_restore",
            EventWait => "event_wait",
            EventWakeup => "event_wakeup",
            RingPush => "ring_push",
            RingPop => "ring_pop",
            RingFull => "ring_full",
            EngineBatch => "engine_batch",
            Unknown => "unknown",
        }
    }
}

/// [`TraceEvent::flags`] bit: the acquisition actually waited for
/// another holder (set alongside `SimpleAcquire` / `ComplexRead` /
/// `ComplexWrite`; elapsed time alone cannot distinguish a slow clock
/// read from a real wait, so the hook says so explicitly).
pub const FLAG_CONTENDED: u8 = 1;

/// One trace record: when, what, on which lock, by which thread, and a
/// kind-specific argument (wait/hold nanoseconds, counts, levels — see
/// each [`EventKind`] variant).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since process trace epoch ([`crate::now_ns`]).
    pub ts_ns: u64,
    /// What happened.
    pub kind: EventKind,
    /// Registry id of the lock/count involved; 0 = unregistered.
    pub lock_id: u32,
    /// Dense id of the emitting thread ([`crate::thread_tag`]).
    pub thread: u32,
    /// Kind-specific argument.
    pub arg: u64,
    /// Event flag bits ([`FLAG_CONTENDED`]; 0 for most events).
    pub flags: u8,
}

impl TraceEvent {
    /// Pack into four words for atomic slot storage. Word 1 layout:
    /// bits 0–31 lock id, bits 32–39 kind, bits 40–47 flags.
    #[inline]
    pub(crate) fn pack(&self) -> [u64; 4] {
        [
            self.ts_ns,
            (u64::from(self.flags) << 40)
                | (u64::from(self.kind as u8) << 32)
                | u64::from(self.lock_id),
            u64::from(self.thread),
            self.arg,
        ]
    }

    /// Inverse of [`TraceEvent::pack`].
    #[inline]
    pub(crate) fn unpack(w: [u64; 4]) -> TraceEvent {
        TraceEvent {
            ts_ns: w[0],
            kind: EventKind::from_u8((w[1] >> 32) as u8),
            lock_id: w[1] as u32,
            thread: w[2] as u32,
            arg: w[3],
            flags: (w[1] >> 40) as u8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrips() {
        let ev = TraceEvent {
            ts_ns: 123_456_789_012,
            kind: EventKind::ComplexUpgradeFail,
            lock_id: 0xDEAD_BEEF,
            thread: 42,
            arg: u64::MAX - 7,
            flags: 0,
        };
        assert_eq!(TraceEvent::unpack(ev.pack()), ev);
    }

    #[test]
    fn pack_roundtrips_flags() {
        let ev = TraceEvent {
            ts_ns: 1,
            kind: EventKind::SimpleAcquire,
            lock_id: u32::MAX,
            thread: 7,
            arg: 99,
            flags: FLAG_CONTENDED | 0x80,
        };
        let rt = TraceEvent::unpack(ev.pack());
        assert_eq!(rt, ev);
        assert_eq!(rt.flags & FLAG_CONTENDED, FLAG_CONTENDED);
        assert_eq!(rt.lock_id, u32::MAX, "flags must not bleed into the id");
    }

    #[test]
    fn every_kind_roundtrips_through_u8() {
        for v in 0..=23u8 {
            let k = EventKind::from_u8(v);
            assert_ne!(k, EventKind::Unknown, "kind {v} lost");
            assert_eq!(k as u8, v);
        }
        assert_eq!(EventKind::from_u8(200), EventKind::Unknown);
    }

    #[test]
    fn labels_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for v in 0..=23u8 {
            assert!(seen.insert(EventKind::from_u8(v).label()), "duplicate label for {v}");
        }
    }
}
