//! The typed trace event — the unit the rings record.
//!
//! Events are fixed-size and `Copy` so a ring slot can store one as
//! four atomic words (the crate-private `pack` / `unpack` pair);
//! the per-slot seqlock in [`crate::ring`] validates that the four
//! words belong to the same write, so readers never see a torn event.

/// What happened. One discriminant per traced operation across every
/// synchronization layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
#[allow(missing_docs)] // variant names are the documentation
pub enum EventKind {
    /// Simple lock acquired; `arg` = wait time in ns (0 if first-try).
    SimpleAcquire = 0,
    /// Simple lock acquisition was contended; `arg` = failed/waited
    /// spin rounds before success.
    SimpleContended = 1,
    /// Simple lock released; `arg` = hold time in ns.
    SimpleRelease = 2,
    /// `simple_lock_try` failed.
    SimpleTryFail = 3,
    /// Complex lock acquired for read; `arg` = wait ns.
    ComplexRead = 4,
    /// Complex lock acquired for write; `arg` = wait ns.
    ComplexWrite = 5,
    /// Read→write upgrade succeeded; `arg` = wait ns.
    ComplexUpgradeOk = 6,
    /// Read→write upgrade failed (read lock lost, §7.1 recovery case).
    ComplexUpgradeFail = 7,
    /// Write→read downgrade.
    ComplexDowngrade = 8,
    /// Complex lock released (`lock_done`); `arg` = hold ns for write
    /// holds, 0 where the raw interface cannot attribute the hold.
    ComplexRelease = 9,
    /// Complex try-acquisition failed.
    ComplexTryFail = 10,
    /// Reference taken; `arg` = approximate count after.
    RefTake = 11,
    /// Reference released; `arg` = approximate count after.
    RefRelease = 12,
    /// Sharded count drained to exact (slow path serialization).
    RefDrain = 13,
    /// Final release detected — the destroy-now signal of §8.
    RefFinal = 14,
    /// Object deactivated (§9 transition).
    Deactivate = 15,
    /// spl raised; `arg` = (new level << 8) | previous level.
    SplRaise = 16,
    /// spl restored; `arg` = restored-to level.
    SplRestore = 17,
    /// Thread declared + blocked on an event; `arg` = event word.
    EventWait = 18,
    /// Wakeup posted; `arg` = number of threads awakened.
    EventWakeup = 19,
    /// Unrecognized discriminant (forward compatibility of unpack).
    Unknown = 255,
}

impl EventKind {
    /// Decode a kind byte; unknown values map to [`EventKind::Unknown`].
    pub fn from_u8(v: u8) -> EventKind {
        use EventKind::*;
        match v {
            0 => SimpleAcquire,
            1 => SimpleContended,
            2 => SimpleRelease,
            3 => SimpleTryFail,
            4 => ComplexRead,
            5 => ComplexWrite,
            6 => ComplexUpgradeOk,
            7 => ComplexUpgradeFail,
            8 => ComplexDowngrade,
            9 => ComplexRelease,
            10 => ComplexTryFail,
            11 => RefTake,
            12 => RefRelease,
            13 => RefDrain,
            14 => RefFinal,
            15 => Deactivate,
            16 => SplRaise,
            17 => SplRestore,
            18 => EventWait,
            19 => EventWakeup,
            _ => Unknown,
        }
    }
}

/// One trace record: when, what, on which lock, by which thread, and a
/// kind-specific argument (wait/hold nanoseconds, counts, levels — see
/// each [`EventKind`] variant).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since process trace epoch ([`crate::now_ns`]).
    pub ts_ns: u64,
    /// What happened.
    pub kind: EventKind,
    /// Registry id of the lock/count involved; 0 = unregistered.
    pub lock_id: u32,
    /// Dense id of the emitting thread ([`crate::thread_tag`]).
    pub thread: u32,
    /// Kind-specific argument.
    pub arg: u64,
}

impl TraceEvent {
    /// Pack into four words for atomic slot storage.
    #[inline]
    pub(crate) fn pack(&self) -> [u64; 4] {
        [
            self.ts_ns,
            (u64::from(self.kind as u8) << 32) | u64::from(self.lock_id),
            u64::from(self.thread),
            self.arg,
        ]
    }

    /// Inverse of [`TraceEvent::pack`].
    #[inline]
    pub(crate) fn unpack(w: [u64; 4]) -> TraceEvent {
        TraceEvent {
            ts_ns: w[0],
            kind: EventKind::from_u8((w[1] >> 32) as u8),
            lock_id: w[1] as u32,
            thread: w[2] as u32,
            arg: w[3],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrips() {
        let ev = TraceEvent {
            ts_ns: 123_456_789_012,
            kind: EventKind::ComplexUpgradeFail,
            lock_id: 0xDEAD_BEEF,
            thread: 42,
            arg: u64::MAX - 7,
        };
        assert_eq!(TraceEvent::unpack(ev.pack()), ev);
    }

    #[test]
    fn every_kind_roundtrips_through_u8() {
        for v in 0..=19u8 {
            let k = EventKind::from_u8(v);
            assert_ne!(k, EventKind::Unknown, "kind {v} lost");
            assert_eq!(k as u8, v);
        }
        assert_eq!(EventKind::from_u8(200), EventKind::Unknown);
    }
}
