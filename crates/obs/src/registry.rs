//! The global lock registry: names, classes, and per-lock counters.
//!
//! A trace that says "lock 0x7f3a… was contended" is useless; the
//! registry is what lets the report say `vm_object.ref` instead. Locks
//! register lazily on their first traced operation through a
//! [`LockTag`] — a single atomic embedded in the lock — so `const`
//! constructors stay `const` and the untraced build carries nothing.
//!
//! Counters and histograms live in a static slab indexed by id, so the
//! traced hot path is entirely lock-free: resolve the id (one relaxed
//! load after the first operation), then a few relaxed increments.
//! Names and classes live in a mutex-protected side table consulted
//! only at registration and reporting time.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::hist::{HistSnapshot, Log2Hist};

/// Capacity of the counter slab. Ids past the slab all alias slot 0,
/// the overflow bucket, so registration never fails — a report just
/// shows an `<overflow>` row if a run creates this many distinct
/// *named* locks (per-object anonymous locks are not registered).
pub const MAX_LOCKS: usize = 512;

/// What kind of synchronization object an id names.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LockClass {
    /// A `machk-sync` simple (spin) lock.
    Simple,
    /// A `machk-lock` complex (reader/writer) lock.
    Complex,
    /// A `machk-intr` spl-checked lock.
    Spl,
    /// A reference count (`ShardedRefCount` or a locked count).
    RefCount,
    /// Anything else.
    Other,
}

impl LockClass {
    /// Short label for report columns.
    pub fn label(self) -> &'static str {
        match self {
            LockClass::Simple => "simple",
            LockClass::Complex => "complex",
            LockClass::Spl => "spl",
            LockClass::RefCount => "refcount",
            LockClass::Other => "other",
        }
    }
}

/// Per-lock counters and distributions, all updated with relaxed
/// atomics from the traced paths.
pub struct LockEntry {
    /// Successful blocking acquisitions (simple) or read+write
    /// acquisitions (complex).
    pub acquires: AtomicU32,
    /// Acquisitions that did not succeed on the first attempt.
    pub contended: AtomicU32,
    /// Failed try-acquisitions.
    pub try_failures: AtomicU32,
    /// Wait-to-acquire distribution (ns).
    pub wait: Log2Hist,
    /// Hold-time distribution (ns).
    pub hold: Log2Hist,
    /// Complex-lock breakdown.
    pub reads: AtomicU32,
    /// Write acquisitions (complex).
    pub writes: AtomicU32,
    /// Successful read→write upgrades.
    pub upgrades_ok: AtomicU32,
    /// Failed upgrades (read lock lost).
    pub upgrades_failed: AtomicU32,
    /// Write→read downgrades.
    pub downgrades: AtomicU32,
    /// Reference-count traffic.
    pub ref_takes: AtomicU32,
    /// Reference releases.
    pub ref_releases: AtomicU32,
    /// Drain-to-exact slow paths.
    pub ref_drains: AtomicU32,
}

impl LockEntry {
    const fn new() -> LockEntry {
        LockEntry {
            acquires: AtomicU32::new(0),
            contended: AtomicU32::new(0),
            try_failures: AtomicU32::new(0),
            wait: Log2Hist::new(),
            hold: Log2Hist::new(),
            reads: AtomicU32::new(0),
            writes: AtomicU32::new(0),
            upgrades_ok: AtomicU32::new(0),
            upgrades_failed: AtomicU32::new(0),
            downgrades: AtomicU32::new(0),
            ref_takes: AtomicU32::new(0),
            ref_releases: AtomicU32::new(0),
            ref_drains: AtomicU32::new(0),
        }
    }
}

static ENTRIES: [LockEntry; MAX_LOCKS] = [const { LockEntry::new() }; MAX_LOCKS];

/// Ids are handed out from 1; 0 means "unregistered / overflow".
static NEXT_ID: AtomicU32 = AtomicU32::new(1);

#[derive(Clone)]
struct LockMeta {
    id: u32,
    name: &'static str,
    class: LockClass,
    /// Acquisition-policy label for the per-policy report section
    /// (`"tas"`, `"mcs"`, …; empty when not applicable).
    policy: &'static str,
}

fn meta_table() -> &'static Mutex<Vec<LockMeta>> {
    static META: OnceLock<Mutex<Vec<LockMeta>>> = OnceLock::new();
    META.get_or_init(|| Mutex::new(Vec::new()))
}

/// Register a lock, returning its id. Prefer [`LockTag`] from lock
/// implementations; this is the raw entry point for one-off sites.
///
/// Registration dedupes on `(name, class, policy)`: every instance of a
/// per-object lock (each task's `"task.lock"`, each map's
/// `"vm_map.lock"`) shares one id and one set of counters. That is what
/// makes the report aggregate per lock *name* — and what keeps the
/// fixed [`MAX_LOCKS`] slab from being exhausted by object churn.
pub fn register(name: &'static str, class: LockClass, policy: &'static str) -> u32 {
    let mut meta = meta_table().lock().unwrap();
    if let Some(m) = meta
        .iter()
        .find(|m| m.name == name && m.class == class && m.policy == policy)
    {
        return m.id;
    }
    // relaxed: id uniqueness comes from fetch_add atomicity; the
    // meta-table mutex held here orders everything else.
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed); // relaxed: stats counter
    meta.push(LockMeta {
        id,
        name,
        class,
        policy,
    });
    id
}

/// The counter slab entry for `id` (slot 0 is the shared overflow /
/// unregistered bucket).
#[inline]
pub fn entry(id: u32) -> &'static LockEntry {
    let idx = id as usize;
    if idx < MAX_LOCKS {
        &ENTRIES[idx]
    } else {
        &ENTRIES[0]
    }
}

/// A lazily-registered lock identity, embeddable in `const` contexts.
///
/// The id is assigned on the first [`LockTag::ensure`] call; a
/// `REGISTERING` sentinel makes racing first calls converge on one id.
pub struct LockTag {
    id: AtomicU32,
}

const REGISTERING: u32 = u32::MAX;

impl LockTag {
    /// An unregistered tag.
    pub const fn new() -> LockTag {
        LockTag {
            id: AtomicU32::new(0),
        }
    }

    /// The registry id, registering `name` on first use.
    #[inline]
    pub fn ensure(&self, name: &'static str, class: LockClass, policy: &'static str) -> u32 {
        // relaxed: the id is a plain table index; lookups that
        // dereference it go through the meta-table mutex, which
        // supplies the ordering.
        let id = self.id.load(Ordering::Relaxed);
        if id != 0 && id != REGISTERING {
            return id;
        }
        self.ensure_slow(name, class, policy)
    }

    #[cold]
    fn ensure_slow(&self, name: &'static str, class: LockClass, policy: &'static str) -> u32 {
        match self
            .id
            // relaxed: only elects the registering thread; the meta
            // is published by `register`'s mutex + the Release store.
            .compare_exchange(0, REGISTERING, Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => {
                let id = register(name, class, policy);
                self.id.store(id, Ordering::Release);
                id
            }
            Err(_) => {
                // Another thread is registering (or has registered);
                // wait out the sentinel.
                loop {
                    let id = self.id.load(Ordering::Acquire);
                    if id != REGISTERING && id != 0 {
                        return id;
                    }
                    std::hint::spin_loop();
                }
            }
        }
    }

    /// The id, if already registered.
    pub fn get(&self) -> Option<u32> {
        // relaxed: plain index read, as in `ensure`.
        let id = self.id.load(Ordering::Relaxed);
        (id != 0 && id != REGISTERING).then_some(id)
    }
}

impl Default for LockTag {
    fn default() -> Self {
        Self::new()
    }
}

// ---- record helpers (the functions trace hooks call) ----

/// Record a blocking acquisition: wait time and whether it contended.
#[inline]
pub fn record_acquire(id: u32, wait_ns: u64, contended: bool) {
    let e = entry(id);
    // relaxed: monotone stats counters; snapshots are advisory.
    e.acquires.fetch_add(1, Ordering::Relaxed); // relaxed: stats counter
    if contended {
        // relaxed: same stats contract.
        e.contended.fetch_add(1, Ordering::Relaxed); // relaxed: stats counter
    }
    e.wait.record(wait_ns);
}

/// Record a release with the observed hold time.
#[inline]
pub fn record_hold(id: u32, hold_ns: u64) {
    entry(id).hold.record(hold_ns);
}

/// Record a failed try-acquisition.
#[inline]
pub fn record_try_failure(id: u32) {
    // relaxed: monotone stats counter.
    entry(id).try_failures.fetch_add(1, Ordering::Relaxed); // relaxed: stats counter
}

/// Complex-lock operations for [`record_complex`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ComplexOp {
    /// Read acquisition.
    Read,
    /// Write acquisition.
    Write,
    /// Upgrade that succeeded.
    UpgradeOk,
    /// Upgrade that failed (read lock released).
    UpgradeFailed,
    /// Write→read downgrade.
    Downgrade,
}

/// Record a complex-lock operation. `wait_ns` counts toward the wait
/// histogram for read/write/upgrade-ok; `contended` says whether the
/// acquisition actually waited for another holder (the trace hook
/// knows; elapsed time alone cannot distinguish a slow clock read
/// from a real wait).
#[inline]
pub fn record_complex(id: u32, op: ComplexOp, wait_ns: u64, contended: bool) {
    let e = entry(id);
    match op {
        ComplexOp::Read => {
            e.reads.fetch_add(1, Ordering::Relaxed); // relaxed: stats counter
            e.acquires.fetch_add(1, Ordering::Relaxed); // relaxed: stats counter
            if contended {
                e.contended.fetch_add(1, Ordering::Relaxed); // relaxed: stats counter
            }
            e.wait.record(wait_ns);
        }
        ComplexOp::Write => {
            e.writes.fetch_add(1, Ordering::Relaxed); // relaxed: stats counter
            e.acquires.fetch_add(1, Ordering::Relaxed); // relaxed: stats counter
            if contended {
                e.contended.fetch_add(1, Ordering::Relaxed); // relaxed: stats counter
            }
            e.wait.record(wait_ns);
        }
        ComplexOp::UpgradeOk => {
            e.upgrades_ok.fetch_add(1, Ordering::Relaxed); // relaxed: stats counter
            e.wait.record(wait_ns);
        }
        ComplexOp::UpgradeFailed => {
            e.upgrades_failed.fetch_add(1, Ordering::Relaxed); // relaxed: stats counter
        }
        ComplexOp::Downgrade => {
            e.downgrades.fetch_add(1, Ordering::Relaxed); // relaxed: stats counter
        }
    }
}

/// Reference-count operations for [`record_ref`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RefOp {
    /// Reference taken.
    Take,
    /// Reference released.
    Release,
    /// Drain-to-exact slow path ran.
    Drain,
}

/// Record reference-count traffic.
#[inline]
pub fn record_ref(id: u32, op: RefOp) {
    let e = entry(id);
    // relaxed: monotone stats counters.
    match op {
        RefOp::Take => e.ref_takes.fetch_add(1, Ordering::Relaxed),
        RefOp::Release => e.ref_releases.fetch_add(1, Ordering::Relaxed),
        RefOp::Drain => e.ref_drains.fetch_add(1, Ordering::Relaxed),
    };
}

/// Message-ring operations for [`record_ring`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RingOp {
    /// Push accepted.
    Push,
    /// Pop / batch drain (trace-ring only; no registry counter).
    Pop,
    /// Push refused at the logical limit (§3 backpressure).
    Full,
}

/// Record message-ring traffic against a registered ring name:
/// accepted pushes count as acquisitions, limit rejections as try
/// failures (the ring's analogue of a failed `simple_lock_try`), so
/// per-ring backpressure shows up in the ordinary contention columns.
#[inline]
pub fn record_ring(id: u32, op: RingOp) {
    let e = entry(id);
    // relaxed: monotone stats counters.
    match op {
        RingOp::Push => {
            e.acquires.fetch_add(1, Ordering::Relaxed); // relaxed: stats counter
        }
        RingOp::Pop => {}
        RingOp::Full => {
            e.try_failures.fetch_add(1, Ordering::Relaxed); // relaxed: stats counter
        }
    }
}

// ---- snapshotting for reports ----

/// Plain-data copy of one registered lock's identity and counters.
#[derive(Clone, Debug)]
pub struct LockReport {
    /// Registry id.
    pub id: u32,
    /// Static name given at registration.
    pub name: &'static str,
    /// Lock class.
    pub class: LockClass,
    /// Acquisition-policy label (may be empty).
    pub policy: &'static str,
    /// Total acquisitions.
    pub acquires: u64,
    /// Contended acquisitions.
    pub contended: u64,
    /// Failed try-acquisitions.
    pub try_failures: u64,
    /// Wait-time distribution.
    pub wait: HistSnapshot,
    /// Hold-time distribution.
    pub hold: HistSnapshot,
    /// Complex breakdown: reads.
    pub reads: u64,
    /// Complex breakdown: writes.
    pub writes: u64,
    /// Complex breakdown: successful upgrades.
    pub upgrades_ok: u64,
    /// Complex breakdown: failed upgrades.
    pub upgrades_failed: u64,
    /// Complex breakdown: downgrades.
    pub downgrades: u64,
    /// Refcount traffic: takes.
    pub ref_takes: u64,
    /// Refcount traffic: releases.
    pub ref_releases: u64,
    /// Refcount traffic: drains.
    pub ref_drains: u64,
}

impl LockReport {
    /// Contention rate: contended / acquires.
    pub fn contention_rate(&self) -> f64 {
        if self.acquires == 0 {
            0.0
        } else {
            self.contended as f64 / self.acquires as f64
        }
    }
}

/// Snapshot every registered lock's counters.
pub fn snapshot() -> Vec<LockReport> {
    let meta: Vec<LockMeta> = meta_table().lock().unwrap().clone();
    meta.iter()
        .map(|m| {
            let e = entry(m.id);
            LockReport {
                id: m.id,
                name: m.name,
                class: m.class,
                policy: m.policy,
                acquires: u64::from(e.acquires.load(Ordering::Relaxed)), // relaxed: advisory read
                contended: u64::from(e.contended.load(Ordering::Relaxed)), // relaxed: advisory read
                try_failures: u64::from(e.try_failures.load(Ordering::Relaxed)), // relaxed: advisory read
                wait: e.wait.snapshot(),
                hold: e.hold.snapshot(),
                reads: u64::from(e.reads.load(Ordering::Relaxed)), // relaxed: advisory read
                writes: u64::from(e.writes.load(Ordering::Relaxed)), // relaxed: advisory read
                upgrades_ok: u64::from(e.upgrades_ok.load(Ordering::Relaxed)), // relaxed: advisory read
                upgrades_failed: u64::from(e.upgrades_failed.load(Ordering::Relaxed)), // relaxed: advisory read
                downgrades: u64::from(e.downgrades.load(Ordering::Relaxed)), // relaxed: advisory read
                ref_takes: u64::from(e.ref_takes.load(Ordering::Relaxed)), // relaxed: advisory read
                ref_releases: u64::from(e.ref_releases.load(Ordering::Relaxed)), // relaxed: advisory read
                ref_drains: u64::from(e.ref_drains.load(Ordering::Relaxed)), // relaxed: advisory read
            }
        })
        .collect()
}

/// Resolve an id to its registered class ([`LockClass::Other`] for
/// unregistered ids) — flame rollups group by it.
pub fn class_of(id: u32) -> LockClass {
    meta_table()
        .lock()
        .unwrap()
        .iter()
        .find(|m| m.id == id)
        .map(|m| m.class)
        .unwrap_or(LockClass::Other)
}

/// Resolve an id to its registered name (reports, cycle rendering).
pub fn name_of(id: u32) -> &'static str {
    meta_table()
        .lock()
        .unwrap()
        .iter()
        .find(|m| m.id == id)
        .map(|m| m.name)
        .unwrap_or("<unregistered>")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_assigns_distinct_ids_and_names() {
        let a = register("test.registry.a", LockClass::Simple, "tas");
        let b = register("test.registry.b", LockClass::Complex, "");
        assert_ne!(a, b);
        assert_eq!(name_of(a), "test.registry.a");
        assert_eq!(name_of(b), "test.registry.b");
        assert_eq!(name_of(u32::MAX - 1), "<unregistered>");
    }

    #[test]
    fn tag_registers_once_across_threads() {
        static TAG: LockTag = LockTag::new();
        let ids: Vec<u32> = std::thread::scope(|s| {
            (0..8)
                .map(|_| s.spawn(|| TAG.ensure("test.registry.tag", LockClass::Simple, "mcs")))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert!(ids.windows(2).all(|w| w[0] == w[1]), "one id for all: {ids:?}");
        assert_eq!(TAG.get(), Some(ids[0]));
    }

    #[test]
    fn counters_accumulate_and_snapshot() {
        let id = register("test.registry.counted", LockClass::Simple, "ttas");
        record_acquire(id, 0, false);
        record_acquire(id, 1_000, true);
        record_hold(id, 500);
        record_try_failure(id);
        let rep = snapshot()
            .into_iter()
            .find(|r| r.id == id)
            .expect("registered lock in snapshot");
        assert_eq!(rep.acquires, 2);
        assert_eq!(rep.contended, 1);
        assert_eq!(rep.try_failures, 1);
        assert_eq!(rep.wait.count, 2);
        assert_eq!(rep.hold.count, 1);
        assert_eq!(rep.contention_rate(), 0.5);
    }

    #[test]
    fn complex_and_ref_breakdowns() {
        let id = register("test.registry.cx", LockClass::Complex, "");
        record_complex(id, ComplexOp::Read, 0, false);
        record_complex(id, ComplexOp::Write, 10, true);
        record_complex(id, ComplexOp::UpgradeOk, 5, false);
        record_complex(id, ComplexOp::UpgradeFailed, 0, false);
        record_complex(id, ComplexOp::Downgrade, 0, false);
        record_ref(id, RefOp::Take);
        record_ref(id, RefOp::Release);
        record_ref(id, RefOp::Drain);
        let rep = snapshot().into_iter().find(|r| r.id == id).unwrap();
        assert_eq!(
            (rep.reads, rep.writes, rep.upgrades_ok, rep.upgrades_failed, rep.downgrades),
            (1, 1, 1, 1, 1)
        );
        assert_eq!((rep.ref_takes, rep.ref_releases, rep.ref_drains), (1, 1, 1));
        assert_eq!(rep.contended, 1, "only the flagged write counts as contended");
    }

    #[test]
    fn overflow_ids_alias_slot_zero() {
        let before = entry(0).acquires.load(Ordering::Relaxed);
        record_acquire(u32::MAX - 2, 0, false);
        assert_eq!(entry(0).acquires.load(Ordering::Relaxed), before + 1);
    }
}
