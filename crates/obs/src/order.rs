//! Lock-order diagnostics: the acquisition-pair graph.
//!
//! Paper §5: "each kernel subsystem that uses locks must incorporate
//! usage conventions that prevent deadlock" — and §7's spl
//! inconsistency shows what happens when a convention is violated: a
//! hang, diagnosable only with a debugger. This module turns the
//! convention into a measurable artifact. Every traced acquisition of
//! lock B while the thread already holds lock A (fed from
//! `machk-sync`'s held-lock tracking) records a directed edge A→B; a
//! cycle in the accumulated graph is a potential-deadlock report —
//! visible after a clean run, no hang required.
//!
//! Edges are recorded at registered-lock granularity (ids, not
//! instances): `task.lock → thread.lock` is a convention; individual
//! object addresses are not.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::sync::{Mutex, OnceLock};

use crate::registry;

thread_local! {
    /// Registered ids of the locks the current thread holds, in
    /// acquisition order.
    static HELD: RefCell<Vec<u32>> = const { RefCell::new(Vec::new()) };
}

fn edge_table() -> &'static Mutex<HashMap<(u32, u32), u64>> {
    static EDGES: OnceLock<Mutex<HashMap<(u32, u32), u64>>> = OnceLock::new();
    EDGES.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Record that the calling thread acquired the lock with registry id
/// `id`. If it already holds other locks, an order edge is recorded
/// from the most recently acquired one.
pub fn lock_acquired(id: u32) {
    if id == 0 {
        return;
    }
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        if let Some(&top) = held.last() {
            if top != id {
                *edge_table().lock().unwrap().entry((top, id)).or_insert(0) += 1;
            }
        }
        held.push(id);
    });
}

/// Record that the calling thread released the lock with registry id
/// `id` (guards may drop out of acquisition order; the most recent
/// matching hold is removed).
pub fn lock_released(id: u32) {
    if id == 0 {
        return;
    }
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        if let Some(pos) = held.iter().rposition(|&h| h == id) {
            held.remove(pos);
        }
    });
}

/// Ids of locks the calling thread currently holds (diagnostics).
pub fn held_by_current_thread() -> Vec<u32> {
    HELD.with(|held| held.borrow().clone())
}

/// Every recorded edge `(from, to, count)`, sorted by count descending.
pub fn edges() -> Vec<(u32, u32, u64)> {
    let mut v: Vec<(u32, u32, u64)> = edge_table()
        .lock()
        .unwrap()
        .iter()
        .map(|(&(a, b), &n)| (a, b, n))
        .collect();
    v.sort_by(|x, y| y.2.cmp(&x.2).then(x.0.cmp(&y.0)).then(x.1.cmp(&y.1)));
    v
}

/// Forget all recorded edges (experiment isolation).
pub fn reset_edges() {
    edge_table().lock().unwrap().clear();
}

/// Distinct elementary cycles in the order graph, each as the id
/// sequence `[a, b, …]` meaning `a → b → … → a`. Cycles are
/// canonicalized (rotated to start at their smallest id) and deduped;
/// the search is bounded, which is ample for convention-level graphs
/// (a kernel has dozens of lock *classes*, not thousands).
pub fn cycles() -> Vec<Vec<u32>> {
    let adj: HashMap<u32, Vec<u32>> = {
        let table = edge_table().lock().unwrap();
        let mut adj: HashMap<u32, Vec<u32>> = HashMap::new();
        for &(a, b) in table.keys() {
            adj.entry(a).or_default().push(b);
        }
        for next in adj.values_mut() {
            next.sort_unstable();
        }
        adj
    };

    let mut found: HashSet<Vec<u32>> = HashSet::new();
    let mut nodes: Vec<u32> = adj.keys().copied().collect();
    nodes.sort_unstable();
    for &start in &nodes {
        // DFS from `start`, reporting paths that return to `start`.
        // Bounded depth keeps this linear in practice.
        let mut stack: Vec<(u32, usize)> = vec![(start, 0)];
        let mut path: Vec<u32> = Vec::new();
        while let Some((node, next_child)) = stack.pop() {
            if next_child == 0 {
                path.push(node);
            }
            let children = adj.get(&node).map(Vec::as_slice).unwrap_or(&[]);
            if next_child < children.len() {
                let child = children[next_child];
                stack.push((node, next_child + 1));
                if child == start {
                    found.insert(canonical(&path));
                } else if !path.contains(&child) && path.len() < 16 {
                    stack.push((child, 0));
                }
            } else {
                path.pop();
            }
        }
    }
    let mut out: Vec<Vec<u32>> = found.into_iter().collect();
    out.sort();
    out
}

/// Rotate a cycle so its smallest id comes first (dedup key).
fn canonical(cycle: &[u32]) -> Vec<u32> {
    let min_pos = cycle
        .iter()
        .enumerate()
        .min_by_key(|(_, &v)| v)
        .map(|(i, _)| i)
        .unwrap_or(0);
    let mut v = Vec::with_capacity(cycle.len());
    v.extend_from_slice(&cycle[min_pos..]);
    v.extend_from_slice(&cycle[..min_pos]);
    v
}

/// Render a cycle as `name → name → name (closes)`.
pub fn render_cycle(cycle: &[u32]) -> String {
    let mut parts: Vec<String> = cycle
        .iter()
        .map(|&id| registry::name_of(id).to_string())
        .collect();
    if let Some(first) = parts.first().cloned() {
        parts.push(first);
    }
    parts.join(" -> ")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Edges here use ids far above anything the registry hands out in
    /// other tests, so parallel test binaries' edges don't collide.
    const A: u32 = 9_000_001;
    const B: u32 = 9_000_002;
    const C: u32 = 9_000_003;

    /// The edge table is process-global and the test harness is
    /// multi-threaded: serialize the tests that reset it.
    fn with_clean_graph<R>(f: impl FnOnce() -> R) -> R {
        static SERIAL: Mutex<()> = Mutex::new(());
        let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        reset_edges();
        let r = f();
        reset_edges();
        r
    }

    #[test]
    fn acquisition_pairs_become_edges() {
        with_clean_graph(|| {
            lock_acquired(A);
            lock_acquired(B); // A -> B
            lock_released(B);
            lock_released(A);
            let e = edges();
            assert!(e.contains(&(A, B, 1)), "edges: {e:?}");
            assert!(held_by_current_thread().is_empty());
        });
    }

    #[test]
    fn out_of_order_release_keeps_stack_sane() {
        with_clean_graph(|| {
            lock_acquired(A);
            lock_acquired(B);
            lock_released(A); // released under B
            lock_acquired(C); // edge B -> C, not A -> C
            let e = edges();
            assert!(e.contains(&(B, C, 1)), "edges: {e:?}");
            assert!(!e.iter().any(|&(f, t, _)| f == A && t == C));
            lock_released(C);
            lock_released(B);
        });
    }

    #[test]
    fn opposite_orders_form_a_cycle() {
        with_clean_graph(|| {
            lock_acquired(A);
            lock_acquired(B);
            lock_released(B);
            lock_released(A);
            lock_acquired(B);
            lock_acquired(A);
            lock_released(A);
            lock_released(B);
            let cy = cycles();
            assert_eq!(cy, vec![vec![A, B]], "cycle A->B->A: {cy:?}");
            assert!(render_cycle(&cy[0]).matches("->").count() == 2);
        });
    }

    #[test]
    fn consistent_order_has_no_cycle() {
        with_clean_graph(|| {
            for _ in 0..3 {
                lock_acquired(A);
                lock_acquired(B);
                lock_acquired(C);
                lock_released(C);
                lock_released(B);
                lock_released(A);
            }
            assert!(cycles().is_empty());
            let e = edges();
            assert!(e.contains(&(A, B, 3)));
            assert!(e.contains(&(B, C, 3)));
        });
    }

    #[test]
    fn three_party_cycle_detected() {
        with_clean_graph(|| {
            for (x, y) in [(A, B), (B, C), (C, A)] {
                lock_acquired(x);
                lock_acquired(y);
                lock_released(y);
                lock_released(x);
            }
            let cy = cycles();
            assert!(cy.contains(&vec![A, B, C]), "cycles: {cy:?}");
        });
    }

    #[test]
    fn unregistered_id_zero_is_ignored() {
        with_clean_graph(|| {
            lock_acquired(0);
            lock_acquired(A);
            lock_acquired(0);
            lock_acquired(B);
            let e = edges();
            assert!(e.contains(&(A, B, 1)), "0 never forms edges: {e:?}");
            lock_released(B);
            lock_released(A);
            lock_released(0);
        });
    }
}
