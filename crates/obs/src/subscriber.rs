//! The dispatcher core: a tiny static fan-out from the trace hooks to
//! N registered [`LockSubscriber`]s.
//!
//! The shape is `tracing-core`'s: the hooks compiled into the product
//! crates know nothing about *consumers* — they call one function,
//! [`crate::emit`], which stamps the event and hands it to
//! [`dispatch`]. Consumers implement [`LockSubscriber`] and register
//! with [`install`]. The registry/histogram/lockstat machinery that
//! used to *be* machk-obs is now just the first subscriber
//! ([`StatsSubscriber`], auto-installed on first emit so existing
//! callers see identical behavior); the NDJSON exporter
//! ([`crate::ndjson`]) and the flamegraph aggregator ([`crate::flame`])
//! stack on top without the hooks changing.
//!
//! ## Why static dispatch, and what it costs
//!
//! Subscribers live in a fixed array of `&'static dyn LockSubscriber`
//! slots published by a monotonically increasing count. The hot path is
//! one `Acquire` load of the count plus one indirect call per
//! subscriber — no mutex, no `Arc` refcount traffic, no allocation.
//! Registration is **install-forever** (again as in `tracing-core`):
//! slots are never freed or reused, so readers need no epoch/RCU
//! machinery to keep a subscriber alive across a call. A subscriber
//! that wants to stop consuming simply ignores events.
//!
//! ## Ordering guarantees
//!
//! Subscribers run *synchronously on the emitting thread*, in
//! installation order. Two consequences the built-in subscribers rely
//! on: (1) every subscriber observes the same per-thread event
//! sequence, in program order — so the [`StatsSubscriber`]'s held-lock
//! stack (thread-local) stays correct; (2) events from different
//! threads interleave arbitrarily, ordered only by their `ts_ns`
//! stamps. Re-entrant emission (a subscriber's own code tripping a
//! trace hook) is cut off by a per-thread latch: the inner event is
//! counted and dropped, never fanned out.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::event::TraceEvent;
use crate::registry::{self, ComplexOp, RefOp, RingOp};
use crate::{order, ring, EventKind};

/// A consumer of trace events. Implementations must be cheap and
/// re-entrancy-safe: `on_event` runs on the emitting thread, often
/// while the traced lock is still held.
pub trait LockSubscriber: Send + Sync {
    /// Short identifying name (shown in lockstat reports).
    fn name(&self) -> &'static str;
    /// Observe one event. Called synchronously from the emit path.
    fn on_event(&self, ev: &TraceEvent);
}

/// Dispatcher slot capacity. Install-forever slots; exceeding this is
/// a programming error surfaced by [`install`]'s `Err`.
pub const MAX_SUBSCRIBERS: usize = 8;

static SLOTS: [OnceLock<&'static dyn LockSubscriber>; MAX_SUBSCRIBERS] =
    [const { OnceLock::new() }; MAX_SUBSCRIBERS];

/// Number of published slots. Written under `INSTALL_LOCK` with
/// `Release`; the dispatch fast path reads it with `Acquire` so every
/// slot below the count is visible.
static COUNT: AtomicUsize = AtomicUsize::new(0);

/// Dispatches that took the static "no subscribers" branch.
static EMPTY_DISPATCHES: AtomicU64 = AtomicU64::new(0);

/// Events dropped by the per-thread re-entrancy latch.
static REENTRANT_DROPS: AtomicU64 = AtomicU64::new(0);

fn install_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Register a subscriber for the rest of the process lifetime (the
/// box is leaked — installation is forever, which is what lets the
/// dispatch path skip all liveness bookkeeping). Returns the slot
/// index, or the box back if all [`MAX_SUBSCRIBERS`] slots are taken.
pub fn install(sub: Box<dyn LockSubscriber>) -> Result<usize, Box<dyn LockSubscriber>> {
    let _g = install_lock().lock().unwrap();
    // relaxed: the install mutex serializes writers; Release below
    // publishes the slot to lock-free readers.
    let idx = COUNT.load(Ordering::Relaxed);
    if idx >= MAX_SUBSCRIBERS {
        return Err(sub);
    }
    let leaked: &'static dyn LockSubscriber = Box::leak(sub);
    SLOTS[idx].set(leaked).ok().expect("slot below COUNT never set twice");
    COUNT.store(idx + 1, Ordering::Release);
    Ok(idx)
}

/// All [`MAX_SUBSCRIBERS`] dispatcher slots are taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotsFull;

/// [`install`] for a `'static` subscriber (no box, no leak).
pub fn install_static(sub: &'static dyn LockSubscriber) -> Result<usize, SlotsFull> {
    let _g = install_lock().lock().unwrap();
    // relaxed: serialized by the install mutex, as in `install`.
    let idx = COUNT.load(Ordering::Relaxed);
    if idx >= MAX_SUBSCRIBERS {
        return Err(SlotsFull);
    }
    SLOTS[idx].set(sub).ok().expect("slot below COUNT never set twice");
    COUNT.store(idx + 1, Ordering::Release);
    Ok(idx)
}

/// Number of installed subscribers.
pub fn subscriber_count() -> usize {
    COUNT.load(Ordering::Acquire)
}

/// Names of the installed subscribers, in installation (= dispatch)
/// order.
pub fn subscriber_names() -> Vec<&'static str> {
    let n = COUNT.load(Ordering::Acquire);
    (0..n).filter_map(|i| SLOTS[i].get().map(|s| s.name())).collect()
}

/// How many dispatches found zero subscribers installed (the static
/// "empty" branch — observable so tests can prove the fast path).
pub fn empty_dispatches() -> u64 {
    // relaxed: advisory diagnostic read.
    EMPTY_DISPATCHES.load(Ordering::Relaxed)
}

/// How many events the re-entrancy latch cut off.
pub fn reentrant_drops() -> u64 {
    // relaxed: advisory diagnostic read.
    REENTRANT_DROPS.load(Ordering::Relaxed)
}

thread_local! {
    /// Set while this thread is inside subscriber fan-out, so a
    /// subscriber's own locking can never recurse into dispatch.
    static IN_DISPATCH: Cell<bool> = const { Cell::new(false) };
}

/// Fan one event out to every installed subscriber, in installation
/// order, on the calling thread. Does **not** auto-install anything —
/// that policy lives in [`crate::emit`]; tests and benches call this
/// directly to measure the bare dispatcher.
#[inline]
pub fn dispatch(ev: &TraceEvent) {
    let n = COUNT.load(Ordering::Acquire);
    if n == 0 {
        // relaxed: monotone diagnostic counter.
        EMPTY_DISPATCHES.fetch_add(1, Ordering::Relaxed); // relaxed: stats counter
        return;
    }
    let entered = IN_DISPATCH
        .try_with(|f| {
            if f.get() {
                false
            } else {
                f.set(true);
                true
            }
        })
        .unwrap_or(false);
    if !entered {
        // relaxed: monotone diagnostic counter.
        REENTRANT_DROPS.fetch_add(1, Ordering::Relaxed); // relaxed: stats counter
        return;
    }
    for slot in SLOTS.iter().take(n) {
        if let Some(s) = slot.get() {
            s.on_event(ev);
        }
    }
    let _ = IN_DISPATCH.try_with(|f| f.set(false));
}

// ---- default-subscriber policy ----

/// Whether the first [`crate::emit`] auto-installs the
/// [`StatsSubscriber`]. On by default so a traced build behaves like
/// the pre-subscriber machk-obs; benches/tests that want to measure or
/// assert the empty dispatcher turn it off *before* the first emit.
static AUTO_INSTALL: AtomicBool = AtomicBool::new(true);

/// Enable/disable [`StatsSubscriber`] auto-install (must be called
/// before any traced operation to have an effect — installation is
/// forever).
pub fn set_auto_install(on: bool) {
    // relaxed: advisory policy flag, checked on the emit path.
    AUTO_INSTALL.store(on, Ordering::Relaxed);
}

static STATS: StatsSubscriber = StatsSubscriber;
static STATS_INSTALLED: AtomicBool = AtomicBool::new(false);

/// Install the default [`StatsSubscriber`] (idempotent). Returns true
/// if this call performed the installation.
pub fn install_default() -> bool {
    let _g = install_lock().lock().unwrap();
    // relaxed: the install mutex serializes this flag's read/write.
    if STATS_INSTALLED.load(Ordering::Relaxed) {
        return false;
    }
    // Bypass install_static: we already hold the install lock.
    let idx = COUNT.load(Ordering::Relaxed); // relaxed: serialized by the install mutex
    if idx >= MAX_SUBSCRIBERS {
        return false;
    }
    SLOTS[idx].set(&STATS).ok().expect("slot below COUNT never set twice");
    COUNT.store(idx + 1, Ordering::Release);
    STATS_INSTALLED.store(true, Ordering::Relaxed); // relaxed: serialized by the install mutex
    true
}

/// The emit-path policy check: install the default subscriber on the
/// first traced operation unless [`set_auto_install`]`(false)` ran
/// first.
#[inline]
pub(crate) fn ensure_default() {
    // relaxed: both flags are advisory; install_default re-checks
    // under the install mutex.
    if !STATS_INSTALLED.load(Ordering::Relaxed) && AUTO_INSTALL.load(Ordering::Relaxed) {
        install_default();
    }
}

// ---- the first subscriber: registry + histograms + order graph ----

/// The classic machk-obs pipeline as a subscriber: per-thread trace
/// rings, the named-lock registry counters/histograms, and the
/// acquisition-order graph. Auto-installed on first emit, so the
/// lockstat report works exactly as before the subscriber refactor.
pub struct StatsSubscriber;

impl LockSubscriber for StatsSubscriber {
    fn name(&self) -> &'static str {
        "stats"
    }

    fn on_event(&self, ev: &TraceEvent) {
        use EventKind::*;
        let id = ev.lock_id;
        let contended = ev.flags & crate::event::FLAG_CONTENDED != 0;
        match ev.kind {
            SimpleAcquire => {
                registry::record_acquire(id, ev.arg, contended);
                order::lock_acquired(id);
            }
            SimpleRelease => {
                registry::record_hold(id, ev.arg);
                order::lock_released(id);
            }
            SimpleTryFail | ComplexTryFail => registry::record_try_failure(id),
            ComplexRead => {
                registry::record_complex(id, ComplexOp::Read, ev.arg, contended);
                order::lock_acquired(id);
            }
            ComplexWrite => {
                registry::record_complex(id, ComplexOp::Write, ev.arg, contended);
                order::lock_acquired(id);
            }
            // An upgrade transitions a lock this thread already holds:
            // no order-stack push (the ComplexRead did that).
            ComplexUpgradeOk => {
                registry::record_complex(id, ComplexOp::UpgradeOk, ev.arg, contended)
            }
            ComplexUpgradeFail => {
                registry::record_complex(id, ComplexOp::UpgradeFailed, 0, false);
                // §7.1: a failed upgrade *loses* the read lock.
                order::lock_released(id);
            }
            ComplexDowngrade => registry::record_complex(id, ComplexOp::Downgrade, 0, false),
            ComplexRelease => {
                registry::record_hold(id, ev.arg);
                order::lock_released(id);
            }
            RefTake => registry::record_ref(id, RefOp::Take),
            // A final release is still a release; RefFinal marks the
            // destroy-now transition on top of it.
            RefRelease | RefFinal => registry::record_ref(id, RefOp::Release),
            RefDrain => registry::record_ref(id, RefOp::Drain),
            RingPush => registry::record_ring(id, RingOp::Push),
            RingPop => registry::record_ring(id, RingOp::Pop),
            RingFull => registry::record_ring(id, RingOp::Full),
            // Pure trace markers: ring-only.
            SimpleContended | Deactivate | SplRaise | SplRestore | EventWait | EventWakeup
            | EngineBatch | Unknown => {}
        }
        ring::push(*ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // NOTE: the dispatcher is process-global and install-forever, so
    // unit tests here only exercise pieces that tolerate other tests'
    // subscribers; the from-scratch fan-out / empty-branch proofs live
    // in the `tests/` integration binaries (one process each).

    #[test]
    fn stats_subscriber_translates_counters() {
        let id = registry::register(
            "test.subscriber.stats",
            registry::LockClass::Simple,
            "tas",
        );
        let ev = |kind, arg, flags| TraceEvent {
            ts_ns: 0,
            kind,
            lock_id: id,
            thread: 1,
            arg,
            flags,
        };
        STATS.on_event(&ev(EventKind::SimpleAcquire, 120, crate::event::FLAG_CONTENDED));
        STATS.on_event(&ev(EventKind::SimpleRelease, 80, 0));
        STATS.on_event(&ev(EventKind::SimpleAcquire, 0, 0));
        STATS.on_event(&ev(EventKind::SimpleRelease, 10, 0));
        STATS.on_event(&ev(EventKind::SimpleTryFail, 0, 0));
        let rep = registry::snapshot().into_iter().find(|l| l.id == id).unwrap();
        assert_eq!(rep.acquires, 2);
        assert_eq!(rep.contended, 1);
        assert_eq!(rep.try_failures, 1);
        assert_eq!(rep.wait.count, 2);
        assert_eq!(rep.hold.count, 2);
    }

    #[test]
    fn ring_events_attribute_to_registry() {
        let id = registry::register(
            "test.subscriber.ring",
            registry::LockClass::Other,
            "",
        );
        let ev = |kind| TraceEvent {
            ts_ns: 0,
            kind,
            lock_id: id,
            thread: 1,
            arg: 1,
            flags: 0,
        };
        STATS.on_event(&ev(EventKind::RingPush));
        STATS.on_event(&ev(EventKind::RingPush));
        STATS.on_event(&ev(EventKind::RingFull));
        STATS.on_event(&ev(EventKind::RingPop));
        let rep = registry::snapshot().into_iter().find(|l| l.id == id).unwrap();
        assert_eq!(rep.acquires, 2, "pushes count as acquires");
        assert_eq!(rep.try_failures, 1, "full rejections count as try failures");
    }
}
