//! Flamegraph-style aggregation: a [`LockSubscriber`] that rolls
//! events up into lock-class × call-site wait/hold totals.
//!
//! Lock *names* in this repository identify call sites — every named
//! constructor (`vm_object.ref`, `ipc.ns.shard03`, `task.lock`) is one
//! static declaration — so the (class, name) pair is the per-site key,
//! exactly what a collapsed-stack tool wants as a frame path. The
//! rollup keeps, per site: total wait time, total hold time, and a
//! count of untimed operations (try failures, ring traffic, spl
//! transitions). Render with [`FlameSubscriber::render_folded`]
//! (Brendan Gregg's `folded` text, one `frames value` line per site,
//! feedable straight into `flamegraph.pl`/`inferno`) or
//! [`FlameSubscriber::render_json`].

use std::collections::HashMap;
use std::sync::Mutex;

use crate::event::TraceEvent;
use crate::registry;
use crate::subscriber::LockSubscriber;
use crate::EventKind;

/// Which per-site measure a folded rendering reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlameMetric {
    /// Total nanoseconds spent waiting to acquire.
    Wait,
    /// Total nanoseconds the site's lock was held.
    Hold,
    /// Count of untimed operations (try failures, ring ops, spl, …).
    Ops,
}

#[derive(Clone, Copy, Default)]
struct SiteCell {
    wait_ns: u64,
    wait_count: u64,
    hold_ns: u64,
    hold_count: u64,
    ops: u64,
}

/// Per-site wait/hold aggregator. All state behind one mutex — this is
/// an opt-in analysis subscriber; the multi-subscriber bench measures
/// what that costs on the hot path.
pub struct FlameSubscriber {
    sites: Mutex<HashMap<u32, SiteCell>>,
}

impl FlameSubscriber {
    /// An empty aggregator.
    pub fn new() -> FlameSubscriber {
        FlameSubscriber {
            sites: Mutex::new(HashMap::new()),
        }
    }

    /// Number of distinct sites observed.
    pub fn site_count(&self) -> usize {
        self.sites.lock().unwrap().len()
    }

    /// Collapsed-stack text for one metric: a
    /// `machk;<class>;<site> <value>` line per site with a non-zero
    /// value, sorted descending. Wait/hold values are nanoseconds; ops
    /// values are counts.
    pub fn render_folded(&self, metric: FlameMetric) -> String {
        let mut rows: Vec<(String, u64)> = self
            .snapshot()
            .into_iter()
            .map(|(class, site, c)| {
                let v = match metric {
                    FlameMetric::Wait => c.wait_ns,
                    FlameMetric::Hold => c.hold_ns,
                    FlameMetric::Ops => c.ops,
                };
                (format!("machk;{};{}", class, site), v)
            })
            .filter(|(_, v)| *v > 0)
            .collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut out = String::new();
        for (frames, v) in rows {
            out.push_str(&format!("{frames} {v}\n"));
        }
        out
    }

    /// JSON rendering of the full rollup (hand-rolled; the workspace
    /// has no serde). Schema: `{"schema": "machk-flame/v1", "sites":
    /// [{class, site, wait_ns, wait_count, hold_ns, hold_count,
    /// ops}]}` sorted by wait_ns descending.
    pub fn render_json(&self) -> String {
        let mut sites = self.snapshot();
        sites.sort_by(|a, b| b.2.wait_ns.cmp(&a.2.wait_ns).then(a.1.cmp(&b.1)));
        let mut out = String::from("{\"schema\": \"machk-flame/v1\", \"sites\": [\n");
        for (i, (class, site, c)) in sites.iter().enumerate() {
            out.push_str(&format!(
                "  {{\"class\": \"{}\", \"site\": {}, \"wait_ns\": {}, \"wait_count\": {}, \
                 \"hold_ns\": {}, \"hold_count\": {}, \"ops\": {}}}{}\n",
                class,
                json_str(site),
                c.wait_ns,
                c.wait_count,
                c.hold_ns,
                c.hold_count,
                c.ops,
                if i + 1 == sites.len() { "" } else { "," },
            ));
        }
        out.push_str("]}\n");
        out
    }

    fn snapshot(&self) -> Vec<(&'static str, String, SiteCell)> {
        self.sites
            .lock()
            .unwrap()
            .iter()
            .map(|(&id, &c)| {
                let (class, site) = if id == 0 {
                    ("other", "<anonymous>".to_string())
                } else {
                    (registry::class_of(id).label(), registry::name_of(id).to_string())
                };
                (class, site, c)
            })
            .collect()
    }
}

impl Default for FlameSubscriber {
    fn default() -> Self {
        Self::new()
    }
}

impl LockSubscriber for FlameSubscriber {
    fn name(&self) -> &'static str {
        "flame"
    }

    fn on_event(&self, ev: &TraceEvent) {
        use EventKind::*;
        let mut sites = self.sites.lock().unwrap();
        let cell = sites.entry(ev.lock_id).or_default();
        match ev.kind {
            SimpleAcquire | ComplexRead | ComplexWrite | ComplexUpgradeOk => {
                cell.wait_ns += ev.arg;
                cell.wait_count += 1;
            }
            SimpleRelease | ComplexRelease => {
                cell.hold_ns += ev.arg;
                cell.hold_count += 1;
            }
            _ => cell.ops += 1,
        }
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, id: u32, arg: u64) -> TraceEvent {
        TraceEvent {
            ts_ns: 0,
            kind,
            lock_id: id,
            thread: 1,
            arg,
            flags: 0,
        }
    }

    #[test]
    fn rollup_sums_wait_hold_and_ops() {
        let id = registry::register("test.flame.site", registry::LockClass::Simple, "tas");
        let f = FlameSubscriber::new();
        f.on_event(&ev(EventKind::SimpleAcquire, id, 100));
        f.on_event(&ev(EventKind::SimpleAcquire, id, 50));
        f.on_event(&ev(EventKind::SimpleRelease, id, 70));
        f.on_event(&ev(EventKind::SimpleTryFail, id, 0));
        let folded = f.render_folded(FlameMetric::Wait);
        assert!(folded.contains("machk;simple;test.flame.site 150"), "{folded}");
        let hold = f.render_folded(FlameMetric::Hold);
        assert!(hold.contains("machk;simple;test.flame.site 70"), "{hold}");
        let ops = f.render_folded(FlameMetric::Ops);
        assert!(ops.contains("machk;simple;test.flame.site 1"), "{ops}");
        let json = f.render_json();
        assert!(json.contains("\"machk-flame/v1\""), "{json}");
        assert!(json.contains("\"wait_ns\": 150"), "{json}");
    }

    #[test]
    fn folded_sorts_descending_and_skips_zero() {
        let hot = registry::register("test.flame.hot", registry::LockClass::Simple, "");
        let cold = registry::register("test.flame.cold", registry::LockClass::Simple, "");
        let f = FlameSubscriber::new();
        f.on_event(&ev(EventKind::SimpleAcquire, hot, 900));
        f.on_event(&ev(EventKind::SimpleAcquire, cold, 10));
        f.on_event(&ev(EventKind::SimpleRelease, cold, 0)); // zero hold
        let folded = f.render_folded(FlameMetric::Wait);
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("test.flame.hot"));
        let hold = f.render_folded(FlameMetric::Hold);
        assert!(!hold.contains("test.flame.cold"), "zero-valued rows are skipped: {hold}");
    }
}
