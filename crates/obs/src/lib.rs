//! # machk-obs — the kernel-wide lockstat substrate
//!
//! The paper's argument is about *where contention and hold time live*:
//! code vs. data locking (§3), writer starvation (§5), interrupt/spl
//! deadlocks (§7). Ad-hoc per-lock counters cannot answer those
//! questions for a whole kernel; Solaris `lockstat` could, by combining
//! cheap always-on counters with a name registry and post-hoc
//! aggregation. This crate is that tool for the reproduction,
//! structured like `tracing-core`: the hooks feed one tiny static
//! dispatcher ([`subscriber`]), and everything downstream is a
//! pluggable [`LockSubscriber`]:
//!
//! * **[`subscriber`]** — the dispatcher: [`emit`] stamps an event and
//!   fans it to every installed subscriber, synchronously, in
//!   installation order. [`StatsSubscriber`] (the classic
//!   registry+histogram+lockstat pipeline below) is installed
//!   automatically on first use; [`NdjsonSubscriber`] (streaming
//!   newline-delimited JSON export, bounded and drop-counting) and
//!   [`FlameSubscriber`] (lock-class × site wait/hold rollups rendered
//!   as collapsed stacks) stack on top.
//!
//! * **[`ring`]** — a lock-free, per-thread, fixed-capacity,
//!   overwrite-oldest trace ring of typed [`TraceEvent`]s (lock
//!   acquire/contend/release with nanosecond wait and hold times,
//!   refcount traffic, spl transitions, event waits). Each slot is a
//!   per-slot seqlock over atomic words, so a snapshot taken from any
//!   thread never observes a torn event.
//! * **[`registry`]** — a global table mapping small integer ids to
//!   static lock names (`vm_object.ref`, not an address), with per-lock
//!   counters and log2 wait/hold-time **histograms** ([`hist`]) updated
//!   lock-free on the traced paths. Blocking-time *distributions*, not
//!   means, are what distinguish locking protocols (Brandenburg's
//!   survey); the histograms record them.
//! * **[`order`]** — an acquisition-order graph fed by the `machk-sync`
//!   held-lock tracking: an edge A→B each time B is acquired while A is
//!   held, plus cycle detection, turning potential deadlocks into a
//!   report instead of a hang.
//! * **[`report`]** — the aggregation pass: a `lockstat`-style text or
//!   JSON report (top-N locks by contention, histograms, reader/writer
//!   breakdown, per-policy comparison, order cycles).
//! * **[`snapshot`]** — one trait ([`StatsRows`]) that the per-crate
//!   statistics snapshots (`machk-sync`'s and `machk-lock`'s) implement
//!   so reports render both shapes uniformly.
//!
//! ## Feature gating and cost
//!
//! This crate is **always safe to build** but is only *linked* when a
//! consumer crate's `obs` feature is on: `machk-sync`, `machk-lock`,
//! `machk-refcount`, `machk-intr` and `machk-event` name `machk-obs` as
//! an *optional* dependency behind their `obs` features, and their
//! trace macros expand to nothing without it. The default build
//! therefore contains no trace code at all — `cargo tree -p machk-sync`
//! does not even list this crate (CI asserts exactly that).
//!
//! With `obs` on, the traced fast path pays two monotonic clock reads
//! and a handful of relaxed atomic increments per acquisition — the
//! `queued_lock` Criterion bench carries an obs-on/obs-off pair and
//! EXPERIMENTS.md records the measured delta.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod event;
pub mod flame;
pub mod hist;
pub mod ndjson;
pub mod order;
pub mod registry;
pub mod report;
pub mod ring;
pub mod snapshot;
pub mod subscriber;

pub use event::{EventKind, TraceEvent, FLAG_CONTENDED};
pub use flame::{FlameMetric, FlameSubscriber};
pub use hist::{HistSnapshot, Log2Hist};
pub use ndjson::NdjsonSubscriber;
pub use registry::{ComplexOp, LockClass, LockTag, RefOp, RingOp};
pub use report::Lockstat;
pub use snapshot::{render_stats, StatsRows};
pub use subscriber::{
    dispatch, install, install_static, set_auto_install, LockSubscriber, SlotsFull,
    StatsSubscriber,
};

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Nanoseconds since the first call in this process (a monotonic
/// timestamp for trace events; absolute epoch is irrelevant, only
/// differences are reported).
#[inline]
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    Instant::now().duration_since(epoch).as_nanos() as u64
}

/// Small dense id for the calling thread (1, 2, 3 … in first-use
/// order), recorded in trace events in place of the opaque `ThreadId`.
#[inline]
pub fn thread_tag() -> u32 {
    static NEXT: AtomicU32 = AtomicU32::new(1);
    thread_local! {
        // relaxed: unique-id draw; no ordering implied by tags.
        static TAG: u32 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TAG.with(|t| *t)
}

/// Emit one trace event, stamped with the current time and thread tag,
/// through the subscriber dispatcher ([`subscriber::dispatch`]). The
/// single entry point the traced crates' hooks call. On the first call
/// the default [`StatsSubscriber`] is installed (unless
/// [`set_auto_install`]`(false)` ran first), so a traced build reports
/// through the registry/ring/order machinery exactly as before the
/// subscriber layer existed.
#[inline]
pub fn emit(kind: EventKind, lock_id: u32, arg: u64) {
    emit_flags(kind, lock_id, arg, 0);
}

/// [`emit`] with event flag bits (e.g. [`FLAG_CONTENDED`] on acquire
/// events — the hook knows whether it actually waited; elapsed time
/// alone cannot say).
#[inline]
pub fn emit_flags(kind: EventKind, lock_id: u32, arg: u64, flags: u8) {
    subscriber::ensure_default();
    subscriber::dispatch(&TraceEvent {
        ts_ns: now_ns(),
        kind,
        lock_id,
        thread: thread_tag(),
        arg,
        flags,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn thread_tags_are_stable_and_distinct() {
        let mine = thread_tag();
        assert_eq!(mine, thread_tag());
        let other = std::thread::spawn(thread_tag).join().unwrap();
        assert_ne!(mine, other);
    }

    #[test]
    fn emit_lands_in_ring() {
        emit(EventKind::SimpleAcquire, 7, 42);
        let evs = ring::snapshot_current_thread();
        assert!(evs
            .iter()
            .any(|e| e.kind == EventKind::SimpleAcquire && e.lock_id == 7 && e.arg == 42));
    }
}
