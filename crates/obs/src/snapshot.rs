//! The unified stats-snapshot surface.
//!
//! The seed grew two ad-hoc snapshot types — `machk-sync`'s
//! `StatsSnapshot` for simple locks and `machk-lock`'s
//! `ComplexStatsSnapshot` for reader/writer locks — each with its own
//! render method. [`StatsRows`] is the one trait both implement: a
//! snapshot is a kind label, a set of named counters, and a set of
//! named rates. [`render_stats`] turns any implementor into the same
//! table shape, so experiment output and the lockstat report agree on
//! formatting regardless of which lock family produced the numbers.

/// A uniform, renderable view of a lock-statistics snapshot.
pub trait StatsRows {
    /// Which lock family produced this snapshot (`"simple"`,
    /// `"complex"`, …).
    fn stats_kind(&self) -> &'static str;

    /// Monotonic event counters, in display order.
    fn counter_rows(&self) -> Vec<(&'static str, u64)>;

    /// Derived rates in `0.0..=1.0`, in display order (may be empty).
    fn rate_rows(&self) -> Vec<(&'static str, f64)> {
        Vec::new()
    }
}

/// Render any [`StatsRows`] implementor as an aligned two-column
/// table, one counter or rate per line.
pub fn render_stats(title: &str, s: &dyn StatsRows) -> String {
    let counters = s.counter_rows();
    let rates = s.rate_rows();
    let width = counters
        .iter()
        .map(|(n, _)| n.len())
        .chain(rates.iter().map(|(n, _)| n.len()))
        .max()
        .unwrap_or(0);
    let mut out = format!("{title} [{}]\n", s.stats_kind());
    for (name, v) in &counters {
        out.push_str(&format!("  {name:<width$} {v:>12}\n"));
    }
    for (name, r) in &rates {
        out.push_str(&format!("  {name:<width$} {:>11.2}%\n", r * 100.0));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fake;

    impl StatsRows for Fake {
        fn stats_kind(&self) -> &'static str {
            "fake"
        }
        fn counter_rows(&self) -> Vec<(&'static str, u64)> {
            vec![("acquisitions", 10), ("contended", 3)]
        }
        fn rate_rows(&self) -> Vec<(&'static str, f64)> {
            vec![("contention_rate", 0.3)]
        }
    }

    #[test]
    fn renders_counters_and_rates() {
        let r = render_stats("test.lock", &Fake);
        assert!(r.contains("test.lock [fake]"), "{r}");
        assert!(r.contains("acquisitions"), "{r}");
        assert!(r.contains("30.00%"), "{r}");
    }
}
