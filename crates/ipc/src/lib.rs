//! # machk-ipc — ports, messages, and kernel RPC
//!
//! The Mach kernel is "communication oriented": "most kernel operations
//! are invoked by sending messages to the kernel" (paper section 3).
//! This crate rebuilds the IPC substrate the paper's reference protocol
//! (section 10) runs on:
//!
//! * [`Port`] — "a protected communication channel with exactly one
//!   receiver and one or more senders". Ports are reference-counted
//!   kernel objects themselves; a port that represents another kernel
//!   object holds a counted pointer to it, and removing that pointer is
//!   step 2 of the shutdown protocol ("this disables port to object
//!   translation").
//! * [`Message`] — "a typed collection of data objects": integers,
//!   byte strings, out-of-line regions, and **port rights** (sending a
//!   right transfers a reference).
//! * [`PortNameSpace`] — a task's name → port-right table. Translation
//!   "effectively clones the object reference held by the name
//!   translation data structures".
//! * [`rpc`] — MiG-style dispatch implementing the five-step operation
//!   sequence of section 10, with both reference-consumption semantics:
//!   Mach 2.5 (the interface code always releases the object reference)
//!   and Mach 3.0 ("a successful operation consumes ... the object
//!   reference, so the interface code releases the reference only if
//!   the operation fails").
//!
//! Blocking sends (queue full) and receives (queue empty) use the
//! section-6 event-wait protocol, making ports a natural integration
//! test of the locking substrate.
//!
//! ## The server core (beyond the paper)
//!
//! Three production-shaped layers apply the paper's own scaling
//! lessons to this substrate (see each module's docs):
//!
//! * message queues are lock-free bounded rings with batched dequeue
//!   ([`port`] module docs);
//! * the name table is sharded across independently locked,
//!   lockstat-named shards ([`namespace`] module docs);
//! * the [`engine`] drives seeded task-create / port-transfer /
//!   dead-port-churn RPC storms through §10 dispatch with both
//!   reference ledgers audited — the E19 experiment and the machk-sim
//!   determinism probe run on it.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod engine;
pub mod message;
pub mod namespace;
pub mod port;
pub mod portset;
pub mod rpc;

pub use engine::{CrashKind, CrashPoint, Engine, EngineConfig, EngineReport};
pub use message::{Message, MsgElement};
pub use namespace::{PortName, PortNameSpace};
pub use port::{Port, PortError};
pub use portset::PortSet;
pub use rpc::{DispatchTable, KernError, RefSemantics, ReplyCache, RpcError, RpcStats};
