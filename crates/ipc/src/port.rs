//! Ports.
//!
//! "A port is a protected communication channel with exactly one
//! receiver and one or more senders." A port is itself a
//! reference-counted kernel object (its data structure is protected by
//! a simple lock and survives while references exist), and — for kernel
//! objects exported via ports — it holds the counted object pointer
//! that port-to-object translation clones (section 10).
//!
//! ## Lock-free message queue (beyond the paper)
//!
//! The message queue itself is a bounded lock-free ring
//! ([`machk_core::sync::ring::MpscRing`]) rather than a `VecDeque` under the
//! port's simple lock: enqueue and dequeue are compare-exchange slot
//! claims, so senders on different cores never serialize on the port
//! lock just to move a message. The port's simple lock still guards the
//! *rarely written* state (the kernel-object pointer and port-set
//! membership), preserving the paper's locking story where it matters.
//!
//! Blocking keeps the §6 split-wait protocol, with one twist: with no
//! queue lock, the classic "declare the wait while holding the lock"
//! window does not exist, so each blocking path re-validates its
//! condition *after* `assert_wait` and cancels its own wait
//! (`clear_wait`) if the condition already changed. That re-check is
//! what makes the lock-free queue race-free against lost wakeups.

use machk_core::{
    assert_wait, clear_wait, current_thread, thread_block, thread_block_timeout, thread_wakeup,
    Deactivated, Event, ObjHeader, ObjRef, Refable, SimpleLocked, WaitResult,
};
use machk_core::sync::ring::MpscRing;

use crate::message::Message;

/// Default bound on queued messages before senders block.
pub const DEFAULT_QUEUE_LIMIT: usize = 64;

/// Errors from port operations.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum PortError {
    /// The port has been destroyed (deactivated). Senders and receivers
    /// see this instead of blocking forever.
    Dead,
    /// A bounded receive timed out.
    TimedOut,
    /// The port has no kernel object attached (translation disabled or
    /// never enabled).
    NotAnObjectPort,
    /// The port is a member of a port set; its messages must be
    /// received through the set.
    InPortSet,
}

impl core::fmt::Display for PortError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PortError::Dead => f.write_str("port is dead"),
            PortError::TimedOut => f.write_str("receive timed out"),
            PortError::NotAnObjectPort => f.write_str("port has no kernel object"),
            PortError::InPortSet => f.write_str("port is in a port set"),
        }
    }
}

impl std::error::Error for PortError {}

impl From<Deactivated> for PortError {
    fn from(_: Deactivated) -> Self {
        PortError::Dead
    }
}

/// Rarely-written port state kept under the port's simple lock: the
/// message queue no longer lives here (see the module docs).
struct PortState {
    /// The represented kernel object, if this port exports one.
    /// "If the abstraction is not a port, then the port data structure
    /// contains a pointer to the actual object" — with a reference.
    kernel_object: Option<ObjRef<dyn Refable>>,
    /// When the port belongs to a port set: the set's wakeup event.
    /// Receives must then go through the set.
    pset_event: Option<Event>,
}

/// A Mach port.
///
/// # Examples
///
/// ```
/// use machk_ipc::{Message, Port};
///
/// let port = Port::create();
/// port.send(Message::new(1).with_int(10)).unwrap();
/// let msg = port.receive().unwrap();
/// assert_eq!(msg.int_at(0), Some(10));
/// ```
pub struct Port {
    header: ObjHeader,
    /// Lock-free bounded message ring; see the module docs.
    queue: MpscRing<Message>,
    state: SimpleLocked<PortState>,
}

impl Refable for Port {
    fn header(&self) -> &ObjHeader {
        &self.header
    }
}

impl Port {
    /// Create a port with the default queue limit, returning the
    /// creation reference (conventionally the receive right).
    pub fn create() -> ObjRef<Port> {
        Port::create_with_limit(DEFAULT_QUEUE_LIMIT)
    }

    /// Create a port with an explicit queue limit (≥ 1).
    pub fn create_with_limit(limit: usize) -> ObjRef<Port> {
        assert!(limit >= 1, "queue limit must be at least 1");
        ObjRef::new(Port {
            header: ObjHeader::new(),
            // One trace name for every port queue: the obs registry
            // dedupes per name, so the lockstat/flame reports show ring
            // traffic and backpressure aggregated across all ports.
            queue: MpscRing::with_limit_named(limit, "ipc.port.queue"),
            state: SimpleLocked::new(PortState {
                kernel_object: None,
                pset_event: None,
            }),
        })
    }

    fn recv_event(&self) -> Event {
        Event::from_addr(self)
    }

    fn send_event(&self) -> Event {
        Event::from_addr(self).offset(1)
    }

    fn pset_event(&self) -> Option<Event> {
        self.state.lock().pset_event
    }

    /// Post-enqueue wakeups: a receiver (directly or through the port
    /// set) plus — after a destroy raced with the enqueue — the
    /// dead-port cleanup described in [`Port::send`].
    fn after_enqueue(&self) -> Result<(), PortError> {
        // SeqCst fence, pairing with the one in `destroy` between
        // deactivate and drain. In the single total order of SeqCst
        // fences either ours comes first — then our push is visible to
        // destroy's drain — or destroy's comes first — then the load
        // below observes the dead flag and we drain ourselves. Either
        // way no message survives destruction. Without the fences a
        // store→load reordering (legal even on x86: the push sits in
        // the store buffer while `active` is read early) lets the push
        // miss destroy's drain while we still read `active == true`.
        core::sync::atomic::fence(core::sync::atomic::Ordering::SeqCst);
        if !self.header.is_active() {
            // A destroy ran concurrently with our push; its drain may
            // have missed our message, so drain again ourselves. Pops
            // are CAS claims, so racing with other cleaners is safe.
            while self.queue.pop().is_some() {}
            return Err(PortError::Dead);
        }
        thread_wakeup(self.recv_event());
        if let Some(ev) = self.pset_event() {
            thread_wakeup(ev);
        }
        Ok(())
    }

    /// Send a message, blocking while the queue is full.
    pub fn send(&self, msg: Message) -> Result<(), PortError> {
        let mut msg = msg;
        loop {
            self.header.check_active()?;
            match self.queue.push(msg) {
                Ok(()) => return self.after_enqueue(),
                Err(back) => {
                    msg = back;
                    // Queue full: the split-wait protocol — declare the
                    // wait, then re-validate (there is no lock to close
                    // the window, so the re-check after assert_wait is
                    // the §6 discipline's lock-free analogue).
                    assert_wait(self.send_event(), false);
                    if self.queue.len() < self.queue.limit() || !self.header.is_active() {
                        clear_wait(&current_thread(), WaitResult::Awakened);
                    }
                    thread_block();
                }
            }
        }
    }

    /// Send without blocking.
    ///
    /// On failure the error carries the undelivered message back when
    /// it still exists: `Some(msg)` for a full queue
    /// ([`PortError::TimedOut`]) or a port observed dead before the
    /// enqueue. `None` means a destroy raced with the enqueue and the
    /// dead-port drain already consumed the message — its payload is
    /// gone and any rights it carried were released, exactly as
    /// [`Port::destroy`] promises for queued messages.
    pub fn try_send(&self, msg: Message) -> Result<(), (Option<Message>, PortError)> {
        if !self.header.is_active() {
            return Err((Some(msg), PortError::Dead));
        }
        match self.queue.push(msg) {
            Ok(()) => self.after_enqueue().map_err(|e| {
                debug_assert_eq!(e, PortError::Dead);
                // Consumed by the dead-port drain: nothing to hand back.
                (None, e)
            }),
            Err(back) => Err((Some(back), PortError::TimedOut)),
        }
    }

    /// Receive a message, blocking while the queue is empty.
    pub fn receive(&self) -> Result<Message, PortError> {
        loop {
            if self.pset_event().is_some() {
                return Err(PortError::InPortSet);
            }
            if let Some(m) = self.queue.pop() {
                thread_wakeup(self.send_event());
                return Ok(m);
            }
            self.header.check_active()?;
            assert_wait(self.recv_event(), false);
            // Re-validate after declaring the wait: a sender (or a
            // destroy) that fired its wakeup before our assert_wait
            // must not strand us.
            if !self.queue.is_empty() || !self.header.is_active() {
                clear_wait(&current_thread(), WaitResult::Awakened);
            }
            thread_block();
        }
    }

    /// Receive with an upper bound on the wait.
    pub fn receive_timeout(&self, timeout: std::time::Duration) -> Result<Message, PortError> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if self.pset_event().is_some() {
                return Err(PortError::InPortSet);
            }
            if let Some(m) = self.queue.pop() {
                thread_wakeup(self.send_event());
                return Ok(m);
            }
            self.header.check_active()?;
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(PortError::TimedOut);
            }
            assert_wait(self.recv_event(), false);
            if !self.queue.is_empty() || !self.header.is_active() {
                clear_wait(&current_thread(), WaitResult::Awakened);
            }
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if thread_block_timeout(remaining) == WaitResult::TimedOut {
                // One more pass to drain anything that raced in.
                if let Some(m) = self.queue.pop() {
                    thread_wakeup(self.send_event());
                    return Ok(m);
                }
                return Err(PortError::TimedOut);
            }
        }
    }

    /// Receive without blocking.
    pub fn try_receive(&self) -> Result<Message, PortError> {
        if self.pset_event().is_some() {
            return Err(PortError::InPortSet);
        }
        if let Some(m) = self.queue.pop() {
            thread_wakeup(self.send_event());
            return Ok(m);
        }
        self.header.check_active()?;
        Err(PortError::TimedOut)
    }

    /// Batched non-blocking receive: dequeue up to `max` messages into
    /// `out` in one sweep, waking blocked senders once. Returns how many
    /// messages were taken. The dispatch loop's amortized dequeue path.
    pub fn receive_batch(&self, out: &mut Vec<Message>, max: usize) -> Result<usize, PortError> {
        if self.pset_event().is_some() {
            return Err(PortError::InPortSet);
        }
        let n = self.queue.pop_batch(out, max);
        if n > 0 {
            thread_wakeup(self.send_event());
            return Ok(n);
        }
        self.header.check_active()?;
        Ok(0)
    }

    /// Messages currently queued (racy; diagnostics).
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// The queue's message limit.
    pub fn queue_limit(&self) -> usize {
        self.queue.limit()
    }

    /// Join a port set (called by `PortSet::add` with the set lock
    /// held; lock order is set before port).
    pub(crate) fn join_set(&self, set_event: Event) -> Result<(), PortError> {
        let mut s = self.state.lock();
        self.header.check_active()?;
        if s.pset_event.is_some() {
            return Err(PortError::InPortSet);
        }
        s.pset_event = Some(set_event);
        Ok(())
    }

    /// Leave the port set (called by `PortSet::remove`/`destroy`).
    pub(crate) fn leave_set(&self) {
        self.state.lock().pset_event = None;
    }

    /// Non-blocking dequeue on behalf of the containing port set (the
    /// set, not the port, refuses direct receives).
    pub(crate) fn try_receive_for_set(&self) -> Result<Message, PortError> {
        if let Some(m) = self.queue.pop() {
            thread_wakeup(self.send_event());
            return Ok(m);
        }
        self.header.check_active()?;
        Err(PortError::TimedOut)
    }

    /// Attach the kernel object this port represents. The port now owns
    /// the given reference.
    pub fn set_kernel_object(&self, obj: ObjRef<dyn Refable>) {
        let mut s = self.state.lock();
        let old = s.kernel_object.replace(obj);
        drop(s);
        // Release any displaced reference outside the lock (the
        // section-8 release rule).
        drop(old);
    }

    /// Port-to-object translation: clone the represented object's
    /// reference (the step-2 translation of section 10). Fails once the
    /// pointer has been removed by shutdown.
    pub fn kernel_object(&self) -> Result<ObjRef<dyn Refable>, PortError> {
        let s = self.state.lock();
        match &s.kernel_object {
            // Cloning takes a reference while the port lock preserves
            // the pointer — the "indirect reference" protocol.
            Some(obj) => Ok(obj.clone()),
            None => Err(PortError::NotAnObjectPort),
        }
    }

    /// Shutdown step 2: "lock the corresponding port, remove the object
    /// pointer and reference from the port, and unlock the port. This
    /// disables port to object translation." Returns the removed
    /// reference for the caller to release (outside any lock).
    pub fn clear_kernel_object(&self) -> Option<ObjRef<dyn Refable>> {
        let mut s = self.state.lock();
        s.kernel_object.take()
    }

    /// Destroy the port: deactivate it and wake all blocked senders and
    /// receivers (they observe [`PortError::Dead`]). Queued messages are
    /// drained and dropped (releasing any port rights they carry).
    ///
    /// With the lock-free queue the deactivate/drain pair is not atomic;
    /// a sender whose push lands after our drain observes the dead
    /// header *after* its enqueue and runs the same drain itself
    /// (`Port::after_enqueue`), so no message survives destruction.
    pub fn destroy(&self) -> Result<(), PortError> {
        self.header.deactivate()?;
        // SeqCst fence, pairing with the one in `after_enqueue` (see
        // there): orders the deactivation store against concurrent
        // push/is_active pairs so the drain below and the senders'
        // self-drains together cover every interleaving.
        core::sync::atomic::fence(core::sync::atomic::Ordering::SeqCst);
        // Drain outside any lock: messages may carry port rights whose
        // release could cascade into destruction.
        while let Some(m) = self.queue.pop() {
            drop(m);
        }
        thread_wakeup(self.recv_event());
        thread_wakeup(self.send_event());
        if let Some(ev) = self.pset_event() {
            thread_wakeup(ev);
        }
        Ok(())
    }

    /// Whether the port is still alive.
    pub fn is_alive(&self) -> bool {
        self.header.is_active()
    }
}

impl core::fmt::Debug for Port {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Port")
            .field("alive", &self.is_alive())
            .field("queued", &self.queue.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn send_receive_fifo() {
        let port = Port::create();
        for i in 0..10 {
            port.send(Message::new(i)).unwrap();
        }
        for i in 0..10 {
            assert_eq!(port.receive().unwrap().id(), i);
        }
    }

    #[test]
    fn receive_blocks_until_send() {
        let port = Port::create();
        std::thread::scope(|s| {
            let t = s.spawn(|| port.receive().unwrap().int_at(0));
            std::thread::sleep(Duration::from_millis(10));
            port.send(Message::new(0).with_int(5)).unwrap();
            assert_eq!(t.join().unwrap(), Some(5));
        });
    }

    #[test]
    fn bounded_queue_blocks_sender() {
        let port = Port::create_with_limit(2);
        port.send(Message::new(0)).unwrap();
        port.send(Message::new(1)).unwrap();
        let sent_third = AtomicUsize::new(0);
        std::thread::scope(|s| {
            s.spawn(|| {
                port.send(Message::new(2)).unwrap();
                sent_third.store(1, Ordering::SeqCst);
            });
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(sent_third.load(Ordering::SeqCst), 0, "sender must block");
            assert_eq!(port.receive().unwrap().id(), 0);
            // Space freed: the sender completes.
            while sent_third.load(Ordering::SeqCst) == 0 {
                std::thread::yield_now();
            }
        });
        assert_eq!(port.receive().unwrap().id(), 1);
        assert_eq!(port.receive().unwrap().id(), 2);
    }

    #[test]
    fn try_send_full_returns_message() {
        let port = Port::create_with_limit(1);
        port.send(Message::new(0)).unwrap();
        let (msg, err) = port.try_send(Message::new(1).with_int(9)).unwrap_err();
        assert_eq!(err, PortError::TimedOut);
        let msg = msg.expect("full-queue failure returns the message");
        assert_eq!(msg.int_at(0), Some(9), "message returned intact");
    }

    #[test]
    fn try_send_on_dead_port_returns_message() {
        let port = Port::create();
        port.destroy().unwrap();
        let (msg, err) = port.try_send(Message::new(3).with_int(7)).unwrap_err();
        assert_eq!(err, PortError::Dead);
        let msg = msg.expect("dead observed before enqueue: message intact");
        assert_eq!(msg.int_at(0), Some(7));
    }

    #[test]
    fn receive_timeout_expires() {
        let port = Port::create();
        let r = port.receive_timeout(Duration::from_millis(10));
        assert_eq!(r.unwrap_err(), PortError::TimedOut);
    }

    #[test]
    fn destroy_wakes_blocked_receiver() {
        let port = Port::create();
        std::thread::scope(|s| {
            let t = s.spawn(|| port.receive());
            std::thread::sleep(Duration::from_millis(10));
            port.destroy().unwrap();
            assert_eq!(t.join().unwrap().unwrap_err(), PortError::Dead);
        });
    }

    #[test]
    fn destroy_wakes_blocked_sender() {
        let port = Port::create_with_limit(1);
        port.send(Message::new(0)).unwrap();
        std::thread::scope(|s| {
            let t = s.spawn(|| port.send(Message::new(1)));
            std::thread::sleep(Duration::from_millis(10));
            port.destroy().unwrap();
            assert_eq!(t.join().unwrap().unwrap_err(), PortError::Dead);
        });
    }

    #[test]
    fn dead_port_refuses_operations() {
        let port = Port::create();
        port.destroy().unwrap();
        assert_eq!(port.send(Message::new(0)).unwrap_err(), PortError::Dead);
        assert_eq!(port.receive().unwrap_err(), PortError::Dead);
        assert_eq!(port.destroy().unwrap_err(), PortError::Dead);
        assert!(!port.is_alive());
    }

    #[test]
    fn destroy_releases_queued_port_rights() {
        let inner = Port::create();
        let port = Port::create();
        port.send(Message::new(0).with_port_right(inner.clone()))
            .unwrap();
        assert_eq!(ObjRef::ref_count(&inner), 2);
        port.destroy().unwrap();
        assert_eq!(ObjRef::ref_count(&inner), 1, "queued right released");
    }

    #[test]
    fn send_racing_destroy_never_leaks_rights() {
        // Hammer the send-vs-destroy race: whatever interleaving occurs,
        // every queued right must be released by the time both sides are
        // done (destroy's drain or the sender's dead-port cleanup).
        for _ in 0..200 {
            let inner = Port::create();
            let port = Port::create();
            std::thread::scope(|s| {
                let p = &port;
                let i = &inner;
                s.spawn(move || {
                    let _ = p.send(Message::new(0).with_port_right(i.clone()));
                });
                s.spawn(move || {
                    let _ = p.destroy();
                });
            });
            let _ = port.destroy();
            assert_eq!(ObjRef::ref_count(&inner), 1, "right must not leak");
        }
    }

    #[test]
    fn receive_batch_drains_in_order() {
        let port = Port::create();
        for i in 0..10 {
            port.send(Message::new(i)).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(port.receive_batch(&mut out, 4).unwrap(), 4);
        assert_eq!(port.receive_batch(&mut out, 100).unwrap(), 6);
        let ids: Vec<u32> = out.iter().map(|m| m.id()).collect();
        assert_eq!(ids, (0..10).collect::<Vec<u32>>());
        assert_eq!(port.receive_batch(&mut out, 1).unwrap(), 0);
        port.destroy().unwrap();
        assert_eq!(
            port.receive_batch(&mut out, 1).unwrap_err(),
            PortError::Dead
        );
    }

    #[test]
    fn kernel_object_translation_clones_reference() {
        use machk_core::Kobj;
        let task = Kobj::create(0u32);
        let port = Port::create();
        port.set_kernel_object(task.clone().into_dyn());
        assert_eq!(ObjRef::ref_count(&task), 2);
        let translated = port.kernel_object().unwrap();
        assert_eq!(ObjRef::ref_count(&task), 3, "translation takes a reference");
        drop(translated);
        let removed = port.clear_kernel_object().expect("pointer present");
        drop(removed);
        assert_eq!(ObjRef::ref_count(&task), 1);
        match port.kernel_object() {
            Err(PortError::NotAnObjectPort) => {} // translation disabled after step 2
            other => panic!("expected NotAnObjectPort, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn many_producers_one_consumer() {
        const PRODUCERS: usize = 4;
        const PER: usize = 500;
        let port = Port::create_with_limit(8);
        let sum = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for p in 0..PRODUCERS {
                let port = &port;
                s.spawn(move || {
                    for i in 0..PER {
                        port.send(Message::new(0).with_int((p * PER + i) as u64))
                            .unwrap();
                    }
                });
            }
            for _ in 0..PRODUCERS * PER {
                let m = port.receive().unwrap();
                sum.fetch_add(m.int_at(0).unwrap() as usize, Ordering::Relaxed);
            }
        });
        let n = PRODUCERS * PER;
        assert_eq!(sum.load(Ordering::Relaxed), n * (n - 1) / 2);
    }
}
