//! MiG-style kernel RPC dispatch.
//!
//! Section 10 of the paper describes how a kernel operation keeps its
//! object alive:
//!
//! > 1. The request message is received. This message contains a
//! >    reference to the port from which it was received.
//! > 2. The represented object is determined from the port and a
//! >    reference is obtained to the object.
//! > 3. The operation executes. ... Note that the object and its
//! >    corresponding port cannot vanish due to the references acquired
//! >    above.
//! > 4. The operation completes. Interface code releases the object
//! >    reference. In Mach 3.0 systems ... a successful operation
//! >    consumes (uses or releases) the object reference, so the
//! >    interface code releases the reference only if the operation
//! >    fails.
//! > 5. Reply message returns result. Internal destruction of original
//! >    message releases the port reference.
//!
//! [`DispatchTable`] plays the role of the MiG-generated stubs: it maps
//! `(object type, operation id)` to a handler, performs the translation
//! and reference management of steps 2 and 4, and reports — via
//! [`RpcStats`] — who released each reference, which is the observable
//! difference between the 2.5 and 3.0 semantics.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use machk_core::sync::host;
use machk_core::{Deactivated, JitterBackoff, ObjRef, Refable, SimpleLocked};

use crate::message::Message;
use crate::port::{Port, PortError};

/// Errors a kernel operation can return (a small subset of Mach's
/// `kern_return_t`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernError {
    /// The object has been deactivated (terminated).
    Deactivated,
    /// Malformed or out-of-range argument.
    InvalidArgument,
    /// The named entity was not found.
    NotFound,
    /// Subsystem-specific failure code.
    Failure(u32),
}

impl From<Deactivated> for KernError {
    fn from(_: Deactivated) -> Self {
        KernError::Deactivated
    }
}

impl core::fmt::Display for KernError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            KernError::Deactivated => f.write_str("object deactivated"),
            KernError::InvalidArgument => f.write_str("invalid argument"),
            KernError::NotFound => f.write_str("not found"),
            KernError::Failure(code) => write!(f, "failure (code {code})"),
        }
    }
}

impl std::error::Error for KernError {}

/// Errors of the RPC transport/dispatch itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RpcError {
    /// The port is dead or not an object port.
    Port(PortError),
    /// No handler registered for this (object type, operation).
    NoSuchOperation,
    /// The dispatch table routed the message to a handler registered
    /// for a different concrete type — a stub/registration bug,
    /// reported to the caller instead of panicking the "kernel".
    WrongObjectType,
    /// The operation executed, but its reply message was lost in
    /// transport. The operation's side effects (and its reference
    /// disposition) stand; only the result never reached the caller.
    ReplyDropped,
    /// The operation executed and failed.
    Operation(KernError),
}

impl From<PortError> for RpcError {
    fn from(e: PortError) -> Self {
        RpcError::Port(e)
    }
}

impl core::fmt::Display for RpcError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RpcError::Port(e) => write!(f, "rpc transport: {e}"),
            RpcError::NoSuchOperation => f.write_str("no such operation"),
            RpcError::WrongObjectType => f.write_str("dispatch table routed to wrong type"),
            RpcError::ReplyDropped => f.write_str("reply message dropped in transport"),
            RpcError::Operation(e) => write!(f, "operation failed: {e}"),
        }
    }
}

impl std::error::Error for RpcError {}

/// Which reference-management convention the interface code follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RefSemantics {
    /// Mach 2.5: the interface code always releases the object reference
    /// when the operation completes.
    #[default]
    Mach25,
    /// Mach 3.0: a successful operation consumes (uses or releases) the
    /// object reference; the interface releases it only on failure.
    Mach30,
}

/// Counters making the reference flow observable (experiment E12).
#[derive(Debug, Default)]
pub struct RpcStats {
    /// References obtained by port→object translation (step 2).
    pub translations: AtomicU64,
    /// References released by interface code (step 4, 2.5 path or 3.0
    /// failure path).
    pub interface_releases: AtomicU64,
    /// References consumed by successful operations (3.0 path).
    pub operation_consumes: AtomicU64,
    /// Operations that failed.
    pub failures: AtomicU64,
}

impl RpcStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    fn snapshot(&self) -> (u64, u64, u64, u64) {
        // relaxed: monotone ledger counters; the balance invariant is
        // checked only at quiescence.
        (
            self.translations.load(Ordering::Relaxed),
            self.interface_releases.load(Ordering::Relaxed),
            self.operation_consumes.load(Ordering::Relaxed),
            self.failures.load(Ordering::Relaxed),
        )
    }

    /// Invariant: every translated reference was released by exactly one
    /// party.
    pub fn balanced(&self) -> bool {
        let (t, i, c, _f) = self.snapshot();
        t == i + c
    }
}

/// Server-side reply cache keyed by idempotent sequence number: the
/// piece that makes RPC *retry* safe against the §10 ledger.
///
/// When a reply is lost in transport ([`RpcError::ReplyDropped`]) the
/// operation has already executed and its step-4 reference disposition
/// has already settled — naively re-executing on retry would run the
/// handler (and move the ledger) twice for one logical operation. So
/// the server records the finished reply under the caller's sequence
/// number at the drop point; a retry with the same number is answered
/// **from the cache** — no translation, no handler, no reference
/// movement — which is exactly the "at most one execution, at least one
/// reply" contract that keeps `translations == interface_releases +
/// operation_consumes` true under retry storms.
///
/// Entries are consumed by the first retry that hits them; entries for
/// callers that died before retrying are dropped with the cache (the
/// supervisor rebuilds engines per storm, so orphans are bounded).
#[derive(Default)]
pub struct ReplyCache {
    map: SimpleLocked<HashMap<u64, Message>>,
    /// Lock-free emptiness hint so the idempotent fast path costs one
    /// relaxed load, not a shared-lock acquisition per RPC. A caller
    /// only ever takes its *own* sequence numbers, and the recording
    /// dispatch happens on that same caller's thread before its retry,
    /// so program order alone makes the hint reliable where it matters.
    pending: AtomicU64,
}

impl ReplyCache {
    /// An empty cache.
    pub fn new() -> ReplyCache {
        ReplyCache::default()
    }

    /// Record the finished reply for sequence `seq` (called at the
    /// reply-drop point, after the ledger has settled). Only the
    /// fault-feature drop hook loses replies, hence the allow.
    #[cfg_attr(not(feature = "fault"), allow(dead_code))]
    fn record(&self, seq: u64, reply: Message) {
        let mut map = self.map.lock();
        if map.insert(seq, reply).is_none() {
            // relaxed: emptiness hint only; see the field docs.
            self.pending.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Consume the recorded reply for `seq`, if the operation already
    /// executed.
    fn take(&self, seq: u64) -> Option<Message> {
        // relaxed: emptiness hint only; see the field docs.
        if self.pending.load(Ordering::Relaxed) == 0 {
            return None;
        }
        let taken = self.map.lock().remove(&seq);
        if taken.is_some() {
            // relaxed: emptiness hint only; see the field docs.
            self.pending.fetch_sub(1, Ordering::Relaxed);
        }
        taken
    }

    /// Recorded replies awaiting a retry (diagnostics).
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    /// Whether no replies are waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl core::fmt::Debug for ReplyCache {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ReplyCache")
            .field("pending", &self.len())
            .finish()
    }
}

/// A handler: receives the (type-erased) object and the request, returns
/// the reply. Errors are already lifted to [`RpcError`] so a routing
/// mistake (wrong concrete type) surfaces as a typed error rather than
/// a panic inside the stub.
type Handler =
    Arc<dyn Fn(&ObjRef<dyn Refable>, &Message) -> Result<Message, RpcError> + Send + Sync>;

/// The dispatch table: Mach's MiG-generated kernel server, as data.
///
/// # Examples
///
/// ```
/// use machk_core::Kobj;
/// use machk_ipc::{DispatchTable, KernError, Message, Port, RefSemantics, RpcStats};
///
/// type Counter = Kobj<u64>;
/// const OP_ADD: u32 = 1;
///
/// let mut table = DispatchTable::new();
/// table.register::<Counter>(OP_ADD, |counter, msg| {
///     let delta = msg.int_at(0).ok_or(KernError::InvalidArgument)?;
///     let total = counter.with_active(|n| { *n += delta; *n })?;
///     Ok(Message::new(OP_ADD).with_int(total))
/// });
///
/// let counter = Kobj::create(0u64);
/// let port = Port::create();
/// port.set_kernel_object(counter.clone().into_dyn());
///
/// let stats = RpcStats::new();
/// let reply = table
///     .msg_rpc(&port, Message::new(OP_ADD).with_int(5), RefSemantics::Mach30, &stats)
///     .unwrap();
/// assert_eq!(reply.int_at(0), Some(5));
/// assert!(stats.balanced());
/// ```
#[derive(Default)]
pub struct DispatchTable {
    handlers: HashMap<(core::any::TypeId, u32), Handler>,
}

impl DispatchTable {
    /// An empty table.
    pub fn new() -> DispatchTable {
        DispatchTable {
            handlers: HashMap::new(),
        }
    }

    /// Register the handler for operation `op` on objects of type `T`.
    pub fn register<T: Refable>(
        &mut self,
        op: u32,
        f: impl Fn(&T, &Message) -> Result<Message, KernError> + Send + Sync + 'static,
    ) {
        let handler: Handler = Arc::new(move |obj, msg| {
            let typed = obj
                .downcast_ref::<T>()
                .ok_or(RpcError::WrongObjectType)?;
            f(typed, msg).map_err(RpcError::Operation)
        });
        self.handlers
            .insert((core::any::TypeId::of::<T>(), op), handler);
    }

    /// Whether an operation is registered for the concrete type of
    /// `obj`.
    fn lookup(&self, obj: &ObjRef<dyn Refable>, op: u32) -> Option<&Handler> {
        let any: &dyn core::any::Any = &**obj;
        self.handlers.get(&(any.type_id(), op))
    }

    /// Execute one kernel RPC: the full five-step sequence of
    /// section 10 against `port`'s kernel object.
    ///
    /// The `request.id()` names the operation. The caller's `port`
    /// reference plays the part of the message's port reference (step 1
    /// / step 5: it is borrowed for the duration and "released" —
    /// returned to the caller — when the call ends).
    pub fn msg_rpc(
        &self,
        port: &ObjRef<Port>,
        request: Message,
        semantics: RefSemantics,
        stats: &RpcStats,
    ) -> Result<Message, RpcError> {
        self.dispatch(port, request, semantics, stats, None)
    }

    /// [`DispatchTable::msg_rpc`] with an idempotent sequence number:
    /// if `cache` already holds the reply for `seq` — the operation
    /// executed but its reply was lost — it is returned directly,
    /// without translation, handler execution, or any ledger movement
    /// (see [`ReplyCache`] for why that is the §10-safe retry shape).
    /// Otherwise the RPC runs normally, and a lost reply is recorded
    /// under `seq` before [`RpcError::ReplyDropped`] is reported.
    pub fn msg_rpc_idempotent(
        &self,
        port: &ObjRef<Port>,
        request: Message,
        semantics: RefSemantics,
        stats: &RpcStats,
        seq: u64,
        cache: &ReplyCache,
    ) -> Result<Message, RpcError> {
        if let Some(reply) = cache.take(seq) {
            return Ok(reply);
        }
        self.dispatch(port, request, semantics, stats, Some((cache, seq)))
    }

    /// Deadline + jittered-backoff retry around
    /// [`DispatchTable::msg_rpc_idempotent`]. Retries only the
    /// transport-class failures — a dropped reply (the operation ran;
    /// the retry is answered from the cache) and a transiently dead
    /// port (nothing ran; re-executing is safe) — with decorrelated
    /// jitter between attempts so a retry storm does not reconverge on
    /// the server in phase. The deadline is measured on [`host::now`],
    /// so under `machk-sim` retry timing is part of the deterministic
    /// schedule. Returns the reply plus how many retries it took.
    #[allow(clippy::too_many_arguments)] // the full retry contract: port, request, semantics, stats, idempotency key, cache, deadline
    pub fn msg_rpc_retry(
        &self,
        port: &ObjRef<Port>,
        make_request: impl Fn() -> Message,
        semantics: RefSemantics,
        stats: &RpcStats,
        seq: u64,
        cache: &ReplyCache,
        deadline: Duration,
    ) -> Result<(Message, u32), RpcError> {
        // The clock is read lazily, on the first failure: the common
        // all-success case must cost nothing beyond the dispatch itself
        // (this sits on the engine's storm hot path).
        let mut start: Option<u64> = None;
        let mut retries = 0u32;
        let mut backoff = JitterBackoff::new();
        loop {
            match self.msg_rpc_idempotent(port, make_request(), semantics, stats, seq, cache) {
                Ok(reply) => return Ok((reply, retries)),
                Err(e @ (RpcError::ReplyDropped | RpcError::Port(PortError::Dead))) => {
                    let now = host::now();
                    let waited = Duration::from_nanos(now.saturating_sub(*start.get_or_insert(now)));
                    if waited >= deadline {
                        return Err(e);
                    }
                    retries += 1;
                    backoff.pause();
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// The shared five-step dispatch core; `record` carries the reply
    /// cache + sequence for the idempotent entry point.
    fn dispatch(
        &self,
        port: &ObjRef<Port>,
        request: Message,
        semantics: RefSemantics,
        stats: &RpcStats,
        record: Option<(&ReplyCache, u64)>,
    ) -> Result<Message, RpcError> {
        #[cfg(not(feature = "fault"))]
        let _ = record;
        // Fault hook: the port died between the caller's send and our
        // translation. Injected *before* the translation counter so no
        // reference was obtained and the ledger stays balanced.
        #[cfg(feature = "fault")]
        if machk_fault::fire(machk_fault::FaultSite::RpcDeadPort) {
            return Err(RpcError::Port(PortError::Dead));
        }

        // Step 2: port → object translation obtains a reference.
        let obj = port.kernel_object()?;
        // relaxed: ledger counter; the reference itself came from the
        // port's own synchronization.
        stats.translations.fetch_add(1, Ordering::Relaxed);

        let handler = self.lookup(&obj, request.id()).ok_or_else(|| {
            // Translation reference released by interface code.
            // relaxed: ledger counter.
            stats.interface_releases.fetch_add(1, Ordering::Relaxed);
            RpcError::NoSuchOperation
        });
        let handler = match handler {
            Ok(h) => Arc::clone(h),
            Err(e) => {
                drop(obj);
                return Err(e);
            }
        };

        // Step 3: the operation executes. The object cannot vanish: we
        // hold the translation reference; the port cannot vanish: the
        // message (caller) holds a port reference.
        let result = handler(&obj, &request);

        // Step 4: reference disposition.
        match (&result, semantics) {
            (Ok(_), RefSemantics::Mach30) => {
                // The successful operation consumed the reference.
                stats.operation_consumes.fetch_add(1, Ordering::Relaxed); // relaxed: ledger counter
            }
            (Ok(_), RefSemantics::Mach25) | (Err(_), _) => {
                // Interface code releases.
                stats.interface_releases.fetch_add(1, Ordering::Relaxed); // relaxed: ledger counter
            }
        }
        if result.is_err() {
            stats.failures.fetch_add(1, Ordering::Relaxed); // relaxed: ledger counter
        }
        drop(obj);

        // Fault hook: the reply is lost on the way back. The operation
        // ran and the step-4 disposition above already happened — as
        // with a real dropped reply, only the *caller's view* is lost,
        // so the reference ledger is untouched and still balances. For
        // idempotent callers the finished reply is recorded first, so a
        // retry is answered without re-executing anything.
        #[cfg(feature = "fault")]
        if result.is_ok() && machk_fault::fire(machk_fault::FaultSite::RpcDropReply) {
            drop(request);
            if let (Some((cache, seq)), Ok(reply)) = (record, result) {
                cache.record(seq, reply);
            }
            return Err(RpcError::ReplyDropped);
        }

        // Step 5: reply returns the result; dropping `request` here
        // releases any references the request message carried.
        drop(request);
        result
    }
}

impl core::fmt::Debug for DispatchTable {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("DispatchTable")
            .field("operations", &self.handlers.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machk_core::Kobj;

    type Counter = Kobj<u64>;
    const OP_ADD: u32 = 1;
    const OP_GET: u32 = 2;
    const OP_FAIL: u32 = 3;

    fn table() -> DispatchTable {
        let mut t = DispatchTable::new();
        t.register::<Counter>(OP_ADD, |c, m| {
            let d = m.int_at(0).ok_or(KernError::InvalidArgument)?;
            let v = c.with_active(|n| {
                *n += d;
                *n
            })?;
            Ok(Message::new(OP_ADD).with_int(v))
        });
        t.register::<Counter>(OP_GET, |c, _m| {
            let v = c.with_active(|n| *n)?;
            Ok(Message::new(OP_GET).with_int(v))
        });
        t.register::<Counter>(OP_FAIL, |_c, _m| Err(KernError::Failure(99)));
        t
    }

    fn object_port() -> (ObjRef<Counter>, ObjRef<Port>) {
        let obj = Kobj::create(0u64);
        let port = Port::create();
        port.set_kernel_object(obj.clone().into_dyn());
        (obj, port)
    }

    #[test]
    fn rpc_roundtrip() {
        let t = table();
        let (obj, port) = object_port();
        let stats = RpcStats::new();
        let r = t
            .msg_rpc(
                &port,
                Message::new(OP_ADD).with_int(4),
                RefSemantics::Mach25,
                &stats,
            )
            .unwrap();
        assert_eq!(r.int_at(0), Some(4));
        let r = t
            .msg_rpc(&port, Message::new(OP_GET), RefSemantics::Mach25, &stats)
            .unwrap();
        assert_eq!(r.int_at(0), Some(4));
        assert!(stats.balanced());
        // Only the creator and the port hold references afterwards.
        assert_eq!(ObjRef::ref_count(&obj), 2);
    }

    #[test]
    fn semantics_disposition_counted() {
        let t = table();
        let (_obj, port) = object_port();
        let stats = RpcStats::new();
        t.msg_rpc(&port, Message::new(OP_GET), RefSemantics::Mach30, &stats)
            .unwrap();
        t.msg_rpc(&port, Message::new(OP_GET), RefSemantics::Mach25, &stats)
            .unwrap();
        let _ = t
            .msg_rpc(&port, Message::new(OP_FAIL), RefSemantics::Mach30, &stats)
            .unwrap_err();
        assert_eq!(stats.operation_consumes.load(Ordering::Relaxed), 1);
        assert_eq!(stats.interface_releases.load(Ordering::Relaxed), 2);
        assert_eq!(stats.failures.load(Ordering::Relaxed), 1);
        assert!(stats.balanced());
    }

    #[test]
    fn unknown_operation() {
        let t = table();
        let (_obj, port) = object_port();
        let stats = RpcStats::new();
        let e = t
            .msg_rpc(&port, Message::new(999), RefSemantics::Mach25, &stats)
            .unwrap_err();
        assert_eq!(e, RpcError::NoSuchOperation);
        assert!(stats.balanced());
    }

    #[test]
    fn wrong_type_routing_is_typed_error_not_panic() {
        // The lookup keys on the object's concrete type, so normal
        // dispatch can't misroute; drive the stub directly to prove the
        // defensive path reports instead of panicking.
        let t = table();
        let h = t
            .handlers
            .get(&(core::any::TypeId::of::<Counter>(), OP_GET))
            .unwrap();
        let other = Kobj::create(String::from("not a counter")).into_dyn();
        let e = h(&other, &Message::new(OP_GET)).unwrap_err();
        assert_eq!(e, RpcError::WrongObjectType);
        assert!(e.to_string().contains("wrong type"));
    }

    #[test]
    fn rpc_against_cleared_port_fails_at_translation() {
        let t = table();
        let (_obj, port) = object_port();
        let removed = port.clear_kernel_object().unwrap();
        drop(removed);
        let stats = RpcStats::new();
        let e = t
            .msg_rpc(&port, Message::new(OP_GET), RefSemantics::Mach25, &stats)
            .unwrap_err();
        assert_eq!(e, RpcError::Port(PortError::NotAnObjectPort));
        assert_eq!(stats.translations.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn rpc_against_deactivated_object_fails_cleanly() {
        let t = table();
        let (obj, port) = object_port();
        obj.deactivate().unwrap();
        let stats = RpcStats::new();
        let e = t
            .msg_rpc(&port, Message::new(OP_GET), RefSemantics::Mach25, &stats)
            .unwrap_err();
        assert_eq!(e, RpcError::Operation(KernError::Deactivated));
        assert!(stats.balanced());
    }

    #[test]
    fn object_survives_rpc_racing_with_release() {
        // The "operations in progress" guarantee: the translation
        // reference keeps the object alive even if every other holder
        // drops theirs mid-operation.
        let t = Arc::new(table());
        let (obj, port) = object_port();
        let stats = RpcStats::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let t = Arc::clone(&t);
                let port = port.clone();
                let stats = &stats;
                s.spawn(move || {
                    for _ in 0..500 {
                        let _ = t.msg_rpc(
                            &port,
                            Message::new(OP_ADD).with_int(1),
                            RefSemantics::Mach30,
                            stats,
                        );
                    }
                });
            }
            // Concurrently drop the creator reference.
            drop(obj);
        });
        assert!(stats.balanced());
        // The port still holds the object; RPC still works.
        let r = t
            .msg_rpc(&port, Message::new(OP_GET), RefSemantics::Mach25, &stats)
            .unwrap();
        assert_eq!(r.int_at(0), Some(2000));
    }
}
