//! Per-task port name spaces.
//!
//! User code names ports by small integers; the kernel translates names
//! to port rights through a per-task table. Translation is one of the
//! section-8 reference-cloning cases: "executing code performs a name to
//! object translation. This effectively clones the object reference held
//! by the name translation data structures."

use std::collections::HashMap;

use machk_core::{ObjRef, SimpleLocked};

use crate::port::Port;

/// A task-local port name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortName(pub u32);

/// The name → right table of one task.
///
/// In Mach this table is what the task's second lock (the "ipc
/// translation" lock of section 5) protects, so that translations and
/// task operations proceed in parallel; `machk-kernel`'s task object
/// embeds one `PortNameSpace` per task for exactly that experiment (E8).
pub struct PortNameSpace {
    table: SimpleLocked<Table>,
}

struct Table {
    map: HashMap<PortName, ObjRef<Port>>,
    next: u32,
}

impl PortNameSpace {
    /// An empty name space.
    pub fn new() -> PortNameSpace {
        PortNameSpace {
            table: SimpleLocked::new(Table {
                map: HashMap::new(),
                next: 1, // name 0 reserved as MACH_PORT_NULL
            }),
        }
    }

    /// Insert a right, allocating a fresh name. The table now owns the
    /// reference.
    pub fn insert(&self, right: ObjRef<Port>) -> PortName {
        let mut t = self.table.lock();
        let name = PortName(t.next);
        t.next += 1;
        t.map.insert(name, right);
        name
    }

    /// Translate a name to a port right.
    ///
    /// The returned right is a *cloned* reference; the table keeps its
    /// own. Returns `None` for names not in the space (including
    /// removed ones).
    pub fn translate(&self, name: PortName) -> Option<ObjRef<Port>> {
        let t = self.table.lock();
        t.map.get(&name).cloned()
    }

    /// Remove a name, returning the right it held so the caller can
    /// release it outside the table lock.
    pub fn remove(&self, name: PortName) -> Option<ObjRef<Port>> {
        let mut t = self.table.lock();
        t.map.remove(&name)
    }

    /// Number of live names (diagnostics).
    pub fn len(&self) -> usize {
        self.table.lock().map.len()
    }

    /// Whether the space is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Remove every right, returning them for release outside the lock
    /// (used by task termination).
    pub fn drain(&self) -> Vec<ObjRef<Port>> {
        let mut t = self.table.lock();
        let rights: Vec<_> = t.map.drain().map(|(_, r)| r).collect();
        rights
    }
}

impl Default for PortNameSpace {
    fn default() -> Self {
        Self::new()
    }
}

impl core::fmt::Debug for PortNameSpace {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("PortNameSpace")
            .field("names", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_allocates_distinct_names() {
        let ns = PortNameSpace::new();
        let a = ns.insert(Port::create());
        let b = ns.insert(Port::create());
        assert_ne!(a, b);
        assert_eq!(ns.len(), 2);
    }

    #[test]
    fn translate_clones_reference() {
        let ns = PortNameSpace::new();
        let port = Port::create();
        let name = ns.insert(port.clone());
        assert_eq!(ObjRef::ref_count(&port), 2, "table holds one");
        let right = ns.translate(name).expect("name resolves");
        assert_eq!(ObjRef::ref_count(&port), 3, "translation cloned");
        assert!(ObjRef::ptr_eq(&right, &port));
        drop(right);
        assert_eq!(ObjRef::ref_count(&port), 2);
    }

    #[test]
    fn translate_unknown_name_fails() {
        let ns = PortNameSpace::new();
        assert!(ns.translate(PortName(42)).is_none());
        assert!(ns.translate(PortName(0)).is_none(), "null name");
    }

    #[test]
    fn remove_returns_the_tables_reference() {
        let ns = PortNameSpace::new();
        let port = Port::create();
        let name = ns.insert(port.clone());
        let right = ns.remove(name).unwrap();
        assert_eq!(ObjRef::ref_count(&port), 2);
        drop(right);
        assert_eq!(ObjRef::ref_count(&port), 1);
        assert!(ns.translate(name).is_none(), "name gone after removal");
    }

    #[test]
    fn drain_empties_and_returns_rights() {
        let ns = PortNameSpace::new();
        let ports: Vec<_> = (0..4).map(|_| Port::create()).collect();
        for p in &ports {
            ns.insert(p.clone());
        }
        let rights = ns.drain();
        assert_eq!(rights.len(), 4);
        assert!(ns.is_empty());
        drop(rights);
        for p in &ports {
            assert_eq!(ObjRef::ref_count(p), 1);
        }
    }

    #[test]
    fn concurrent_translation_storm() {
        let ns = PortNameSpace::new();
        let port = Port::create();
        let name = ns.insert(port.clone());
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..2_000 {
                        let r = ns.translate(name).unwrap();
                        drop(r);
                    }
                });
            }
        });
        assert_eq!(ObjRef::ref_count(&port), 2, "all translations released");
    }
}
