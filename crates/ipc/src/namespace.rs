//! Per-task port name spaces.
//!
//! User code names ports by small integers; the kernel translates names
//! to port rights through a per-task table. Translation is one of the
//! section-8 reference-cloning cases: "executing code performs a name to
//! object translation. This effectively clones the object reference held
//! by the name translation data structures."
//!
//! ## Sharding (beyond the paper)
//!
//! E2 reproduced the paper's §2 result: funneling independent work
//! through one lock costs orders of magnitude under contention. The
//! name table is exactly such a funnel — every translation in a busy
//! task serializes on one simple lock — so this table applies the
//! paper's own data-locking prescription to itself: the name space is
//! hashed across [`PortNameSpace::shards`] independently locked shards.
//!
//! * A name's shard is `name % nshards`, so translation and removal
//!   touch exactly one shard lock.
//! * Allocation round-robins across shards and hands out names of the
//!   form `counter * nshards + shard`, so fresh names scatter evenly
//!   and a name is self-describing (no cross-shard lookup to find it).
//! * Each shard lock is *named* (`ipc.ns.shardNN`), so E16 lockstat
//!   attributes contention per shard rather than to one anonymous
//!   blob; the same names are registered lock classes for the
//!   machk-lint order graph.
//!
//! [`PortNameSpace::with_shards(1)`](PortNameSpace::with_shards) is the
//! single-lock layout — the E19 experiment benches the two against each
//! other.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use machk_core::{ObjRef, SimpleLocked};

use crate::port::Port;

/// A task-local port name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortName(pub u32);

/// Hard cap on shards per name space (the size of the static name
/// table below).
pub const MAX_SHARDS: usize = 64;

/// Default shard count for [`PortNameSpace::new`] — enough to spread
/// an 8-way translation storm with no shared line, cheap enough for
/// idle tasks.
pub const DEFAULT_SHARDS: usize = 8;

/// Registered lock-class names, one per shard index, so lockstat and
/// the static order graph see `ipc.ns.shard00`…`ipc.ns.shard63` rather
/// than one anonymous class. (Shard locks are leaves: no other lock is
/// ever taken while one is held.)
static SHARD_LOCK_NAMES: [&str; MAX_SHARDS] = [
    "ipc.ns.shard00",
    "ipc.ns.shard01",
    "ipc.ns.shard02",
    "ipc.ns.shard03",
    "ipc.ns.shard04",
    "ipc.ns.shard05",
    "ipc.ns.shard06",
    "ipc.ns.shard07",
    "ipc.ns.shard08",
    "ipc.ns.shard09",
    "ipc.ns.shard10",
    "ipc.ns.shard11",
    "ipc.ns.shard12",
    "ipc.ns.shard13",
    "ipc.ns.shard14",
    "ipc.ns.shard15",
    "ipc.ns.shard16",
    "ipc.ns.shard17",
    "ipc.ns.shard18",
    "ipc.ns.shard19",
    "ipc.ns.shard20",
    "ipc.ns.shard21",
    "ipc.ns.shard22",
    "ipc.ns.shard23",
    "ipc.ns.shard24",
    "ipc.ns.shard25",
    "ipc.ns.shard26",
    "ipc.ns.shard27",
    "ipc.ns.shard28",
    "ipc.ns.shard29",
    "ipc.ns.shard30",
    "ipc.ns.shard31",
    "ipc.ns.shard32",
    "ipc.ns.shard33",
    "ipc.ns.shard34",
    "ipc.ns.shard35",
    "ipc.ns.shard36",
    "ipc.ns.shard37",
    "ipc.ns.shard38",
    "ipc.ns.shard39",
    "ipc.ns.shard40",
    "ipc.ns.shard41",
    "ipc.ns.shard42",
    "ipc.ns.shard43",
    "ipc.ns.shard44",
    "ipc.ns.shard45",
    "ipc.ns.shard46",
    "ipc.ns.shard47",
    "ipc.ns.shard48",
    "ipc.ns.shard49",
    "ipc.ns.shard50",
    "ipc.ns.shard51",
    "ipc.ns.shard52",
    "ipc.ns.shard53",
    "ipc.ns.shard54",
    "ipc.ns.shard55",
    "ipc.ns.shard56",
    "ipc.ns.shard57",
    "ipc.ns.shard58",
    "ipc.ns.shard59",
    "ipc.ns.shard60",
    "ipc.ns.shard61",
    "ipc.ns.shard62",
    "ipc.ns.shard63",
];

struct Table {
    map: HashMap<PortName, ObjRef<Port>>,
    /// Per-shard allocation counter; shard `i` of `n` hands out names
    /// `counter * n + i` (counter ≥ 1, so name 0 — MACH_PORT_NULL —
    /// is never allocated).
    next: u32,
}

struct Shard {
    table: SimpleLocked<Table>,
}

/// The name → right table of one task.
///
/// In Mach this table is what the task's second lock (the "ipc
/// translation" lock of section 5) protects, so that translations and
/// task operations proceed in parallel; `machk-kernel`'s task object
/// embeds one `PortNameSpace` per task for exactly that experiment (E8).
/// See the module docs for the sharded layout.
pub struct PortNameSpace {
    shards: Box<[Shard]>,
    /// Round-robin allocation cursor (advisory; any distribution is
    /// correct, even spreading is just better).
    cursor: AtomicUsize,
    /// Modeled per-operation critical-section cost in virtual
    /// nanoseconds, charged to the `machk-sim` clock *while the shard
    /// lock is held*. Zero (the default, and always on a real OS host)
    /// adds nothing to the hot path; see
    /// [`PortNameSpace::with_shards_modeled`].
    cs_work_ns: u64,
}

impl PortNameSpace {
    /// An empty name space with [`DEFAULT_SHARDS`] shards.
    pub fn new() -> PortNameSpace {
        PortNameSpace::with_shards(DEFAULT_SHARDS)
    }

    /// An empty name space hashed across `nshards` (1 ..= [`MAX_SHARDS`])
    /// independently locked shards. One shard is the single-lock layout.
    pub fn with_shards(nshards: usize) -> PortNameSpace {
        PortNameSpace::with_shards_modeled(nshards, 0)
    }

    /// [`PortNameSpace::with_shards`] plus a modeled critical-section
    /// cost: every insert/translate/remove charges `cs_work_ns` virtual
    /// nanoseconds to the simulated host's clock *while holding the
    /// shard lock*. Under `machk-sim` this makes the table's serialized
    /// work visible to the virtual clock (the E19 sharded-vs-single
    /// comparison); on a real OS host the charge is a no-op.
    pub fn with_shards_modeled(nshards: usize, cs_work_ns: u64) -> PortNameSpace {
        assert!(
            (1..=MAX_SHARDS).contains(&nshards),
            "shard count must be in 1..={MAX_SHARDS}"
        );
        let shards: Vec<Shard> = (0..nshards)
            .map(|i| Shard {
                table: SimpleLocked::named(
                    SHARD_LOCK_NAMES[i],
                    Table {
                        map: HashMap::new(),
                        next: 1,
                    },
                ),
            })
            .collect();
        PortNameSpace {
            shards: shards.into_boxed_slice(),
            cursor: AtomicUsize::new(0),
            cs_work_ns,
        }
    }

    /// Charge the modeled critical-section cost (caller holds a shard
    /// lock). Free when unmodeled: no host lookup at all.
    #[inline]
    fn charge_cs(&self) {
        if self.cs_work_ns > 0 {
            machk_core::sync::host::advance(self.cs_work_ns);
        }
    }

    /// Number of shards in this space.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard a name lives in.
    fn shard_of(&self, name: PortName) -> &Shard {
        &self.shards[name.0 as usize % self.shards.len()]
    }

    /// Insert a right, allocating a fresh name. The table now owns the
    /// reference.
    pub fn insert(&self, right: ObjRef<Port>) -> PortName {
        let n = self.shards.len();
        // relaxed: the cursor only balances allocation across shards;
        // any interleaving of increments yields correct (unique) names.
        let i = self.cursor.fetch_add(1, Ordering::Relaxed) % n;
        let mut t = self.shards[i].table.lock();
        self.charge_cs();
        // Checked: after ~2^32/n allocations on one shard the name
        // space is genuinely exhausted — fail loudly rather than wrap
        // in release and mint duplicate names over live rights.
        let name = PortName(
            t.next
                .checked_mul(n as u32)
                .and_then(|v| v.checked_add(i as u32))
                .expect("port name space exhausted on this shard"),
        );
        t.next = t
            .next
            .checked_add(1)
            .expect("port name space exhausted on this shard");
        t.map.insert(name, right);
        name
    }

    /// Translate a name to a port right.
    ///
    /// The returned right is a *cloned* reference; the table keeps its
    /// own. Returns `None` for names not in the space (including
    /// removed ones). Touches exactly one shard lock.
    pub fn translate(&self, name: PortName) -> Option<ObjRef<Port>> {
        let t = self.shard_of(name).table.lock();
        self.charge_cs();
        t.map.get(&name).cloned()
    }

    /// Remove a name, returning the right it held so the caller can
    /// release it outside the table lock.
    pub fn remove(&self, name: PortName) -> Option<ObjRef<Port>> {
        let mut t = self.shard_of(name).table.lock();
        self.charge_cs();
        t.map.remove(&name)
    }

    /// Number of live names (diagnostics; locks shards one at a time,
    /// so the sum is a snapshot only if writers are quiesced).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.table.lock().map.len())
            .sum()
    }

    /// Whether the space is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Remove every right, returning them for release outside the lock
    /// (used by task termination). Shards are drained one at a time —
    /// no two shard locks are ever held together.
    pub fn drain(&self) -> Vec<ObjRef<Port>> {
        let mut rights = Vec::new();
        for s in self.shards.iter() {
            let mut t = s.table.lock();
            rights.extend(t.map.drain().map(|(_, r)| r));
        }
        rights
    }
}

impl Default for PortNameSpace {
    fn default() -> Self {
        Self::new()
    }
}

impl core::fmt::Debug for PortNameSpace {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("PortNameSpace")
            .field("names", &self.len())
            .field("shards", &self.shards.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_allocates_distinct_names() {
        let ns = PortNameSpace::new();
        let a = ns.insert(Port::create());
        let b = ns.insert(Port::create());
        assert_ne!(a, b);
        assert_eq!(ns.len(), 2);
    }

    #[test]
    fn names_unique_across_every_shard_count() {
        for nshards in [1, 2, 3, 8, 64] {
            let ns = PortNameSpace::with_shards(nshards);
            let mut seen = std::collections::HashSet::new();
            for _ in 0..200 {
                let name = ns.insert(Port::create());
                assert_ne!(name.0, 0, "MACH_PORT_NULL never allocated");
                assert!(seen.insert(name), "duplicate name at {nshards} shards");
            }
            for name in &seen {
                assert!(ns.translate(*name).is_some());
            }
        }
    }

    #[test]
    #[should_panic(expected = "name space exhausted")]
    fn name_exhaustion_panics_instead_of_wrapping() {
        let ns = PortNameSpace::with_shards(2);
        for s in ns.shards.iter() {
            s.table.lock().next = u32::MAX;
        }
        let _ = ns.insert(Port::create());
    }

    #[test]
    fn translate_clones_reference() {
        let ns = PortNameSpace::new();
        let port = Port::create();
        let name = ns.insert(port.clone());
        assert_eq!(ObjRef::ref_count(&port), 2, "table holds one");
        let right = ns.translate(name).expect("name resolves");
        assert_eq!(ObjRef::ref_count(&port), 3, "translation cloned");
        assert!(ObjRef::ptr_eq(&right, &port));
        drop(right);
        assert_eq!(ObjRef::ref_count(&port), 2);
    }

    #[test]
    fn translate_unknown_name_fails() {
        let ns = PortNameSpace::new();
        assert!(ns.translate(PortName(42)).is_none());
        assert!(ns.translate(PortName(0)).is_none(), "null name");
    }

    #[test]
    fn remove_returns_the_tables_reference() {
        let ns = PortNameSpace::new();
        let port = Port::create();
        let name = ns.insert(port.clone());
        let right = ns.remove(name).unwrap();
        assert_eq!(ObjRef::ref_count(&port), 2);
        drop(right);
        assert_eq!(ObjRef::ref_count(&port), 1);
        assert!(ns.translate(name).is_none(), "name gone after removal");
    }

    #[test]
    fn drain_empties_and_returns_rights() {
        let ns = PortNameSpace::new();
        let ports: Vec<_> = (0..4).map(|_| Port::create()).collect();
        for p in &ports {
            ns.insert(p.clone());
        }
        let rights = ns.drain();
        assert_eq!(rights.len(), 4);
        assert!(ns.is_empty());
        drop(rights);
        for p in &ports {
            assert_eq!(ObjRef::ref_count(p), 1);
        }
    }

    #[test]
    fn concurrent_translation_storm() {
        let ns = PortNameSpace::new();
        let port = Port::create();
        let name = ns.insert(port.clone());
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..2_000 {
                        let r = ns.translate(name).unwrap();
                        drop(r);
                    }
                });
            }
        });
        assert_eq!(ObjRef::ref_count(&port), 2, "all translations released");
    }
}
