//! Typed messages.
//!
//! "A message is a typed collection of data objects" (section 3). The
//! interesting element type for this reproduction is the **port right**:
//! a message element that carries an [`ObjRef<Port>`], so moving a
//! message moves a reference — exactly how Mach messages carry rights.

use machk_core::ObjRef;

use crate::port::Port;

/// One typed element of a message body.
#[derive(Debug)]
pub enum MsgElement {
    /// A machine integer.
    Int(u64),
    /// An inline byte string.
    Bytes(Vec<u8>),
    /// An out-of-line data region (Mach would map it copy-on-write; the
    /// simulation carries it as an owned buffer distinct from inline
    /// data so the element kinds round-trip).
    OutOfLine(Vec<u8>),
    /// A port right. Holding the message holds the reference.
    PortRight(ObjRef<Port>),
}

/// A message: an id naming the operation (MiG's `msgh_id`) plus the
/// typed body.
///
/// # Examples
///
/// ```
/// use machk_ipc::Message;
///
/// let msg = Message::new(100).with_int(42).with_bytes(b"hello".to_vec());
/// assert_eq!(msg.id(), 100);
/// assert_eq!(msg.int_at(0), Some(42));
/// assert_eq!(msg.bytes_at(1), Some(&b"hello"[..]));
/// ```
#[derive(Debug, Default)]
pub struct Message {
    id: u32,
    body: Vec<MsgElement>,
}

impl Message {
    /// An empty message with operation id `id`.
    pub fn new(id: u32) -> Message {
        Message {
            id,
            body: Vec::new(),
        }
    }

    /// The operation id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Number of body elements.
    pub fn len(&self) -> usize {
        self.body.len()
    }

    /// Whether the body is empty.
    pub fn is_empty(&self) -> bool {
        self.body.is_empty()
    }

    /// Append an integer element (builder style).
    pub fn with_int(mut self, v: u64) -> Message {
        self.body.push(MsgElement::Int(v));
        self
    }

    /// Append an inline byte-string element (builder style).
    pub fn with_bytes(mut self, v: Vec<u8>) -> Message {
        self.body.push(MsgElement::Bytes(v));
        self
    }

    /// Append an out-of-line region (builder style).
    pub fn with_ool(mut self, v: Vec<u8>) -> Message {
        self.body.push(MsgElement::OutOfLine(v));
        self
    }

    /// Append a port right (builder style). The message now owns the
    /// reference.
    pub fn with_port_right(mut self, right: ObjRef<Port>) -> Message {
        self.body.push(MsgElement::PortRight(right));
        self
    }

    /// Push any element.
    pub fn push(&mut self, el: MsgElement) {
        self.body.push(el);
    }

    /// The element at `i`.
    pub fn element(&self, i: usize) -> Option<&MsgElement> {
        self.body.get(i)
    }

    /// The integer at body index `i`, if that element is an integer.
    pub fn int_at(&self, i: usize) -> Option<u64> {
        match self.body.get(i) {
            Some(MsgElement::Int(v)) => Some(*v),
            _ => None,
        }
    }

    /// The byte string at body index `i` (inline or out-of-line).
    pub fn bytes_at(&self, i: usize) -> Option<&[u8]> {
        match self.body.get(i) {
            Some(MsgElement::Bytes(v)) | Some(MsgElement::OutOfLine(v)) => Some(v),
            _ => None,
        }
    }

    /// Borrow the port right at body index `i`.
    pub fn port_right_at(&self, i: usize) -> Option<&ObjRef<Port>> {
        match self.body.get(i) {
            Some(MsgElement::PortRight(p)) => Some(p),
            _ => None,
        }
    }

    /// Remove and return the port right at body index `i`, transferring
    /// the reference to the caller (receiving a right).
    pub fn take_port_right(&mut self, i: usize) -> Option<ObjRef<Port>> {
        match self.body.get(i) {
            Some(MsgElement::PortRight(_)) => match self.body.remove(i) {
                MsgElement::PortRight(p) => Some(p),
                _ => unreachable!(),
            },
            _ => None,
        }
    }

    /// Total payload bytes (diagnostics / benchmarks).
    pub fn payload_bytes(&self) -> usize {
        self.body
            .iter()
            .map(|e| match e {
                MsgElement::Int(_) => 8,
                MsgElement::Bytes(v) | MsgElement::OutOfLine(v) => v.len(),
                MsgElement::PortRight(_) => core::mem::size_of::<usize>(),
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::port::Port;

    #[test]
    fn builder_and_accessors() {
        let m = Message::new(7)
            .with_int(1)
            .with_bytes(vec![2, 3])
            .with_ool(vec![4; 100]);
        assert_eq!(m.id(), 7);
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
        assert_eq!(m.int_at(0), Some(1));
        assert_eq!(m.bytes_at(1), Some(&[2u8, 3][..]));
        assert_eq!(m.bytes_at(2).unwrap().len(), 100);
        assert_eq!(m.int_at(1), None, "type-checked access");
        assert_eq!(m.payload_bytes(), 8 + 2 + 100);
    }

    #[test]
    fn port_right_carries_reference() {
        let port = Port::create();
        assert_eq!(ObjRef::ref_count(&port), 1);
        let m = Message::new(1).with_port_right(port.clone());
        assert_eq!(ObjRef::ref_count(&port), 2, "message holds a reference");
        drop(m);
        assert_eq!(
            ObjRef::ref_count(&port),
            1,
            "dropping the message releases it"
        );
    }

    #[test]
    fn take_port_right_transfers_reference() {
        let port = Port::create();
        let mut m = Message::new(1).with_int(9).with_port_right(port.clone());
        let right = m.take_port_right(1).unwrap();
        assert!(ObjRef::ptr_eq(&right, &port));
        assert_eq!(m.len(), 1, "right removed from body");
        assert_eq!(ObjRef::ref_count(&port), 2, "caller now owns it");
        drop(right);
        assert_eq!(ObjRef::ref_count(&port), 1);
    }

    #[test]
    fn take_wrong_kind_is_none() {
        let mut m = Message::new(1).with_int(9);
        assert!(m.take_port_right(0).is_none());
        assert_eq!(m.len(), 1);
    }
}
