//! The async IPC engine: a thread-per-core RPC dispatch loop.
//!
//! This is the production-shaped server core the ROADMAP's north star
//! asks for, assembled entirely from this crate's own pieces:
//!
//! * the **sharded** [`PortNameSpace`] (E2's data-locking prescription
//!   applied to the name table),
//! * **lock-free message rings** inside every [`Port`] with batched
//!   dequeue ([`Port::receive_batch`]),
//! * the §10 five-step kernel RPC protocol ([`DispatchTable::msg_rpc`])
//!   with its [`RpcStats`] reference ledger,
//! * a [`ShardedRefCount`] object ledger audited by
//!   `drain_audit` at the end of every storm.
//!
//! [`Engine::run`] spawns one worker per configured core (via
//! [`machk_core::sync::host::spawn`], so the whole storm runs — and
//! replays byte-for-byte — under `machk-sim`) and drives a seeded mixed
//! workload through the kernel-RPC protocol:
//!
//! * **ping** — name → port translation, then an `OP_PING` RPC against
//!   the port's kernel object (the hot path; every reply feeds the
//!   worker's digest);
//! * **task create** — an `OP_TASK_CREATE` RPC whose handler creates a
//!   task object, wraps it in a port, and publishes it in the
//!   namespace (taking an object-ledger reference);
//! * **task terminate / dead-port churn** — an `OP_TASK_TERMINATE` RPC
//!   whose handler unpublishes the name, disables translation, and
//!   destroys the port; the worker then fires one more RPC at the dead
//!   port and *must* observe the typed dead-port error;
//! * **port transfer** — a translated right is moved through a shared
//!   transfer port (`try_send` into its lock-free ring); every
//!   [`EngineConfig::drain_every`] operations the worker batch-drains
//!   the transfer ring, releasing the rights in bulk.
//!
//! Nothing in the loop blocks, so a storm cannot deadlock and — under
//! the simulated host — always terminates within its configured op
//! budget. Determinism: each worker's operation stream is a pure
//! function of `(seed, worker index)`; under `machk-sim` the scheduler
//! interleaving is also seeded, so [`EngineReport::digest`] is
//! byte-identical across replays of the same `(seed, cores)` — the E19
//! determinism probe. (On a real OS host the interleaving is the OS's,
//! so only per-worker streams, the counters' sums, and the ledgers are
//! reproducible; the digest is then just a checksum.)

use std::sync::Arc;

use machk_core::sync::host;
use machk_core::{Kobj, ObjRef, ShardedRefCount};

use crate::message::Message;
use crate::namespace::{PortName, PortNameSpace};
use crate::port::{Port, PortError};
use crate::rpc::{DispatchTable, KernError, RefSemantics, RpcError, RpcStats};

/// Echo RPC against a task object: the engine's hot path.
pub const OP_PING: u32 = 0x1901;
/// Create a task object, publish its port in the namespace.
pub const OP_TASK_CREATE: u32 = 0x1902;
/// Unpublish + destroy a task port (the dead-port churn source).
pub const OP_TASK_TERMINATE: u32 = 0x1903;

/// A task object served by the engine (the represented kernel object
/// of §10). Deliberately stateless: `OP_PING` takes no object lock, so
/// pings contend only on the shard locks and the port rings — which is
/// the point of the measurement.
struct EngineTask;
type Task = Kobj<EngineTask>;

/// The engine's control object: `OP_TASK_CREATE`/`OP_TASK_TERMINATE`
/// are RPCs against this server's port. Handlers capture the shared
/// namespace and ledger; the server object itself stays lock-free.
struct EngineServer;
type Server = Kobj<EngineServer>;

/// Storm shape. All fields are plain data so a config embeds in
/// experiment JSON and replays exactly.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads (the "cores" of thread-per-core).
    pub workers: usize,
    /// Operations per worker (ops are mixed per `percent_*` below).
    pub ops_per_worker: usize,
    /// Namespace shards ([`PortNameSpace::with_shards`]); 1 = the
    /// single-lock baseline.
    pub shards: usize,
    /// Pre-published stable ping targets.
    pub stable_ports: usize,
    /// Ring limit of the shared transfer port.
    pub transfer_limit: usize,
    /// Batch-drain the transfer ring every this many operations.
    pub drain_every: usize,
    /// Workload seed; worker `w` streams from `mix(seed, w)`.
    pub seed: u64,
    /// Reference-disposition convention for every RPC.
    pub semantics: RefSemantics,
    /// Modeled per-namespace-op critical-section cost (virtual ns,
    /// `machk-sim` only; see [`PortNameSpace::with_shards_modeled`]).
    pub ns_cs_work_ns: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 4,
            ops_per_worker: 10_000,
            shards: crate::namespace::DEFAULT_SHARDS,
            stable_ports: 64,
            transfer_limit: 256,
            drain_every: 32,
            seed: 0x1991_0715,
            semantics: RefSemantics::Mach30,
            ns_cs_work_ns: 0,
        }
    }
}

/// What a storm did. Counter sums and both ledgers are reproducible on
/// any host; `digest` is additionally byte-stable under `machk-sim`
/// replay (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineReport {
    /// RPCs dispatched through [`DispatchTable::msg_rpc`]
    /// (pings + creates + terminates + dead-port probes).
    pub rpcs: u64,
    /// `OP_PING` round-trips.
    pub pings: u64,
    /// Tasks created (and published).
    pub creates: u64,
    /// Tasks terminated (and unpublished).
    pub terminates: u64,
    /// RPCs deliberately fired at dead/unpublished ports that came back
    /// with the expected typed error.
    pub dead_hits: u64,
    /// Rights moved through the transfer ring.
    pub transfers: u64,
    /// Transfer sends refused by a full ring (right released locally).
    pub transfer_full: u64,
    /// Messages batch-drained from the transfer ring.
    pub drained: u64,
    /// Wall/virtual time of the storm, from [`host::now`].
    pub elapsed_ns: u64,
    /// Order-insensitive checksum over every reply payload.
    pub digest: u64,
    /// `RpcStats` translation ledger balanced at quiescence.
    pub rpc_balanced: bool,
    /// Object-ledger audit result (must be 1: only the creation
    /// reference outlives the storm).
    pub ledger_total: u64,
}

impl EngineReport {
    /// RPC throughput in ops/sec (virtual ops/sec under sim).
    pub fn rpcs_per_sec(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        self.rpcs as f64 * 1e9 / self.elapsed_ns as f64
    }

    /// Fold the whole report into one word — the replay fingerprint the
    /// E19 determinism probe compares byte-for-byte.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        for v in [
            self.rpcs,
            self.pings,
            self.creates,
            self.terminates,
            self.dead_hits,
            self.transfers,
            self.transfer_full,
            self.drained,
            self.digest,
            self.ledger_total,
            u64::from(self.rpc_balanced),
        ] {
            h = (h ^ v).wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

/// SplitMix64: the workload's per-worker decision stream. Tiny, seeded,
/// and dependency-free (the engine must not pull in the fault crate).
struct Mix(u64);

impl Mix {
    fn new(seed: u64, worker: usize) -> Mix {
        // Decorrelate workers: golden-ratio offset per worker index.
        Mix(seed ^ (worker as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Per-worker tallies, merged order-insensitively at join.
#[derive(Default)]
struct WorkerTally {
    rpcs: u64,
    pings: u64,
    creates: u64,
    terminates: u64,
    dead_hits: u64,
    transfers: u64,
    transfer_full: u64,
    drained: u64,
    digest: u64,
}

/// Trace one completed dispatch-loop batch (`obs` feature): the
/// `EngineBatch` event under the shared `ipc.engine.loop` name, `arg`
/// = operations dispatched since the previous drain point. Workers are
/// distinguished downstream by the per-thread tag every event carries.
#[cfg(feature = "obs")]
#[inline]
fn obs_engine_batch(ops: u64) {
    static TAG: machk_obs::LockTag = machk_obs::LockTag::new();
    let id = TAG.ensure("ipc.engine.loop", machk_obs::LockClass::Other, "engine");
    machk_obs::emit(machk_obs::EventKind::EngineBatch, id, ops);
}

#[cfg(not(feature = "obs"))]
#[inline]
fn obs_engine_batch(_ops: u64) {}

/// The engine: shared state plus the dispatch table. Build one with
/// [`Engine::new`], fire storms with [`Engine::run`].
///
/// # Examples
///
/// ```
/// use machk_ipc::engine::{Engine, EngineConfig};
///
/// let report = Engine::new(EngineConfig {
///     workers: 2,
///     ops_per_worker: 2_000,
///     ..EngineConfig::default()
/// })
/// .run();
/// assert!(report.rpc_balanced);
/// assert_eq!(report.ledger_total, 1, "object ledger balanced");
/// assert!(report.dead_hits > 0, "dead-port churn exercised");
/// ```
pub struct Engine {
    cfg: EngineConfig,
    ns: Arc<PortNameSpace>,
    table: Arc<DispatchTable>,
    stats: Arc<RpcStats>,
    ledger: Arc<ShardedRefCount>,
    server_port: ObjRef<Port>,
    transfer: ObjRef<Port>,
    stable: Arc<Vec<PortName>>,
}

impl Engine {
    /// Build the engine: publish the stable ping targets, the server
    /// port, and the transfer port; register the three operations.
    // lint: ref-transfer — each ledger take is owned by a live engine
    // object; terminate ops release them and `run`'s teardown audits
    // the ledger drained to zero (`drain_audit`).
    pub fn new(cfg: EngineConfig) -> Engine {
        assert!(cfg.workers >= 1, "at least one worker");
        assert!(cfg.stable_ports >= 1, "at least one ping target");
        assert!(cfg.drain_every >= 1, "drain_every must be at least 1");
        let ns = Arc::new(PortNameSpace::with_shards_modeled(
            cfg.shards,
            cfg.ns_cs_work_ns,
        ));
        // The object ledger: one reference per live engine-created
        // object (stable tasks + churn tasks), audited at storm end.
        let ledger = Arc::new(ShardedRefCount::named("ipc.engine.ledger"));

        let stable: Vec<PortName> = (0..cfg.stable_ports)
            .map(|_| {
                let task = Kobj::create(EngineTask);
                let port = Port::create();
                port.set_kernel_object(task.into_dyn());
                ledger.take();
                ns.insert(port)
            })
            .collect();

        let server = Kobj::create(EngineServer);
        let server_port = Port::create();
        server_port.set_kernel_object(server.into_dyn());
        let transfer = Port::create_with_limit(cfg.transfer_limit.max(1));

        let mut table = DispatchTable::new();
        table.register::<Task>(OP_PING, |task, msg| {
            let nonce = msg.int_at(0).ok_or(KernError::InvalidArgument)?;
            // Stateless echo: no object lock on the hot path (see the
            // EngineTask docs) and no schedule-dependent inputs, so the
            // reply is a pure function of the request.
            if !task.is_active() {
                return Err(KernError::Deactivated);
            }
            Ok(Message::new(OP_PING).with_int(nonce ^ 0xABCD))
        });
        {
            let ns = Arc::clone(&ns);
            let ledger = Arc::clone(&ledger);
            table.register::<Server>(OP_TASK_CREATE, move |_srv, msg| {
                // The id is workload payload: validated, then unused by
                // the stateless task (see EngineTask).
                msg.int_at(0).ok_or(KernError::InvalidArgument)?;
                let task = Kobj::create(EngineTask);
                let port = Port::create();
                port.set_kernel_object(task.into_dyn());
                ledger.take();
                let name = ns.insert(port);
                Ok(Message::new(OP_TASK_CREATE).with_int(u64::from(name.0)))
            });
        }
        {
            let ns = Arc::clone(&ns);
            let ledger = Arc::clone(&ledger);
            table.register::<Server>(OP_TASK_TERMINATE, move |_srv, msg| {
                let raw = msg.int_at(0).ok_or(KernError::InvalidArgument)?;
                let name = PortName(u32::try_from(raw).map_err(|_| KernError::InvalidArgument)?);
                let port = ns.remove(name).ok_or(KernError::NotFound)?;
                // Shutdown order of §10: disable translation first, then
                // kill the port; release the removed pieces outside any
                // shard lock (we already are outside it).
                let obj = port.clear_kernel_object();
                let _ = port.destroy();
                drop(obj);
                drop(port);
                let final_release = ledger.release();
                debug_assert!(!final_release, "creation reference outlives the storm");
                Ok(Message::new(OP_TASK_TERMINATE).with_int(raw))
            });
        }

        Engine {
            cfg,
            ns,
            table: Arc::new(table),
            stats: Arc::new(RpcStats::new()),
            ledger,
            server_port,
            transfer,
            stable: Arc::new(stable),
        }
    }

    /// The namespace the storm publishes into (diagnostics and tests).
    pub fn namespace(&self) -> &PortNameSpace {
        &self.ns
    }

    /// One worker's storm: the seeded op mix described in the module
    /// docs. Returns its tally for order-insensitive merging.
    #[allow(clippy::too_many_arguments)]
    fn worker(
        index: usize,
        cfg: &EngineConfig,
        ns: &PortNameSpace,
        table: &DispatchTable,
        stats: &RpcStats,
        server_port: &ObjRef<Port>,
        transfer: &ObjRef<Port>,
        stable: &[PortName],
    ) -> WorkerTally {
        let mut mix = Mix::new(cfg.seed, index);
        let mut t = WorkerTally::default();
        // Names this worker created and has not yet terminated.
        let mut churn: Vec<PortName> = Vec::new();
        let mut batch: Vec<Message> = Vec::with_capacity(cfg.drain_every);

        for op in 0..cfg.ops_per_worker {
            let roll = mix.next() % 100;
            if roll < 70 {
                // Ping: translate a stable name, RPC against its task.
                let name = stable[(mix.next() as usize) % stable.len()];
                let port = ns.translate(name).expect("stable names stay published");
                let nonce = mix.next();
                let reply = table
                    .msg_rpc(
                        &port,
                        Message::new(OP_PING).with_int(nonce),
                        cfg.semantics,
                        stats,
                    )
                    .expect("ping against a live task");
                t.rpcs += 1;
                t.pings += 1;
                t.digest = t
                    .digest
                    .wrapping_add(reply.int_at(0).unwrap_or(0) ^ nonce.rotate_left(17));
            } else if roll < 80 {
                // Task create through the server RPC.
                let id = mix.next();
                let reply = table
                    .msg_rpc(
                        server_port,
                        Message::new(OP_TASK_CREATE).with_int(id),
                        cfg.semantics,
                        stats,
                    )
                    .expect("create against the live server");
                t.rpcs += 1;
                t.creates += 1;
                let name = PortName(reply.int_at(0).expect("create returns the name") as u32);
                t.digest = t.digest.wrapping_add(u64::from(name.0).rotate_left(29));
                churn.push(name);
            } else if roll < 90 {
                // Terminate one of ours, then probe the dead name/port.
                if let Some(name) = churn.pop() {
                    // Keep a right across termination so the dead-port
                    // probe targets the *destroyed port*, not a recycled
                    // name.
                    let doomed = ns.translate(name).expect("our churn name is published");
                    table
                        .msg_rpc(
                            server_port,
                            Message::new(OP_TASK_TERMINATE).with_int(u64::from(name.0)),
                            cfg.semantics,
                            stats,
                        )
                        .expect("terminate our own task");
                    t.rpcs += 1;
                    t.terminates += 1;
                    // Dead-port churn: the engine must observe the typed
                    // §10 failure, never a stale translation.
                    let err = table
                        .msg_rpc(
                            &doomed,
                            Message::new(OP_PING).with_int(1),
                            cfg.semantics,
                            stats,
                        )
                        .expect_err("RPC at a destroyed port must fail");
                    t.rpcs += 1;
                    match err {
                        RpcError::Port(PortError::NotAnObjectPort)
                        | RpcError::Port(PortError::Dead)
                        | RpcError::Operation(KernError::Deactivated) => t.dead_hits += 1,
                        other => panic!("unexpected dead-port error: {other:?}"),
                    }
                    assert!(
                        ns.translate(name).is_none(),
                        "terminated name must not resolve"
                    );
                    t.digest = t.digest.wrapping_add(u64::from(name.0).rotate_left(43));
                }
            } else {
                // Port transfer: move a translated right through the
                // shared ring (lock-free MPSC path under concurrency).
                let name = stable[(mix.next() as usize) % stable.len()];
                if let Some(right) = ns.translate(name) {
                    match transfer.try_send(Message::new(0).with_port_right(right)) {
                        Ok(()) => t.transfers += 1,
                        // Full ring: right released with the returned
                        // message. (The transfer port is never destroyed
                        // mid-storm, so the None case cannot occur here.)
                        Err((_msg, _full)) => t.transfer_full += 1,
                    }
                }
            }

            if op % cfg.drain_every == cfg.drain_every - 1 {
                batch.clear();
                if let Ok(n) = transfer.receive_batch(&mut batch, cfg.drain_every) {
                    t.drained += n as u64;
                }
                batch.clear(); // rights released in bulk
                obs_engine_batch(cfg.drain_every as u64);
            }
        }

        // Quiesce: terminate every task this worker still owns so the
        // object ledger can balance.
        for name in churn {
            table
                .msg_rpc(
                    server_port,
                    Message::new(OP_TASK_TERMINATE).with_int(u64::from(name.0)),
                    cfg.semantics,
                    stats,
                )
                .expect("final terminate");
            t.rpcs += 1;
            t.terminates += 1;
        }
        t
    }

    /// Run one storm: spawn the workers, join them, drain the transfer
    /// ring, tear down the stable ports, audit both ledgers.
    ///
    /// Consumes the engine: a storm ends with the namespace drained and
    /// every engine object released, so the ledgers can be audited —
    /// build a fresh engine per storm.
    pub fn run(self) -> EngineReport {
        let start = host::now();
        let workers = self.cfg.workers;
        let mut tallies: Vec<WorkerTally> = Vec::with_capacity(workers);

        if workers == 1 {
            // Run inline: keeps single-worker storms usable from any
            // context (no spawn permission needed under exotic hosts).
            tallies.push(Self::worker(
                0,
                &self.cfg,
                &self.ns,
                &self.table,
                &self.stats,
                &self.server_port,
                &self.transfer,
                &self.stable,
            ));
        } else {
            let results: Vec<_> = (0..workers)
                .map(|w| {
                    let cfg = self.cfg.clone();
                    let ns = Arc::clone(&self.ns);
                    let table = Arc::clone(&self.table);
                    let stats = Arc::clone(&self.stats);
                    let server_port = self.server_port.clone();
                    let transfer = self.transfer.clone();
                    let stable = Arc::clone(&self.stable);
                    let slot = Arc::new(std::sync::Mutex::new(None));
                    let out = Arc::clone(&slot);
                    let token = host::spawn(move || {
                        let tally = Self::worker(
                            w,
                            &cfg,
                            &ns,
                            &table,
                            &stats,
                            &server_port,
                            &transfer,
                            &stable,
                        );
                        *out.lock().unwrap() = Some(tally);
                    });
                    (token, slot)
                })
                .collect();
            for (token, slot) in results {
                host::join(token);
                tallies.push(
                    slot.lock()
                        .unwrap()
                        .take()
                        .expect("joined worker left its tally"),
                );
            }
        }

        // Quiesce the transfer ring: release every in-flight right.
        let mut drained_tail = 0u64;
        let mut batch = Vec::new();
        while let Ok(n) = self.transfer.receive_batch(&mut batch, 64) {
            if n == 0 {
                break;
            }
            drained_tail += n as u64;
            batch.clear();
        }

        // Tear down the stable targets through the same terminate path.
        let mut rpcs_teardown = 0u64;
        for name in self.stable.iter() {
            self.table
                .msg_rpc(
                    &self.server_port,
                    Message::new(OP_TASK_TERMINATE).with_int(u64::from(name.0)),
                    self.cfg.semantics,
                    &self.stats,
                )
                .expect("stable teardown");
            rpcs_teardown += 1;
        }
        let elapsed_ns = host::now().saturating_sub(start);

        debug_assert!(self.ns.is_empty(), "storm must drain the namespace");
        let audit = self.ledger.drain_audit();

        let mut report = EngineReport {
            rpcs: rpcs_teardown,
            pings: 0,
            creates: 0,
            terminates: 0,
            dead_hits: 0,
            transfers: 0,
            transfer_full: 0,
            drained: drained_tail,
            elapsed_ns,
            digest: 0,
            rpc_balanced: self.stats.balanced(),
            ledger_total: audit.total,
        };
        for t in tallies {
            report.rpcs += t.rpcs;
            report.pings += t.pings;
            report.creates += t.creates;
            report.terminates += t.terminates;
            report.dead_hits += t.dead_hits;
            report.transfers += t.transfers;
            report.transfer_full += t.transfer_full;
            report.drained += t.drained;
            // Order-insensitive: workers join in index order, but the
            // fold is commutative anyway.
            report.digest = report.digest.wrapping_add(t.digest);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(workers: usize, seed: u64) -> EngineConfig {
        EngineConfig {
            workers,
            ops_per_worker: 3_000,
            stable_ports: 16,
            seed,
            ..EngineConfig::default()
        }
    }

    #[test]
    fn storm_balances_both_ledgers() {
        let report = Engine::new(small(4, 7)).run();
        assert!(report.rpc_balanced, "RpcStats ledger unbalanced");
        assert_eq!(report.ledger_total, 1, "object ledger unbalanced");
        assert_eq!(
            report.creates, report.terminates,
            "every created task terminated"
        );
        assert!(report.pings > 0 && report.dead_hits > 0);
    }

    #[test]
    fn single_worker_storm_is_deterministic() {
        // One worker, OS host: the tally is a pure function of the
        // seed (no cross-worker interleaving at all).
        let a = Engine::new(small(1, 42)).run();
        let b = Engine::new(small(1, 42)).run();
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.pings, b.pings);
        assert_eq!(a.creates, b.creates);
        let c = Engine::new(small(1, 43)).run();
        assert_ne!(a.digest, c.digest, "different seed, different storm");
    }

    #[test]
    fn counter_sums_are_host_independent() {
        // Multi-worker on the OS host: interleaving varies, but the
        // per-worker op streams (and so every counter sum) must not.
        let a = Engine::new(small(4, 99)).run();
        let b = Engine::new(small(4, 99)).run();
        assert_eq!(a.pings, b.pings);
        assert_eq!(a.creates, b.creates);
        assert_eq!(a.terminates, b.terminates);
        assert_eq!(a.dead_hits, b.dead_hits);
        // (No digest comparison here: allocated names depend on the
        // OS interleaving; the digest is only replay-stable under
        // machk-sim, which E19's determinism probe asserts.)
    }

    #[test]
    fn single_lock_namespace_still_correct() {
        let report = Engine::new(EngineConfig {
            shards: 1,
            ..small(4, 5)
        })
        .run();
        assert!(report.rpc_balanced);
        assert_eq!(report.ledger_total, 1);
    }
}
