//! The async IPC engine: a thread-per-core RPC dispatch loop with a
//! crash-survival supervisor.
//!
//! This is the production-shaped server core the ROADMAP's north star
//! asks for, assembled entirely from this crate's own pieces:
//!
//! * the **sharded** [`PortNameSpace`] (E2's data-locking prescription
//!   applied to the name table),
//! * **lock-free message rings** inside every [`Port`] with batched
//!   dequeue ([`Port::receive_batch`]),
//! * the §10 five-step kernel RPC protocol ([`DispatchTable::msg_rpc`])
//!   with its [`RpcStats`] reference ledger,
//! * a [`ShardedRefCount`] object ledger audited by
//!   `drain_audit` at the end of every storm.
//!
//! [`Engine::run`] spawns one worker per configured core (via
//! [`machk_core::sync::host::spawn`], so the whole storm runs — and
//! replays byte-for-byte — under `machk-sim`) and drives a seeded mixed
//! workload through the kernel-RPC protocol:
//!
//! * **ping** — name → port translation, then an `OP_PING` RPC against
//!   the port's kernel object (the hot path; every reply feeds the
//!   worker's digest);
//! * **task create** — an `OP_TASK_CREATE` RPC whose handler creates a
//!   task object, wraps it in a port, and publishes it in the
//!   namespace (taking an object-ledger reference);
//! * **task terminate / dead-port churn** — an `OP_TASK_TERMINATE` RPC
//!   whose handler unpublishes the name, disables translation, and
//!   destroys the port; the worker then fires one more RPC at the dead
//!   port and *must* observe the typed dead-port error;
//! * **port transfer** — a translated right is moved through a shared
//!   transfer port (`try_send` into its lock-free ring); every
//!   [`EngineConfig::drain_every`] operations the worker batch-drains
//!   the transfer ring, releasing the rights in bulk.
//!
//! Nothing in the loop blocks, so a storm cannot deadlock and — under
//! the simulated host — always terminates within its configured op
//! budget. Determinism: each worker's operation stream is a pure
//! function of `(seed, worker index)`; under `machk-sim` the scheduler
//! interleaving is also seeded, so [`EngineReport::digest`] is
//! byte-identical across replays of the same `(seed, cores)` — the E19
//! determinism probe. (On a real OS host the interleaving is the OS's,
//! so only per-worker streams, the counters' sums, and the ledgers are
//! reproducible; the digest is then just a checksum.)
//!
//! ## Crash survival (E20)
//!
//! A storm becomes **supervised** when a kill is possible: either
//! [`EngineConfig::crash_at`] schedules deterministic worker deaths, or
//! (under the `fault` feature) the installed plan arms the
//! `worker_crash` / `worker_crash_holding` sites. Supervision is a
//! *runtime* mode, decided per storm — an unsupervised storm pays
//! nothing for it (no checkpoint writes, no scratch-lock traffic), so
//! the E19 throughput and determinism claims are untouched.
//!
//! Supervised workers run under `catch_unwind` and write a
//! `Checkpoint` — op cursor, mix state, sequence counter, tally,
//! churn list — at the top of every operation. When a worker dies the
//! supervisor counts the crash, drains the transfer ring the corpse
//! fed, bumps the checkpoint generation, and respawns the worker, which
//! resumes the *same seeded op stream* from the checkpoint with the
//! corpse's churn ports re-homed to it. Three mechanisms make the
//! re-run safe:
//!
//! * **Idempotent RPC retry** — every workload RPC goes through
//!   [`DispatchTable::msg_rpc_retry`] with a generation-qualified
//!   sequence number, so a reply lost to a fault-injected drop is
//!   answered from the [`ReplyCache`] without re-executing the handler
//!   or moving the §10 ledger twice.
//! * **Poisoned-lock repair** — each supervised op briefly holds the
//!   engine's scratch [`RawSimpleLock`] and bumps a counter twice
//!   (even → even). A worker killed mid-hold leaves the lock
//!   *poisoned* (never held forever): the next acquirer observes the
//!   typed [`LockError::Poisoned`], clears it, re-acquires, and
//!   repairs the parity under the guard.
//! * **Ledger reconciliation** — whatever a dead incarnation leaked
//!   (a task created after its last checkpoint, a name abandoned by
//!   retry exhaustion) is still published at teardown; the engine
//!   drains the namespace, destroys the orphans, and repairs the
//!   object ledger in one audited
//!   [`ShardedRefCount::reconcile_crash`] pass. An orphan's create
//!   *count* rolled back with the dead incarnation's tally, so the
//!   counted books still balance as `creates == terminates`, while
//!   [`EngineReport::reconciled`] counts exactly the uncounted
//!   orphans — and the final audit is still exactly the creation
//!   reference.
//!
//! ## Overload shedding
//!
//! Degradation is graceful and *accounted*: when the transfer ring sits
//! at or above its watermark (3/4 of [`EngineConfig::transfer_limit`]),
//! workers shed **pings** — the cheap, retryable traffic class — and
//! count them in [`EngineReport::shed`], while creates, terminates, and
//! transfers still land. [`EngineConfig::burst_every`]/`burst_len`
//! carve periodic windows of forced transfers with draining suspended,
//! driving the ring to the watermark on demand (the E20 overload
//! probe). Shedding never consumes extra decision-stream draws, so the
//! create/terminate/transfer mix stays a pure function of the seed even
//! when the shed count is schedule-dependent.

use std::cell::Cell;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use machk_core::sync::host;
use machk_core::{Kobj, LockError, ObjRef, RawSimpleLock, ShardedRefCount};

use crate::message::Message;
use crate::namespace::{PortName, PortNameSpace};
use crate::port::{Port, PortError};
use crate::rpc::{DispatchTable, KernError, RefSemantics, ReplyCache, RpcError, RpcStats};

/// Echo RPC against a task object: the engine's hot path.
pub const OP_PING: u32 = 0x1901;
/// Create a task object, publish its port in the namespace.
pub const OP_TASK_CREATE: u32 = 0x1902;
/// Unpublish + destroy a task port (the dead-port churn source).
pub const OP_TASK_TERMINATE: u32 = 0x1903;

/// A task object served by the engine (the represented kernel object
/// of §10). Deliberately stateless: `OP_PING` takes no object lock, so
/// pings contend only on the shard locks and the port rings — which is
/// the point of the measurement.
struct EngineTask;
type Task = Kobj<EngineTask>;

/// The engine's control object: `OP_TASK_CREATE`/`OP_TASK_TERMINATE`
/// are RPCs against this server's port. Handlers capture the shared
/// namespace and ledger; the server object itself stays lock-free.
struct EngineServer;
type Server = Kobj<EngineServer>;

/// Where within an operation a scheduled kill fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashKind {
    /// At the top of the op, after the checkpoint and before any RPC
    /// (the checkpoint is consistent; nothing leaks).
    OpStart,
    /// After a create RPC's reply arrives but *before* the worker
    /// records the new name anywhere a survivor can see — the name and
    /// its object-ledger reference leak, and teardown reconciliation
    /// must repair both.
    AfterCreate,
    /// Inside the scratch-lock critical section with the parity
    /// invariant torn — the lock is left poisoned for the next
    /// acquirer's repair protocol.
    Holding,
}

/// A scheduled worker kill for supervised storms: worker `worker` dies
/// at the first opportunity of kind [`kind`](CrashKind) at or after op
/// `op` — and only in its **first incarnation**, so a scheduled crash
/// can never livelock the supervisor with an eternal restart loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPoint {
    /// Victim worker index.
    pub worker: usize,
    /// Earliest op index at which the kill may fire.
    pub op: usize,
    /// Where within the op it fires.
    pub kind: CrashKind,
}

/// Storm shape. All fields are plain data so a config embeds in
/// experiment JSON and replays exactly.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads (the "cores" of thread-per-core).
    pub workers: usize,
    /// Operations per worker (ops are mixed per `percent_*` below).
    pub ops_per_worker: usize,
    /// Namespace shards ([`PortNameSpace::with_shards`]); 1 = the
    /// single-lock baseline.
    pub shards: usize,
    /// Pre-published stable ping targets.
    pub stable_ports: usize,
    /// Ring limit of the shared transfer port. The shedding watermark
    /// is 3/4 of this.
    pub transfer_limit: usize,
    /// Batch-drain the transfer ring every this many operations.
    pub drain_every: usize,
    /// Workload seed; worker `w` streams from `mix(seed, w)`.
    pub seed: u64,
    /// Reference-disposition convention for every RPC.
    pub semantics: RefSemantics,
    /// Modeled per-namespace-op critical-section cost (virtual ns,
    /// `machk-sim` only; see [`PortNameSpace::with_shards_modeled`]).
    pub ns_cs_work_ns: u64,
    /// Scheduled worker kills (tests and the E20 storm). Non-empty
    /// switches the storm into supervised mode.
    pub crash_at: Vec<CrashPoint>,
    /// Overload-burst period in ops (0 = no bursts). Within each
    /// period the first [`burst_len`](EngineConfig::burst_len) ops are
    /// forced transfers with draining suspended, pushing the ring
    /// toward its limit so shedding engages.
    pub burst_every: usize,
    /// Ops per burst window (must be < `burst_every` when bursting).
    pub burst_len: usize,
    /// Per-RPC retry deadline in host-clock nanoseconds (the budget
    /// [`DispatchTable::msg_rpc_retry`] spends on transport-class
    /// failures before abandoning the op to teardown reconciliation).
    pub rpc_deadline_ns: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 4,
            ops_per_worker: 10_000,
            shards: crate::namespace::DEFAULT_SHARDS,
            stable_ports: 64,
            transfer_limit: 256,
            drain_every: 32,
            seed: 0x1991_0715,
            semantics: RefSemantics::Mach30,
            ns_cs_work_ns: 0,
            crash_at: Vec::new(),
            burst_every: 0,
            burst_len: 0,
            rpc_deadline_ns: 50_000_000,
        }
    }
}

impl EngineConfig {
    /// Whether a first-incarnation worker is due a scheduled kill of
    /// `kind` at this op.
    fn crash_due(&self, worker: usize, op: usize, kind: CrashKind) -> bool {
        self.crash_at
            .iter()
            .any(|c| c.worker == worker && op >= c.op && c.kind == kind)
    }

    /// Ring occupancy at which pings are shed (at least 1 so an empty
    /// ring never sheds).
    fn shed_watermark(&self) -> usize {
        (self.transfer_limit.saturating_mul(3) / 4).max(1)
    }
}

/// What a storm did. Counter sums and both ledgers are reproducible on
/// any host; `digest` is additionally byte-stable under `machk-sim`
/// replay (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineReport {
    /// RPCs dispatched through [`DispatchTable::msg_rpc`]
    /// (pings + creates + terminates + dead-port probes).
    pub rpcs: u64,
    /// `OP_PING` round-trips.
    pub pings: u64,
    /// Tasks created (and published).
    pub creates: u64,
    /// Tasks terminated (and unpublished).
    pub terminates: u64,
    /// RPCs deliberately fired at dead/unpublished ports that came back
    /// with the expected typed error.
    pub dead_hits: u64,
    /// Rights moved through the transfer ring.
    pub transfers: u64,
    /// Transfer sends refused by a full ring (right released locally).
    pub transfer_full: u64,
    /// Messages batch-drained from the transfer ring.
    pub drained: u64,
    /// Pings shed by overload control at the ring watermark (counted,
    /// never silent).
    pub shed: u64,
    /// Worker incarnations killed and recovered by the supervisor.
    pub crashes: u64,
    /// Churn ports restarted incarnations inherited from their corpses.
    pub rehomed_ports: u64,
    /// Orphaned names (and their object-ledger references) repaired by
    /// the teardown [`ShardedRefCount::reconcile_crash`] pass.
    pub reconciled: u64,
    /// Times the scratch lock was observed in the typed poisoned state.
    pub poison_observed: u64,
    /// Torn scratch invariants repaired under the re-acquired lock.
    pub scratch_repairs: u64,
    /// RPC retries that followed a dropped reply or dead-port race.
    pub retries: u64,
    /// RPCs whose retry deadline expired (op abandoned; any leaked
    /// state lands in `reconciled`).
    pub retry_exhausted: u64,
    /// Scratch-lock acquisitions abandoned on deadline.
    pub lock_timeouts: u64,
    /// Wall/virtual time of the storm, from [`host::now`].
    pub elapsed_ns: u64,
    /// Total supervisor recovery time across all crashes (host-clock
    /// ns; excluded from the replay fingerprint, like `elapsed_ns`).
    pub recovery_ns_total: u64,
    /// Longest single recovery (host-clock ns; fingerprint-excluded).
    pub recovery_ns_max: u64,
    /// Order-insensitive checksum over every reply payload.
    pub digest: u64,
    /// `RpcStats` translation ledger balanced at quiescence.
    pub rpc_balanced: bool,
    /// Object-ledger audit result (must be 1: only the creation
    /// reference outlives the storm, even after crash reconciliation).
    pub ledger_total: u64,
}

impl EngineReport {
    /// RPC throughput in ops/sec (virtual ops/sec under sim).
    pub fn rpcs_per_sec(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        self.rpcs as f64 * 1e9 / self.elapsed_ns as f64
    }

    /// Fold the whole report into one word — the replay fingerprint the
    /// E19/E20 determinism probes compare byte-for-byte. Time-valued
    /// fields (`elapsed_ns`, `recovery_ns_*`) are excluded; everything
    /// else, including the crash-survival counters, must replay.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        for v in [
            self.rpcs,
            self.pings,
            self.creates,
            self.terminates,
            self.dead_hits,
            self.transfers,
            self.transfer_full,
            self.drained,
            self.shed,
            self.crashes,
            self.rehomed_ports,
            self.reconciled,
            self.poison_observed,
            self.scratch_repairs,
            self.retries,
            self.retry_exhausted,
            self.lock_timeouts,
            self.digest,
            self.ledger_total,
            u64::from(self.rpc_balanced),
        ] {
            h = (h ^ v).wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

/// SplitMix64: the workload's per-worker decision stream. Tiny, seeded,
/// and dependency-free; its whole state is one word, so a checkpoint
/// captures it exactly and a restarted incarnation resumes the same
/// stream mid-flight.
struct Mix(u64);

impl Mix {
    fn new(seed: u64, worker: usize) -> Mix {
        // Decorrelate workers: golden-ratio offset per worker index.
        Mix(seed ^ (worker as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Per-worker tallies, merged order-insensitively at join. Clonable so
/// checkpoints can snapshot them: a crashed incarnation's progress
/// since its last checkpoint is deliberately discarded (the resumed
/// incarnation re-runs and re-counts those ops exactly once).
#[derive(Clone, Default)]
struct WorkerTally {
    rpcs: u64,
    pings: u64,
    creates: u64,
    terminates: u64,
    dead_hits: u64,
    transfers: u64,
    transfer_full: u64,
    drained: u64,
    shed: u64,
    rehomed: u64,
    poison_observed: u64,
    scratch_repairs: u64,
    retries: u64,
    retry_exhausted: u64,
    lock_timeouts: u64,
    digest: u64,
}

/// A worker's last consistent state, written at the top of every op in
/// supervised storms (and never touched otherwise). A restarted
/// incarnation resumes from here; the ops between the checkpoint and
/// the crash re-run, and the generation-qualified idempotent sequence
/// numbers keep those re-runs from double-moving the §10 ledgers.
#[derive(Clone)]
struct Checkpoint {
    next_op: usize,
    mix: u64,
    seq: u64,
    generation: u32,
    tally: WorkerTally,
    churn: Vec<PortName>,
}

/// Everything a worker incarnation touches, bundled so the supervisor
/// can hand identical state to a restart.
struct Shared {
    cfg: EngineConfig,
    ns: Arc<PortNameSpace>,
    table: Arc<DispatchTable>,
    stats: Arc<RpcStats>,
    server_port: ObjRef<Port>,
    transfer: ObjRef<Port>,
    stable: Arc<Vec<PortName>>,
    /// Idempotent-retry reply cache shared by every incarnation.
    cache: ReplyCache,
    /// The crash-survival drill ground: a lock a worker can die
    /// holding, plus the invariant (`scratch` is even outside any
    /// hold) that the poison/repair protocol restores.
    scratch_lock: RawSimpleLock,
    scratch: AtomicU64,
    supervised: bool,
}

/// Hard cap on supervisor restart rounds: far above any seeded plan's
/// realistic crash count, so hitting it means the storm is livelocked
/// (e.g. a plan that kills every incarnation deterministically).
const MAX_SUPERVISION_ROUNDS: usize = 64;

/// Sequence-number space: worker index and generation qualify the
/// per-incarnation counter so no two incarnations (or the teardown
/// path) can collide in the reply cache.
fn seq_key(index: usize, generation: u32, seq: u64) -> u64 {
    ((index as u64 & 0xFFFF) << 48) | ((u64::from(generation) & 0xFFFF) << 32) | (seq & 0xFFFF_FFFF)
}

/// Reserved `seq_key` index for the teardown terminates (no worker can
/// use it: `Engine::new` caps `workers` below this).
const TEARDOWN_INDEX: usize = 0xFFFF;

/// Whether the installed fault plan can kill workers (armed
/// `worker_crash` / `worker_crash_holding` sites) — one of the two
/// triggers for supervised mode.
fn crash_sites_armed() -> bool {
    #[cfg(feature = "fault")]
    {
        machk_fault::site_enabled(machk_fault::FaultSite::WorkerCrash)
            || machk_fault::site_enabled(machk_fault::FaultSite::WorkerCrashHolding)
    }
    #[cfg(not(feature = "fault"))]
    false
}

thread_local! {
    /// Set while a supervised worker body runs: its injected-kill
    /// panics are *expected*, so the default panic banner is suppressed
    /// for that thread (the supervisor still receives the payload via
    /// `catch_unwind`; genuine bugs in unsupervised storms keep the
    /// banner and are re-thrown).
    static EXPECTED_PANICS: Cell<bool> = const { Cell::new(false) };
}

/// Chain a quiet filter in front of whatever panic hook is installed.
/// Installed once per process, only when a supervised storm first runs,
/// so unsupervised processes never touch the hook at all.
fn install_quiet_panic_hook() {
    static INSTALLED: OnceLock<()> = OnceLock::new();
    INSTALLED.get_or_init(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !EXPECTED_PANICS.with(Cell::get) {
                previous(info);
            }
        }));
    });
}

/// Trace one completed dispatch-loop batch (`obs` feature): the
/// `EngineBatch` event under the shared `ipc.engine.loop` name, `arg`
/// = operations dispatched since the previous drain point. Workers are
/// distinguished downstream by the per-thread tag every event carries.
#[cfg(feature = "obs")]
#[inline]
fn obs_engine_batch(ops: u64) {
    static TAG: machk_obs::LockTag = machk_obs::LockTag::new();
    let id = TAG.ensure("ipc.engine.loop", machk_obs::LockClass::Other, "engine");
    machk_obs::emit(machk_obs::EventKind::EngineBatch, id, ops);
}

#[cfg(not(feature = "obs"))]
#[inline]
fn obs_engine_batch(_ops: u64) {}

/// The engine: shared state plus the dispatch table. Build one with
/// [`Engine::new`], fire storms with [`Engine::run`].
///
/// # Examples
///
/// ```
/// use machk_ipc::engine::{Engine, EngineConfig};
///
/// let report = Engine::new(EngineConfig {
///     workers: 2,
///     ops_per_worker: 2_000,
///     ..EngineConfig::default()
/// })
/// .run();
/// assert!(report.rpc_balanced);
/// assert_eq!(report.ledger_total, 1, "object ledger balanced");
/// assert!(report.dead_hits > 0, "dead-port churn exercised");
/// ```
///
/// Surviving a scheduled mid-storm worker kill:
///
/// ```
/// use machk_ipc::engine::{CrashKind, CrashPoint, Engine, EngineConfig};
///
/// let report = Engine::new(EngineConfig {
///     workers: 2,
///     ops_per_worker: 2_000,
///     crash_at: vec![CrashPoint { worker: 1, op: 500, kind: CrashKind::OpStart }],
///     ..EngineConfig::default()
/// })
/// .run();
/// assert_eq!(report.crashes, 1, "the kill fired and was recovered");
/// assert_eq!(report.ledger_total, 1, "ledger balanced after recovery");
/// assert_eq!(report.creates, report.terminates, "counted books balance");
/// ```
pub struct Engine {
    cfg: EngineConfig,
    ns: Arc<PortNameSpace>,
    table: Arc<DispatchTable>,
    stats: Arc<RpcStats>,
    ledger: Arc<ShardedRefCount>,
    server_port: ObjRef<Port>,
    transfer: ObjRef<Port>,
    stable: Arc<Vec<PortName>>,
}

impl Engine {
    /// Build the engine: publish the stable ping targets, the server
    /// port, and the transfer port; register the three operations.
    // lint: ref-transfer — each ledger take is owned by a live engine
    // object; terminate ops release them and `run`'s teardown audits
    // the ledger drained to zero (`drain_audit`).
    pub fn new(cfg: EngineConfig) -> Engine {
        assert!(cfg.workers >= 1, "at least one worker");
        assert!(cfg.workers < TEARDOWN_INDEX, "worker count exceeds the seq-key space");
        assert!(cfg.stable_ports >= 1, "at least one ping target");
        assert!(cfg.drain_every >= 1, "drain_every must be at least 1");
        assert!(
            cfg.burst_every == 0 || cfg.burst_len < cfg.burst_every,
            "burst windows must fit their period"
        );
        for c in &cfg.crash_at {
            assert!(c.worker < cfg.workers, "crash point targets a real worker");
            assert!(c.op < cfg.ops_per_worker, "crash point lands inside the storm");
        }
        let ns = Arc::new(PortNameSpace::with_shards_modeled(
            cfg.shards,
            cfg.ns_cs_work_ns,
        ));
        // The object ledger: one reference per live engine-created
        // object (stable tasks + churn tasks), audited at storm end.
        let ledger = Arc::new(ShardedRefCount::named("ipc.engine.ledger"));

        let stable: Vec<PortName> = (0..cfg.stable_ports)
            .map(|_| {
                let task = Kobj::create(EngineTask);
                let port = Port::create();
                port.set_kernel_object(task.into_dyn());
                ledger.take();
                ns.insert(port)
            })
            .collect();

        let server = Kobj::create(EngineServer);
        let server_port = Port::create();
        server_port.set_kernel_object(server.into_dyn());
        let transfer = Port::create_with_limit(cfg.transfer_limit.max(1));

        let mut table = DispatchTable::new();
        table.register::<Task>(OP_PING, |task, msg| {
            let nonce = msg.int_at(0).ok_or(KernError::InvalidArgument)?;
            // Stateless echo: no object lock on the hot path (see the
            // EngineTask docs) and no schedule-dependent inputs, so the
            // reply is a pure function of the request.
            if !task.is_active() {
                return Err(KernError::Deactivated);
            }
            Ok(Message::new(OP_PING).with_int(nonce ^ 0xABCD))
        });
        {
            let ns = Arc::clone(&ns);
            let ledger = Arc::clone(&ledger);
            table.register::<Server>(OP_TASK_CREATE, move |_srv, msg| {
                // The id is workload payload: validated, then unused by
                // the stateless task (see EngineTask).
                msg.int_at(0).ok_or(KernError::InvalidArgument)?;
                let task = Kobj::create(EngineTask);
                let port = Port::create();
                port.set_kernel_object(task.into_dyn());
                ledger.take();
                let name = ns.insert(port);
                Ok(Message::new(OP_TASK_CREATE).with_int(u64::from(name.0)))
            });
        }
        {
            let ns = Arc::clone(&ns);
            let ledger = Arc::clone(&ledger);
            table.register::<Server>(OP_TASK_TERMINATE, move |_srv, msg| {
                let raw = msg.int_at(0).ok_or(KernError::InvalidArgument)?;
                let name = PortName(u32::try_from(raw).map_err(|_| KernError::InvalidArgument)?);
                let port = ns.remove(name).ok_or(KernError::NotFound)?;
                // Shutdown order of §10: disable translation first, then
                // kill the port; release the removed pieces outside any
                // shard lock (we already are outside it).
                let obj = port.clear_kernel_object();
                let _ = port.destroy();
                drop(obj);
                drop(port);
                let final_release = ledger.release();
                debug_assert!(!final_release, "creation reference outlives the storm");
                Ok(Message::new(OP_TASK_TERMINATE).with_int(raw))
            });
        }

        Engine {
            cfg,
            ns,
            table: Arc::new(table),
            stats: Arc::new(RpcStats::new()),
            ledger,
            server_port,
            transfer,
            stable: Arc::new(stable),
        }
    }

    /// The namespace the storm publishes into (diagnostics and tests).
    pub fn namespace(&self) -> &PortNameSpace {
        &self.ns
    }

    /// The supervised storms' poison/repair drill: briefly hold the
    /// scratch lock and bump the counter twice (even → even). A
    /// [`CrashKind::Holding`] kill panics between the bumps, leaving
    /// the count odd and the lock poisoned; whoever acquires next
    /// repairs the parity under the guard. Validation is value-based
    /// (any holder seeing odd repairs it), so correctness never depends
    /// on which racer saw the advisory poison flag first.
    fn scratch_section(
        shared: &Shared,
        index: usize,
        op: usize,
        generation: u32,
        t: &mut WorkerTally,
        limit: Duration,
    ) {
        match shared.scratch_lock.lock_checked(limit) {
            Ok(_guard) => {
                // relaxed: mutated only under scratch_lock; the guard's
                // acquire/release ordering publishes every store.
                let v = shared.scratch.load(Ordering::Relaxed);
                if v & 1 == 1 {
                    // A repairer cleared the poison but we won the lock
                    // race before it re-acquired: the tear is ours.
                    // relaxed: under scratch_lock, see above.
                    shared.scratch.store(v + 1, Ordering::Relaxed);
                    t.scratch_repairs += 1;
                    return;
                }
                // relaxed: under scratch_lock, see above.
                shared.scratch.store(v + 1, Ordering::Relaxed);
                if generation == 0 && shared.cfg.crash_due(index, op, CrashKind::Holding) {
                    panic!("injected crash: worker {index} at op {op} (holding scratch lock)");
                }
                #[cfg(feature = "fault")]
                if machk_fault::fire(machk_fault::FaultSite::WorkerCrashHolding) {
                    panic!("injected crash: worker {index} at op {op} (seeded, holding scratch lock)");
                }
                // relaxed: under scratch_lock, see above.
                shared.scratch.store(v + 2, Ordering::Relaxed);
            }
            Err(LockError::Poisoned(_)) => {
                t.poison_observed += 1;
                shared.scratch_lock.clear_poison();
                // Re-acquire *normally* and repair under the guard:
                // racing repairers serialize here; whoever wins fixes
                // the parity and the losers see it already even.
                let _guard = shared.scratch_lock.lock();
                // relaxed: under scratch_lock, see above.
                let v = shared.scratch.load(Ordering::Relaxed);
                if v & 1 == 1 {
                    // relaxed: under scratch_lock, see above.
                    shared.scratch.store(v + 1, Ordering::Relaxed);
                    t.scratch_repairs += 1;
                }
            }
            Err(LockError::Timeout(_)) => t.lock_timeouts += 1,
        }
    }

    /// One worker *incarnation*: resume the seeded op stream from the
    /// checkpoint in `slot` and run it to completion, checkpointing at
    /// every op top when supervised. Returns the cumulative tally
    /// (inherited through the checkpoint across restarts).
    fn worker_resume(shared: &Shared, index: usize, slot: &Mutex<Checkpoint>) -> WorkerTally {
        let cfg = &shared.cfg;
        let resume = slot.lock().unwrap().clone();
        let generation = resume.generation;
        // Each incarnation declares a fresh fault role: replaying the
        // dead incarnation's decision stream would kill every restart
        // at the same op, forever.
        #[cfg(feature = "fault")]
        machk_fault::set_role(generation.wrapping_mul(cfg.workers as u32) + index as u32);

        let mut mix = Mix(resume.mix);
        let mut t = resume.tally;
        let mut churn = resume.churn;
        let mut seq = resume.seq;
        if generation > 0 {
            // The corpse's live tasks, re-homed to this incarnation.
            t.rehomed += churn.len() as u64;
        }
        let deadline = Duration::from_nanos(cfg.rpc_deadline_ns.max(1));
        let watermark = cfg.shed_watermark();
        let mut batch: Vec<Message> = Vec::with_capacity(cfg.drain_every);

        for op in resume.next_op..cfg.ops_per_worker {
            if shared.supervised {
                *slot.lock().unwrap() = Checkpoint {
                    next_op: op,
                    mix: mix.0,
                    seq,
                    generation,
                    tally: t.clone(),
                    churn: churn.clone(),
                };
                if generation == 0 && cfg.crash_due(index, op, CrashKind::OpStart) {
                    panic!("injected crash: worker {index} at op {op} (op start)");
                }
                #[cfg(feature = "fault")]
                if machk_fault::fire(machk_fault::FaultSite::WorkerCrash) {
                    panic!("injected crash: worker {index} at op {op} (seeded)");
                }
                Self::scratch_section(shared, index, op, generation, &mut t, deadline);
            }

            let bursting = cfg.burst_every > 0 && op % cfg.burst_every < cfg.burst_len;
            let roll = if bursting { 95 } else { mix.next() % 100 };
            if roll < 70 {
                // Ping: translate a stable name, RPC against its task.
                // The decision draws happen *before* the shed check so
                // the op mix stays a pure function of the seed whether
                // or not overload control engages.
                let name = shared.stable[(mix.next() as usize) % shared.stable.len()];
                let nonce = mix.next();
                if shared.transfer.queued() >= watermark {
                    // Overload: shed the cheap, retryable class —
                    // counted, never silent — so terminates and
                    // transfers still land.
                    t.shed += 1;
                } else {
                    let port = shared.ns.translate(name).expect("stable names stay published");
                    seq += 1;
                    match shared.table.msg_rpc_retry(
                        &port,
                        || Message::new(OP_PING).with_int(nonce),
                        cfg.semantics,
                        &shared.stats,
                        seq_key(index, generation, seq),
                        &shared.cache,
                        deadline,
                    ) {
                        Ok((reply, retried)) => {
                            t.rpcs += 1;
                            t.pings += 1;
                            t.retries += u64::from(retried);
                            t.digest = t
                                .digest
                                .wrapping_add(reply.int_at(0).unwrap_or(0) ^ nonce.rotate_left(17));
                        }
                        Err(_) => t.retry_exhausted += 1,
                    }
                }
            } else if roll < 80 {
                // Task create through the server RPC.
                let id = mix.next();
                seq += 1;
                match shared.table.msg_rpc_retry(
                    &shared.server_port,
                    || Message::new(OP_TASK_CREATE).with_int(id),
                    cfg.semantics,
                    &shared.stats,
                    seq_key(index, generation, seq),
                    &shared.cache,
                    deadline,
                ) {
                    Ok((reply, retried)) => {
                        t.rpcs += 1;
                        t.creates += 1;
                        t.retries += u64::from(retried);
                        let name =
                            PortName(reply.int_at(0).expect("create returns the name") as u32);
                        if shared.supervised {
                            // The AfterCreate window: the task is
                            // published and holds a ledger reference,
                            // but the name is recorded nowhere a
                            // survivor can see. Dying here leaks both;
                            // teardown reconciliation repairs them.
                            if generation == 0 && cfg.crash_due(index, op, CrashKind::AfterCreate) {
                                panic!("injected crash: worker {index} at op {op} (after create)");
                            }
                            #[cfg(feature = "fault")]
                            if machk_fault::fire(machk_fault::FaultSite::WorkerCrash) {
                                panic!(
                                    "injected crash: worker {index} at op {op} (seeded, after create)"
                                );
                            }
                        }
                        t.digest = t.digest.wrapping_add(u64::from(name.0).rotate_left(29));
                        churn.push(name);
                    }
                    // Retry budget spent; if the create executed with
                    // its reply lost, the orphan name is reconciled at
                    // teardown.
                    Err(_) => t.retry_exhausted += 1,
                }
            } else if roll < 90 {
                // Terminate one of ours, then probe the dead name/port.
                if let Some(name) = churn.pop() {
                    // Keep a right across termination so the dead-port
                    // probe targets the *destroyed port*, not a recycled
                    // name.
                    let doomed = shared.ns.translate(name).expect("our churn name is published");
                    seq += 1;
                    match shared.table.msg_rpc_retry(
                        &shared.server_port,
                        || Message::new(OP_TASK_TERMINATE).with_int(u64::from(name.0)),
                        cfg.semantics,
                        &shared.stats,
                        seq_key(index, generation, seq),
                        &shared.cache,
                        deadline,
                    ) {
                        Ok((_reply, retried)) => {
                            t.rpcs += 1;
                            t.terminates += 1;
                            t.retries += u64::from(retried);
                            // Dead-port churn: the engine must observe
                            // the typed §10 failure, never a stale
                            // translation. (Plain dispatch: an expected
                            // failure is not retried.)
                            let err = shared
                                .table
                                .msg_rpc(
                                    &doomed,
                                    Message::new(OP_PING).with_int(1),
                                    cfg.semantics,
                                    &shared.stats,
                                )
                                .expect_err("RPC at a destroyed port must fail");
                            t.rpcs += 1;
                            match err {
                                RpcError::Port(PortError::NotAnObjectPort)
                                | RpcError::Port(PortError::Dead)
                                | RpcError::Operation(KernError::Deactivated) => t.dead_hits += 1,
                                other => panic!("unexpected dead-port error: {other:?}"),
                            }
                            assert!(
                                shared.ns.translate(name).is_none(),
                                "terminated name must not resolve"
                            );
                            t.digest = t.digest.wrapping_add(u64::from(name.0).rotate_left(43));
                        }
                        Err(_) => {
                            // Retry budget spent. If the terminate
                            // actually executed (its reply was lost on
                            // the last attempt) the name is gone;
                            // otherwise keep it for quiesce.
                            t.retry_exhausted += 1;
                            if shared.ns.translate(name).is_some() {
                                churn.push(name);
                            } else {
                                t.terminates += 1;
                            }
                        }
                    }
                }
            } else {
                // Port transfer: move a translated right through the
                // shared ring (lock-free MPSC path under concurrency).
                let name = shared.stable[(mix.next() as usize) % shared.stable.len()];
                if let Some(right) = shared.ns.translate(name) {
                    match shared.transfer.try_send(Message::new(0).with_port_right(right)) {
                        Ok(()) => t.transfers += 1,
                        // Full ring: right released with the returned
                        // message. (The transfer port is never destroyed
                        // mid-storm, so the None case cannot occur here.)
                        Err((_msg, _full)) => t.transfer_full += 1,
                    }
                }
            }

            // Drains pause inside a burst window: the point of a burst
            // is to hold the ring at the watermark so shedding engages.
            if !bursting && op % cfg.drain_every == cfg.drain_every - 1 {
                batch.clear();
                if let Ok(n) = shared.transfer.receive_batch(&mut batch, cfg.drain_every) {
                    t.drained += n as u64;
                }
                batch.clear(); // rights released in bulk
                obs_engine_batch(cfg.drain_every as u64);
            }
        }

        // Quiesce: terminate every task this worker still owns so the
        // object ledger can balance. Checkpointed per iteration so a
        // crash *during* quiesce resumes without re-terminating a name
        // that already died.
        while let Some(name) = churn.last().copied() {
            if shared.supervised {
                *slot.lock().unwrap() = Checkpoint {
                    next_op: cfg.ops_per_worker,
                    mix: mix.0,
                    seq,
                    generation,
                    tally: t.clone(),
                    churn: churn.clone(),
                };
            }
            seq += 1;
            match shared.table.msg_rpc_retry(
                &shared.server_port,
                || Message::new(OP_TASK_TERMINATE).with_int(u64::from(name.0)),
                cfg.semantics,
                &shared.stats,
                seq_key(index, generation, seq),
                &shared.cache,
                deadline,
            ) {
                Ok((_reply, retried)) => {
                    t.rpcs += 1;
                    t.terminates += 1;
                    t.retries += u64::from(retried);
                }
                Err(_) => {
                    t.retry_exhausted += 1;
                    if shared.ns.translate(name).is_none() {
                        // Executed, reply lost: the task is gone.
                        t.terminates += 1;
                    }
                    // Otherwise abandoned: teardown reconciliation
                    // repairs the orphan.
                }
            }
            churn.pop();
        }
        t
    }

    /// One supervised (or plain) execution of a worker body: panics are
    /// caught and returned so the supervisor can distinguish a finished
    /// tally from a corpse.
    ///
    /// `AssertUnwindSafe` holds because an unwound incarnation is
    /// *discarded wholesale*: the supervisor restarts from the
    /// checkpoint (the last pre-op consistent state) and every shared
    /// structure the corpse touched is either lock-free, internally
    /// consistent under its own locks, or — for the scratch lock —
    /// explicitly poison-aware.
    fn worker_body(
        shared: &Shared,
        index: usize,
        slot: &Mutex<Checkpoint>,
    ) -> Result<WorkerTally, Box<dyn std::any::Any + Send>> {
        if shared.supervised {
            EXPECTED_PANICS.with(|s| s.set(true));
        }
        let outcome =
            std::panic::catch_unwind(AssertUnwindSafe(|| Self::worker_resume(shared, index, slot)));
        EXPECTED_PANICS.with(|s| s.set(false));
        outcome
    }

    /// Run one storm: spawn the workers under supervision, restart any
    /// that crash from their checkpoints, drain the transfer ring, tear
    /// down the stable ports, reconcile whatever crashed incarnations
    /// leaked, and audit both ledgers.
    ///
    /// Consumes the engine: a storm ends with the namespace drained and
    /// every engine object released, so the ledgers can be audited —
    /// build a fresh engine per storm.
    pub fn run(self) -> EngineReport {
        let start = host::now();
        let supervised = !self.cfg.crash_at.is_empty() || crash_sites_armed();
        if supervised {
            install_quiet_panic_hook();
        }
        let workers = self.cfg.workers;
        let shared = Arc::new(Shared {
            cfg: self.cfg.clone(),
            ns: Arc::clone(&self.ns),
            table: Arc::clone(&self.table),
            stats: Arc::clone(&self.stats),
            server_port: self.server_port.clone(),
            transfer: self.transfer.clone(),
            stable: Arc::clone(&self.stable),
            cache: ReplyCache::new(),
            scratch_lock: RawSimpleLock::named("ipc.engine.scratch"),
            scratch: AtomicU64::new(0),
            supervised,
        });
        let slots: Vec<Arc<Mutex<Checkpoint>>> = (0..workers)
            .map(|w| {
                Arc::new(Mutex::new(Checkpoint {
                    next_op: 0,
                    mix: Mix::new(self.cfg.seed, w).0,
                    seq: 0,
                    generation: 0,
                    tally: WorkerTally::default(),
                    churn: Vec::new(),
                }))
            })
            .collect();

        let mut tallies: Vec<WorkerTally> = Vec::with_capacity(workers);
        let mut crashes = 0u64;
        let mut drained_recovery = 0u64;
        let mut recovery_ns_total = 0u64;
        let mut recovery_ns_max = 0u64;
        let mut pending: Vec<usize> = (0..workers).collect();
        let mut rounds = 0usize;
        while !pending.is_empty() {
            rounds += 1;
            assert!(
                rounds <= MAX_SUPERVISION_ROUNDS,
                "supervision livelock: workers still dying after {MAX_SUPERVISION_ROUNDS} restart rounds"
            );
            type Outcome = Result<WorkerTally, Box<dyn std::any::Any + Send>>;
            let outcomes: Vec<(usize, Outcome)> = if workers == 1 {
                // Run inline: keeps single-worker storms usable from any
                // context (no spawn permission needed under exotic
                // hosts); the supervisor loop recovers inline crashes
                // the same way.
                vec![(0, Self::worker_body(&shared, 0, &slots[0]))]
            } else {
                let handles: Vec<_> = pending
                    .iter()
                    .map(|&w| {
                        let shared = Arc::clone(&shared);
                        let slot = Arc::clone(&slots[w]);
                        let out: Arc<Mutex<Option<Outcome>>> = Arc::new(Mutex::new(None));
                        let res = Arc::clone(&out);
                        let token = host::spawn(move || {
                            let outcome = Self::worker_body(&shared, w, &slot);
                            *res.lock().unwrap() = Some(outcome);
                        });
                        (w, token, out)
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|(w, token, out)| {
                        host::join(token);
                        (
                            w,
                            out.lock().unwrap().take().expect("joined worker left no outcome"),
                        )
                    })
                    .collect()
            };
            let mut respawn: Vec<usize> = Vec::new();
            for (w, outcome) in outcomes {
                match outcome {
                    Ok(tally) => tallies.push(tally),
                    Err(payload) => {
                        if !supervised {
                            // A genuine bug, not an injected kill:
                            // preserve the old propagation semantics.
                            std::panic::resume_unwind(payload);
                        }
                        drop(payload);
                        crashes += 1;
                        let t0 = host::now();
                        // Recovery step 1: drain the ring the corpse
                        // fed — its in-flight rights must not pin the
                        // storm at the watermark forever.
                        let mut batch = Vec::new();
                        while let Ok(n) = shared.transfer.receive_batch(&mut batch, 64) {
                            if n == 0 {
                                break;
                            }
                            drained_recovery += n as u64;
                            batch.clear();
                        }
                        // Recovery step 2: the corpse's checkpoint is
                        // its last consistent state — bump the
                        // generation (fresh fault role, fresh seq-key
                        // space) and respawn; the restart re-homes the
                        // corpse's churn ports to itself.
                        slots[w].lock().unwrap().generation += 1;
                        let dt = host::now().saturating_sub(t0);
                        recovery_ns_total += dt;
                        recovery_ns_max = recovery_ns_max.max(dt);
                        respawn.push(w);
                    }
                }
            }
            pending = respawn;
        }

        // Quiesce the transfer ring: release every in-flight right.
        let mut drained_tail = drained_recovery;
        let mut batch = Vec::new();
        while let Ok(n) = self.transfer.receive_batch(&mut batch, 64) {
            if n == 0 {
                break;
            }
            drained_tail += n as u64;
            batch.clear();
        }

        // Tear down the stable targets through the same terminate path,
        // idempotently: a teardown reply lost to an armed drop plan
        // must not wedge the audit.
        let mut rpcs_teardown = 0u64;
        let mut retries_teardown = 0u64;
        let deadline = Duration::from_nanos(self.cfg.rpc_deadline_ns.max(1));
        for (i, name) in self.stable.iter().enumerate() {
            // On failure the RPC is abandoned: the name is still
            // published (or not) and the reconciliation pass below
            // settles it either way.
            if let Ok((_reply, retried)) = self.table.msg_rpc_retry(
                &self.server_port,
                || Message::new(OP_TASK_TERMINATE).with_int(u64::from(name.0)),
                self.cfg.semantics,
                &self.stats,
                seq_key(TEARDOWN_INDEX, 0, i as u64),
                &shared.cache,
                deadline,
            ) {
                rpcs_teardown += 1;
                retries_teardown += u64::from(retried);
            }
        }

        // Crash reconciliation: whatever the storm leaked — tasks
        // created by a dead incarnation after its checkpoint, names
        // abandoned by retry exhaustion — is still published here.
        // Unpublish, destroy, and repair the object ledger in one
        // audited pass.
        let leftovers = self.ns.drain();
        let reconciled = leftovers.len() as u64;
        debug_assert!(
            supervised || leftovers.is_empty(),
            "unsupervised storm must drain the namespace"
        );
        for port in &leftovers {
            // Same shutdown order as the terminate handler: disable
            // translation (drain already unpublished), then the port.
            let obj = port.clear_kernel_object();
            let _ = port.destroy();
            drop(obj);
        }
        drop(leftovers);
        if reconciled > 0 {
            let recon = self.ledger.reconcile_crash(reconciled);
            debug_assert_eq!(
                recon.released, reconciled,
                "reconciliation releases exactly the orphaned references"
            );
            let _ = recon;
        }

        // The scratch lock may still be poisoned if the last Holding
        // victim had no later acquirer; the supervisor is the acquirer
        // of last resort.
        let mut poison_teardown = 0u64;
        let mut repairs_teardown = 0u64;
        if shared.scratch_lock.is_poisoned() {
            poison_teardown += 1;
            shared.scratch_lock.clear_poison();
        }
        // relaxed: every worker incarnation has been joined; no
        // concurrent mutators remain.
        let v = shared.scratch.load(Ordering::Relaxed);
        if v & 1 == 1 {
            // relaxed: single-threaded teardown, see above.
            shared.scratch.store(v + 1, Ordering::Relaxed);
            repairs_teardown += 1;
        }

        let elapsed_ns = host::now().saturating_sub(start);
        debug_assert!(self.ns.is_empty(), "reconciliation must drain the namespace");
        let audit = self.ledger.drain_audit();

        let mut report = EngineReport {
            rpcs: rpcs_teardown,
            pings: 0,
            creates: 0,
            terminates: 0,
            dead_hits: 0,
            transfers: 0,
            transfer_full: 0,
            drained: drained_tail,
            shed: 0,
            crashes,
            rehomed_ports: 0,
            reconciled,
            poison_observed: poison_teardown,
            scratch_repairs: repairs_teardown,
            retries: retries_teardown,
            retry_exhausted: 0,
            lock_timeouts: 0,
            elapsed_ns,
            recovery_ns_total,
            recovery_ns_max,
            digest: 0,
            rpc_balanced: self.stats.balanced(),
            ledger_total: audit.total,
        };
        for t in tallies {
            report.rpcs += t.rpcs;
            report.pings += t.pings;
            report.creates += t.creates;
            report.terminates += t.terminates;
            report.dead_hits += t.dead_hits;
            report.transfers += t.transfers;
            report.transfer_full += t.transfer_full;
            report.drained += t.drained;
            report.shed += t.shed;
            report.rehomed_ports += t.rehomed;
            report.poison_observed += t.poison_observed;
            report.scratch_repairs += t.scratch_repairs;
            report.retries += t.retries;
            report.retry_exhausted += t.retry_exhausted;
            report.lock_timeouts += t.lock_timeouts;
            // Order-insensitive: workers join in index order, but the
            // fold is commutative anyway.
            report.digest = report.digest.wrapping_add(t.digest);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(workers: usize, seed: u64) -> EngineConfig {
        EngineConfig {
            workers,
            ops_per_worker: 3_000,
            stable_ports: 16,
            seed,
            ..EngineConfig::default()
        }
    }

    #[test]
    fn storm_balances_both_ledgers() {
        let report = Engine::new(small(4, 7)).run();
        assert!(report.rpc_balanced, "RpcStats ledger unbalanced");
        assert_eq!(report.ledger_total, 1, "object ledger unbalanced");
        assert_eq!(
            report.creates, report.terminates,
            "every created task terminated"
        );
        assert!(report.pings > 0 && report.dead_hits > 0);
        // No crashes, no bursts: the crash-survival layer must be
        // invisible in every counter.
        assert_eq!(report.crashes, 0);
        assert_eq!(report.reconciled, 0);
        assert_eq!(report.shed, 0, "no overload, nothing shed");
        assert_eq!(report.retries, 0);
        assert_eq!(report.poison_observed, 0);
    }

    #[test]
    fn single_worker_storm_is_deterministic() {
        // One worker, OS host: the tally is a pure function of the
        // seed (no cross-worker interleaving at all).
        let a = Engine::new(small(1, 42)).run();
        let b = Engine::new(small(1, 42)).run();
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.pings, b.pings);
        assert_eq!(a.creates, b.creates);
        let c = Engine::new(small(1, 43)).run();
        assert_ne!(a.digest, c.digest, "different seed, different storm");
    }

    #[test]
    fn counter_sums_are_host_independent() {
        // Multi-worker on the OS host: interleaving varies, but the
        // per-worker op streams (and so every counter sum) must not.
        let a = Engine::new(small(4, 99)).run();
        let b = Engine::new(small(4, 99)).run();
        assert_eq!(a.pings, b.pings);
        assert_eq!(a.creates, b.creates);
        assert_eq!(a.terminates, b.terminates);
        assert_eq!(a.dead_hits, b.dead_hits);
        // (No digest comparison here: allocated names depend on the
        // OS interleaving; the digest is only replay-stable under
        // machk-sim, which E19's determinism probe asserts.)
    }

    #[test]
    fn single_lock_namespace_still_correct() {
        let report = Engine::new(EngineConfig {
            shards: 1,
            ..small(4, 5)
        })
        .run();
        assert!(report.rpc_balanced);
        assert_eq!(report.ledger_total, 1);
    }

    #[test]
    fn scheduled_crashes_are_survived_and_reconciled() {
        let report = Engine::new(EngineConfig {
            crash_at: vec![
                CrashPoint { worker: 0, op: 100, kind: CrashKind::OpStart },
                CrashPoint { worker: 1, op: 200, kind: CrashKind::AfterCreate },
                CrashPoint { worker: 2, op: 300, kind: CrashKind::Holding },
            ],
            ..small(4, 7)
        })
        .run();
        assert_eq!(report.crashes, 3, "every scheduled kill fired once");
        assert!(report.rpc_balanced, "RpcStats ledger survives crashes");
        assert_eq!(report.ledger_total, 1, "object ledger repaired to balance");
        // The OpStart and Holding kills die with consistent
        // checkpoints; only the AfterCreate kill leaks — exactly one
        // published task whose name nobody holds. Its create *count*
        // rolled back with the corpse's tally, so the counted books
        // still balance while reconciliation repairs the object side.
        assert_eq!(report.reconciled, 1, "exactly the AfterCreate orphan");
        assert_eq!(
            report.creates, report.terminates,
            "counted creates match counted terminates even across the leak"
        );
        // The Holding kill leaves the lock poisoned and the parity
        // torn; someone (a survivor or the teardown) must observe the
        // typed poison and repair the tear.
        assert!(report.poison_observed >= 1, "poison observed");
        assert!(report.scratch_repairs >= 1, "parity repaired");
    }

    #[test]
    fn crashed_single_worker_storm_is_deterministic() {
        let cfg = |seed| EngineConfig {
            crash_at: vec![CrashPoint { worker: 0, op: 500, kind: CrashKind::OpStart }],
            ..small(1, seed)
        };
        let a = Engine::new(cfg(42)).run();
        let b = Engine::new(cfg(42)).run();
        assert_eq!(a.crashes, 1);
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "crash recovery replays exactly (single worker, any host)"
        );
    }

    #[test]
    fn burst_overload_sheds_pings_but_lands_commits() {
        let report = Engine::new(EngineConfig {
            transfer_limit: 64,
            burst_every: 128,
            burst_len: 96,
            ..small(4, 11)
        })
        .run();
        assert!(report.shed > 0, "bursts must drive the ring past the watermark");
        assert!(report.transfers > 0, "transfers still land under overload");
        assert!(report.terminates > 0, "terminates still land under overload");
        assert!(report.rpc_balanced);
        assert_eq!(report.ledger_total, 1);
        assert_eq!(report.crashes, 0);
        assert_eq!(report.reconciled, 0);
        assert_eq!(
            report.creates, report.terminates,
            "shedding never drops commit-class ops"
        );
        // Shedding happens after the decision draws, so the op mix is
        // still seed-pure: pings attempted + pings shed is a constant.
        let again = Engine::new(EngineConfig {
            transfer_limit: 64,
            burst_every: 128,
            burst_len: 96,
            ..small(4, 11)
        })
        .run();
        assert_eq!(report.pings + report.shed, again.pings + again.shed);
        assert_eq!(report.creates, again.creates);
        assert_eq!(report.transfers + report.transfer_full, again.transfers + again.transfer_full);
    }
}
