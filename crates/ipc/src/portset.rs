//! Port sets: receive from any of several ports.
//!
//! Mach lets a receiver service many ports through one blocking point
//! by collecting them into a *port set*. The set is itself a
//! reference-counted kernel object; member ports carry a back link so
//! a send to any member wakes the set's waiters. The lock ordering
//! convention (section 5, by object type) is **set before port**.
//!
//! Direct `receive` on a port that is in a set is refused
//! ([`crate::PortError::InPortSet`]) — in Mach the receive right
//! effectively moves to the set.

use machk_core::{
    assert_wait, clear_wait, current_thread, thread_block, thread_block_timeout, Event, ObjHeader,
    ObjRef, Refable, SimpleLocked, WaitResult,
};

use crate::message::Message;
use crate::port::{Port, PortError};

struct PortSetState {
    members: Vec<ObjRef<Port>>,
    /// Round-robin start index so one busy port cannot starve the
    /// others.
    next: usize,
}

/// A set of ports with a single blocking receive point.
///
/// # Examples
///
/// ```
/// use machk_ipc::{Message, Port, PortSet};
///
/// let set = PortSet::create();
/// let a = Port::create();
/// let b = Port::create();
/// set.add(a.clone()).unwrap();
/// set.add(b.clone()).unwrap();
///
/// b.send(Message::new(7)).unwrap();
/// let (msg, from) = set.receive().unwrap();
/// assert_eq!(msg.id(), 7);
/// assert!(machk_core::ObjRef::ptr_eq(&from, &b));
/// ```
pub struct PortSet {
    header: ObjHeader,
    state: SimpleLocked<PortSetState>,
}

impl Refable for PortSet {
    fn header(&self) -> &ObjHeader {
        &self.header
    }
}

impl PortSet {
    /// Create an empty port set, returning the creation reference.
    pub fn create() -> ObjRef<PortSet> {
        ObjRef::new(PortSet {
            header: ObjHeader::new(),
            state: SimpleLocked::new(PortSetState {
                members: Vec::new(),
                next: 0,
            }),
        })
    }

    fn event(&self) -> Event {
        Event::from_addr(self)
    }

    /// Add a port to the set. The set holds the given reference; the
    /// port's queue now wakes the set.
    ///
    /// Fails if the port is already in a set (Mach allows at most one)
    /// or if either object is dead.
    pub fn add(&self, port: ObjRef<Port>) -> Result<(), PortError> {
        // Lock order: set before port.
        let mut s = self.state.lock();
        self.header.check_active()?;
        port.join_set(self.event())?;
        s.members.push(port);
        Ok(())
    }

    /// Remove a port from the set; returns the set's reference to it.
    pub fn remove(&self, port: &ObjRef<Port>) -> Option<ObjRef<Port>> {
        let mut s = self.state.lock();
        let i = s.members.iter().position(|m| ObjRef::ptr_eq(m, port))?;
        let member = s.members.swap_remove(i);
        member.leave_set();
        drop(s);
        Some(member)
    }

    /// Number of member ports.
    pub fn len(&self) -> usize {
        self.state.lock().members.len()
    }

    /// Whether the set has no members.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Try each member once (round-robin), without blocking.
    fn poll_members(&self) -> Option<(Message, ObjRef<Port>)> {
        let (members, start) = {
            let mut s = self.state.lock();
            if s.members.is_empty() {
                return None;
            }
            s.next = (s.next + 1) % s.members.len();
            (s.members.clone(), s.next)
        };
        let n = members.len();
        for k in 0..n {
            let port = &members[(start + k) % n];
            if let Ok(msg) = port.try_receive_for_set() {
                return Some((msg, port.clone()));
            }
        }
        None
    }

    /// Receive from any member, blocking until a message arrives on
    /// one of them. Returns the message and the port it came from.
    pub fn receive(&self) -> Result<(Message, ObjRef<Port>), PortError> {
        loop {
            {
                if let Some(hit) = self.poll_members() {
                    return Ok(hit);
                }
                let s = self.state.lock();
                self.header.check_active()?;
                // Declare before dropping the set lock (split-wait
                // protocol) — then re-validate: member queues are
                // lock-free, so a send may have enqueued and fired its
                // set wakeup between our poll and the assert_wait.
                assert_wait(self.event(), false);
                let pending = s.members.iter().any(|m| m.queued() > 0 || !m.is_alive());
                drop(s);
                if pending {
                    clear_wait(&current_thread(), WaitResult::Awakened);
                }
            }
            thread_block();
        }
    }

    /// Receive with a bound on the wait.
    pub fn receive_timeout(
        &self,
        timeout: std::time::Duration,
    ) -> Result<(Message, ObjRef<Port>), PortError> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            {
                if let Some(hit) = self.poll_members() {
                    return Ok(hit);
                }
                let s = self.state.lock();
                self.header.check_active()?;
                if std::time::Instant::now() >= deadline {
                    return Err(PortError::TimedOut);
                }
                assert_wait(self.event(), false);
                let pending = s.members.iter().any(|m| m.queued() > 0 || !m.is_alive());
                drop(s);
                if pending {
                    clear_wait(&current_thread(), WaitResult::Awakened);
                }
            }
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if thread_block_timeout(remaining) == WaitResult::TimedOut {
                return match self.poll_members() {
                    Some(hit) => Ok(hit),
                    None => Err(PortError::TimedOut),
                };
            }
        }
    }

    /// Destroy the set: deactivate, detach all members (returning their
    /// references for release), wake blocked receivers.
    pub fn destroy(&self) -> Result<(), PortError> {
        let members = {
            let mut s = self.state.lock();
            if self.header.deactivate().is_err() {
                return Err(PortError::Dead);
            }
            for m in &s.members {
                m.leave_set();
            }
            core::mem::take(&mut s.members)
        };
        drop(members);
        machk_core::thread_wakeup(self.event());
        Ok(())
    }
}

impl core::fmt::Debug for PortSet {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("PortSet")
            .field("alive", &self.header.is_active())
            .field("members", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn receive_round_robins_members() {
        let set = PortSet::create();
        let ports: Vec<_> = (0..3).map(|_| Port::create()).collect();
        for p in &ports {
            set.add(p.clone()).unwrap();
        }
        for (i, p) in ports.iter().enumerate() {
            p.send(Message::new(i as u32)).unwrap();
        }
        let mut got: Vec<u32> = (0..3).map(|_| set.receive().unwrap().0.id()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2]);
        set.destroy().unwrap();
    }

    #[test]
    fn direct_receive_on_member_is_refused() {
        let set = PortSet::create();
        let port = Port::create();
        set.add(port.clone()).unwrap();
        port.send(Message::new(1)).unwrap();
        assert_eq!(port.receive().unwrap_err(), PortError::InPortSet);
        assert_eq!(port.try_receive().unwrap_err(), PortError::InPortSet);
        // Through the set it works.
        let (msg, from) = set.receive().unwrap();
        assert_eq!(msg.id(), 1);
        assert!(ObjRef::ptr_eq(&from, &port));
        // After removal the port receives directly again.
        set.remove(&port).unwrap();
        port.send(Message::new(2)).unwrap();
        assert_eq!(port.receive().unwrap().id(), 2);
        set.destroy().unwrap();
    }

    #[test]
    fn port_cannot_join_two_sets() {
        let s1 = PortSet::create();
        let s2 = PortSet::create();
        let port = Port::create();
        s1.add(port.clone()).unwrap();
        assert_eq!(s2.add(port.clone()).unwrap_err(), PortError::InPortSet);
        s1.destroy().unwrap();
        // After the set dies, joining another is legal.
        s2.add(port.clone()).unwrap();
        s2.destroy().unwrap();
    }

    #[test]
    fn blocked_set_receive_woken_by_any_member() {
        let set = PortSet::create();
        let a = Port::create();
        let b = Port::create();
        set.add(a.clone()).unwrap();
        set.add(b.clone()).unwrap();
        std::thread::scope(|s| {
            let set = &set;
            let t = s.spawn(move || set.receive().unwrap().0.id());
            std::thread::sleep(Duration::from_millis(20));
            b.send(Message::new(42)).unwrap();
            assert_eq!(t.join().unwrap(), 42);
        });
        set.destroy().unwrap();
    }

    #[test]
    fn receive_timeout_expires_on_quiet_set() {
        let set = PortSet::create();
        set.add(Port::create()).unwrap();
        assert_eq!(
            set.receive_timeout(Duration::from_millis(10)).unwrap_err(),
            PortError::TimedOut
        );
        set.destroy().unwrap();
    }

    #[test]
    fn destroy_wakes_blocked_receiver() {
        let set = PortSet::create();
        set.add(Port::create()).unwrap();
        std::thread::scope(|s| {
            let set = &set;
            let t = s.spawn(move || set.receive());
            std::thread::sleep(Duration::from_millis(20));
            set.destroy().unwrap();
            assert_eq!(t.join().unwrap().unwrap_err(), PortError::Dead);
        });
    }

    #[test]
    fn many_producers_one_set_receiver() {
        const PORTS: usize = 4;
        const PER: usize = 200;
        let set = PortSet::create();
        let ports: Vec<_> = (0..PORTS).map(|_| Port::create_with_limit(8)).collect();
        for p in &ports {
            set.add(p.clone()).unwrap();
        }
        let received = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for (i, p) in ports.iter().enumerate() {
                let p = p.clone();
                s.spawn(move || {
                    for k in 0..PER {
                        p.send(Message::new((i * PER + k) as u32)).unwrap();
                    }
                });
            }
            let set = &set;
            let received = &received;
            s.spawn(move || {
                let mut seen = std::collections::HashSet::new();
                for _ in 0..PORTS * PER {
                    let (msg, _from) = set.receive().unwrap();
                    assert!(seen.insert(msg.id()), "duplicate delivery");
                    received.fetch_add(1, Ordering::Relaxed);
                }
            });
        });
        assert_eq!(received.load(Ordering::Relaxed), PORTS * PER);
        set.destroy().unwrap();
    }
}
