//! Property tests for port sets against a membership oracle.

use machk_core::ObjRef;
use machk_ipc::{Message, Port, PortError, PortSet};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum Op {
    Add { slot: u8 },
    Remove { slot: u8 },
    Send { slot: u8, id: u32 },
    SetReceive,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        2 => (0u8..6).prop_map(|slot| Op::Add { slot }),
        1 => (0u8..6).prop_map(|slot| Op::Remove { slot }),
        3 => (0u8..6, any::<u32>()).prop_map(|(slot, id)| Op::Send { slot, id }),
        2 => Just(Op::SetReceive),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn portset_membership_and_delivery_match_oracle(
        ops in proptest::collection::vec(arb_op(), 0..64),
    ) {
        let set = PortSet::create();
        let ports: Vec<ObjRef<Port>> = (0..6).map(|_| Port::create_with_limit(64)).collect();
        let mut members = [false; 6];
        // Messages queued on each port (ids in FIFO order).
        let mut queued: Vec<Vec<u32>> = vec![Vec::new(); 6];

        for op in ops {
            match op {
                Op::Add { slot } => {
                    let r = set.add(ports[slot as usize].clone());
                    if members[slot as usize] {
                        prop_assert_eq!(r.unwrap_err(), PortError::InPortSet);
                    } else {
                        prop_assert!(r.is_ok());
                        members[slot as usize] = true;
                    }
                }
                Op::Remove { slot } => {
                    let removed = set.remove(&ports[slot as usize]);
                    prop_assert_eq!(removed.is_some(), members[slot as usize]);
                    members[slot as usize] = false;
                }
                Op::Send { slot, id } => {
                    // Sends work whether or not the port is in a set.
                    ports[slot as usize].send(Message::new(id)).unwrap();
                    queued[slot as usize].push(id);
                }
                Op::SetReceive => {
                    let any_member_has_mail =
                        (0..6).any(|i| members[i] && !queued[i].is_empty());
                    match set.receive_timeout(std::time::Duration::from_millis(20)) {
                        Ok((msg, from)) => {
                            // Must come from a member with queued mail,
                            // in that port's FIFO order.
                            let slot = ports
                                .iter()
                                .position(|p| ObjRef::ptr_eq(p, &from))
                                .expect("known port");
                            prop_assert!(members[slot], "delivered from a non-member");
                            let expect = queued[slot].remove(0);
                            prop_assert_eq!(msg.id(), expect, "per-port FIFO violated");
                        }
                        Err(PortError::TimedOut) => {
                            prop_assert!(
                                !any_member_has_mail,
                                "timed out with mail available"
                            );
                        }
                        Err(e) => prop_assert!(false, "unexpected error {e:?}"),
                    }
                }
            }
            // Membership invariant.
            prop_assert_eq!(set.len(), members.iter().filter(|m| **m).count());
            // Direct receive always refused for members, allowed for
            // non-members (when mail exists).
            for i in 0..6 {
                if members[i] {
                    prop_assert_eq!(
                        ports[i].try_receive().unwrap_err(),
                        PortError::InPortSet
                    );
                } else if !queued[i].is_empty() {
                    let m = ports[i].try_receive().unwrap();
                    prop_assert_eq!(m.id(), queued[i].remove(0));
                }
            }
        }
        set.destroy().unwrap();
        // After destruction every port is free again.
        for p in &ports {
            let s2 = PortSet::create();
            s2.add(p.clone()).unwrap();
            s2.destroy().unwrap();
        }
    }
}
