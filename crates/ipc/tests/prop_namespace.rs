//! Property and stress tests for the sharded [`PortNameSpace`] and the
//! engine's ledgers: concurrent insert/lookup/remove never loses or
//! duplicates a port, dead-name resolution is consistent across shards,
//! and every storm ends with the `ShardedRefCount` ledger balanced.

use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use machk_core::ObjRef;
use machk_ipc::engine::{Engine, EngineConfig};
use machk_ipc::{Port, PortName, PortNameSpace};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Sequentially, the sharded table is indistinguishable from a
    /// `HashMap` model, for every shard count: inserts allocate fresh
    /// names, translate clones exactly the mapped right, remove returns
    /// it exactly once.
    #[test]
    fn matches_map_model(nshards in 1usize..=16, ops in proptest::collection::vec(any::<u8>(), 0..300)) {
        let ns = PortNameSpace::with_shards(nshards);
        let mut model: Vec<(PortName, ObjRef<Port>)> = Vec::new();
        for op in ops {
            match op % 3 {
                0 => {
                    let port = Port::create();
                    let name = ns.insert(port.clone());
                    prop_assert!(model.iter().all(|(n, _)| *n != name), "name reused");
                    model.push((name, port));
                }
                1 => {
                    if let Some((name, port)) = model.last() {
                        let got = ns.translate(*name);
                        prop_assert!(got.is_some());
                        prop_assert!(ObjRef::ptr_eq(&got.unwrap(), port));
                    }
                    // Never-allocated names miss on every shard.
                    prop_assert!(ns.translate(PortName(0)).is_none());
                }
                _ => {
                    if let Some((name, port)) = model.pop() {
                        let got = ns.remove(name).expect("model says present");
                        prop_assert!(ObjRef::ptr_eq(&got, &port));
                        prop_assert!(ns.translate(name).is_none(), "dead name resolved");
                        prop_assert!(ns.remove(name).is_none(), "double remove");
                    }
                }
            }
            prop_assert_eq!(ns.len(), model.len());
        }
        // Drain returns exactly the survivors.
        let drained = ns.drain();
        prop_assert_eq!(drained.len(), model.len());
        prop_assert!(ns.is_empty());
    }

    /// Every reference the table ever held is returned exactly once:
    /// after remove/drain, each port's count is back to its creator's.
    #[test]
    fn no_reference_leaks(nshards in 1usize..=8, keep in 0usize..40) {
        let ns = PortNameSpace::with_shards(nshards);
        let ports: Vec<_> = (0..40).map(|_| Port::create()).collect();
        let names: Vec<_> = ports.iter().map(|p| ns.insert(p.clone())).collect();
        for name in names.iter().take(keep) {
            drop(ns.remove(*name).expect("present"));
        }
        drop(ns.drain());
        for p in &ports {
            prop_assert_eq!(ObjRef::ref_count(p), 1, "table kept a reference");
        }
    }

    /// Engine storms balance both ledgers for arbitrary seeds and
    /// worker/shard shapes (the drain_audit acceptance criterion).
    #[test]
    fn storms_balance_ledgers(seed in any::<u64>(), workers in 1usize..=4, shards in prop_oneof![Just(1usize), Just(4), Just(8)]) {
        let report = Engine::new(EngineConfig {
            workers,
            shards,
            ops_per_worker: 1_500,
            stable_ports: 8,
            seed,
            ..EngineConfig::default()
        })
        .run();
        prop_assert!(report.rpc_balanced, "RpcStats ledger unbalanced");
        prop_assert_eq!(report.ledger_total, 1, "object ledger unbalanced");
        prop_assert_eq!(report.creates, report.terminates);
    }
}

/// Concurrent insert/translate/remove across threads: no port is ever
/// lost (every inserted name resolves until removed), none is
/// duplicated (names are globally unique, removes return exactly one
/// right), and dead names miss consistently from every thread.
#[test]
fn concurrent_insert_lookup_remove_loses_nothing() {
    const THREADS: usize = 4;
    const PER: usize = 400;
    for nshards in [1, 3, 8] {
        let ns = PortNameSpace::with_shards(nshards);
        let all_names = Mutex::new(Vec::<PortName>::new());
        let removed = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let ns = &ns;
                let all_names = &all_names;
                let removed = &removed;
                s.spawn(move || {
                    let mut mine = Vec::new();
                    for i in 0..PER {
                        let port = Port::create();
                        let name = ns.insert(port.clone());
                        assert!(
                            ObjRef::ptr_eq(&ns.translate(name).expect("fresh name resolves"), &port),
                            "translate returned someone else's port"
                        );
                        mine.push((name, port));
                        // Churn: remove half of what we insert, observing
                        // our own removes as dead names immediately.
                        if i % 2 == 1 {
                            let (dead, port) = mine.swap_remove(i % mine.len());
                            let got = ns.remove(dead).expect("our name is ours to remove");
                            assert!(ObjRef::ptr_eq(&got, &port));
                            assert!(ns.translate(dead).is_none(), "dead name resolved");
                            assert!(ns.remove(dead).is_none(), "double remove");
                            removed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    all_names.lock().unwrap().extend(mine.into_iter().map(|(n, _)| n));
                });
            }
        });
        let survivors = all_names.into_inner().unwrap();
        // Global uniqueness across all threads' allocations.
        let unique: HashSet<_> = survivors.iter().copied().collect();
        assert_eq!(unique.len(), survivors.len(), "duplicate names handed out");
        assert_eq!(
            survivors.len(),
            THREADS * PER - removed.load(Ordering::Relaxed),
            "ports lost or duplicated"
        );
        assert_eq!(ns.len(), survivors.len());
        for name in &survivors {
            assert!(ns.translate(*name).is_some(), "surviving name lost");
        }
        assert_eq!(ns.drain().len(), survivors.len());
    }
}
