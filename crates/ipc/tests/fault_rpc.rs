//! Armed-fault tests for the RPC dispatch hooks.
//!
//! Lives in its own integration binary (own process) because
//! [`machk_fault::install`] arms injection process-wide: arming
//! `rpc_dead_port` here must not perturb the ordinary unit tests.

#![cfg(feature = "fault")]

use std::sync::Mutex;

use machk_core::Kobj;
use machk_fault::{FaultPlan, FaultSite, ALWAYS};
use machk_ipc::{
    DispatchTable, KernError, Message, Port, PortError, RefSemantics, RpcError, RpcStats,
};

/// Plans are process state; every test here serializes on this.
static GATE: Mutex<()> = Mutex::new(());

type Counter = Kobj<u64>;
const OP_ADD: u32 = 1;

fn table() -> DispatchTable {
    let mut t = DispatchTable::new();
    t.register::<Counter>(OP_ADD, |c, m| {
        let d = m.int_at(0).ok_or(KernError::InvalidArgument)?;
        let v = c.with_active(|n| {
            *n += d;
            *n
        })?;
        Ok(Message::new(OP_ADD).with_int(v))
    });
    t
}

#[test]
fn dead_port_fault_is_err_and_takes_no_reference() {
    let _g = GATE.lock().unwrap();
    let t = table();
    let obj = Kobj::create(0u64);
    let port = Port::create();
    port.set_kernel_object(obj.clone().into_dyn());
    let stats = RpcStats::new();

    machk_fault::install(FaultPlan::new(0xD0A).with_rate(FaultSite::RpcDeadPort, ALWAYS));
    machk_fault::set_role(0);
    let e = t
        .msg_rpc(
            &port,
            Message::new(OP_ADD).with_int(1),
            RefSemantics::Mach30,
            &stats,
        )
        .unwrap_err();
    machk_fault::disarm();

    assert_eq!(e, RpcError::Port(PortError::Dead));
    // Injected before translation: no reference was obtained, ledger
    // balanced, operation never ran.
    assert_eq!(stats.translations.load(std::sync::atomic::Ordering::Relaxed), 0);
    assert!(stats.balanced());
    assert_eq!(obj.with_active(|n| *n).unwrap(), 0);
}

#[test]
fn dropped_reply_is_err_but_operation_and_ledger_stand() {
    let _g = GATE.lock().unwrap();
    let t = table();
    let obj = Kobj::create(0u64);
    let port = Port::create();
    port.set_kernel_object(obj.clone().into_dyn());
    let stats = RpcStats::new();

    machk_fault::install(FaultPlan::new(0xD0B).with_rate(FaultSite::RpcDropReply, ALWAYS));
    machk_fault::set_role(0);
    let e = t
        .msg_rpc(
            &port,
            Message::new(OP_ADD).with_int(5),
            RefSemantics::Mach30,
            &stats,
        )
        .unwrap_err();
    machk_fault::disarm();

    assert_eq!(e, RpcError::ReplyDropped);
    // The caller lost the reply, but the operation ran and its step-4
    // disposition already happened — exactly like a real dropped reply.
    assert_eq!(obj.with_active(|n| *n).unwrap(), 5);
    assert_eq!(stats.translations.load(std::sync::atomic::Ordering::Relaxed), 1);
    assert!(stats.balanced());
}

#[test]
fn disarmed_hooks_are_inert() {
    let _g = GATE.lock().unwrap();
    machk_fault::disarm();
    let t = table();
    let obj = Kobj::create(0u64);
    let port = Port::create();
    port.set_kernel_object(obj.into_dyn());
    let stats = RpcStats::new();
    let r = t
        .msg_rpc(
            &port,
            Message::new(OP_ADD).with_int(2),
            RefSemantics::Mach25,
            &stats,
        )
        .unwrap();
    assert_eq!(r.int_at(0), Some(2));
    assert!(stats.balanced());
}

#[test]
fn engine_storm_survives_seeded_worker_crashes() {
    let _g = GATE.lock().unwrap();
    use machk_fault::rate_from_prob;
    use machk_ipc::{CrashKind, CrashPoint, Engine, EngineConfig};

    // Seeded chaos (worker kills mid-op and mid-hold, dropped replies)
    // plus one scheduled kill so the supervisor provably engages even
    // if the seed rolls a quiet storm. `declared_roles_only` keeps the
    // supervisor/teardown thread unperturbed: only engine workers
    // (which declare generation-qualified roles) draw faults.
    machk_fault::install(
        FaultPlan::new(0x20E5)
            .with_rate(FaultSite::WorkerCrash, rate_from_prob(0.0002))
            .with_rate(FaultSite::WorkerCrashHolding, rate_from_prob(0.0001))
            .with_rate(FaultSite::RpcDropReply, rate_from_prob(0.002))
            .declared_roles_only(),
    );
    let report = Engine::new(EngineConfig {
        workers: 4,
        ops_per_worker: 2_000,
        stable_ports: 16,
        seed: 0xE20,
        crash_at: vec![CrashPoint {
            worker: 0,
            op: 250,
            kind: CrashKind::AfterCreate,
        }],
        ..EngineConfig::default()
    })
    .run();
    machk_fault::disarm();

    assert!(report.crashes >= 1, "at least the scheduled kill fired");
    assert!(report.retries > 0, "dropped replies forced idempotent retries");
    assert!(report.rpc_balanced, "translation ledger survives the chaos");
    assert_eq!(report.ledger_total, 1, "object ledger repaired to balance");
    assert_eq!(
        report.creates, report.terminates,
        "counted books balance: retries never double-count, leaks reconcile"
    );
    assert!(
        report.reconciled >= 1,
        "the scheduled AfterCreate kill leaks exactly one orphan to reconcile"
    );
}
