//! Property tests for the engine's crash-survival layer: kill a worker
//! at an *arbitrary* seeded op index (and crash window) and the storm
//! must still tear down with both §10 ledgers balanced — the
//! translation ledger exactly, the object ledger via the crash
//! reconciliation pass.

use machk_ipc::{CrashKind, CrashPoint, Engine, EngineConfig};
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = CrashKind> {
    prop_oneof![
        Just(CrashKind::OpStart),
        Just(CrashKind::AfterCreate),
        Just(CrashKind::Holding),
    ]
}

proptest! {
    // Each case runs a full (small) storm; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn crashed_storm_always_balances_both_ledgers(
        seed in any::<u64>(),
        workers in 1usize..4,
        victim in 0usize..4,
        op in 0usize..800,
        kind in arb_kind(),
    ) {
        let report = Engine::new(EngineConfig {
            workers,
            ops_per_worker: 800,
            stable_ports: 8,
            seed,
            crash_at: vec![CrashPoint { worker: victim % workers, op, kind }],
            ..EngineConfig::default()
        })
        .run();

        // An OpStart/Holding kill dies with a consistent checkpoint; an
        // AfterCreate kill fires only if a create op occurs at or after
        // `op`, and leaks exactly one uncounted orphan when it does.
        prop_assert!(report.crashes <= 1);
        prop_assert!(report.reconciled <= 1);
        prop_assert!(report.rpc_balanced, "translation ledger unbalanced");
        prop_assert_eq!(report.ledger_total, 1, "object ledger not repaired");
        prop_assert_eq!(
            report.creates, report.terminates,
            "counted creates must match counted terminates"
        );
        if kind == CrashKind::Holding {
            // The kill fires in the first scratch section at/after
            // `op`, which supervised workers run every op.
            prop_assert_eq!(report.crashes, 1);
            prop_assert!(
                report.poison_observed >= 1,
                "a poisoned scratch lock must be observed, not spun on"
            );
            prop_assert!(report.scratch_repairs >= 1, "the torn parity must be repaired");
        }
    }
}
