//! Property tests for messages and port name spaces.

use machk_core::ObjRef;
use machk_ipc::{Message, MsgElement, Port, PortName, PortNameSpace};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum El {
    Int(u64),
    Bytes(Vec<u8>),
    Ool(Vec<u8>),
    Right,
}

fn arb_el() -> impl Strategy<Value = El> {
    prop_oneof![
        any::<u64>().prop_map(El::Int),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(El::Bytes),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(El::Ool),
        Just(El::Right),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn message_elements_roundtrip(id in any::<u32>(), els in proptest::collection::vec(arb_el(), 0..16)) {
        let anchor = Port::create();
        let mut msg = Message::new(id);
        for el in &els {
            match el {
                El::Int(v) => msg.push(MsgElement::Int(*v)),
                El::Bytes(b) => msg.push(MsgElement::Bytes(b.clone())),
                El::Ool(b) => msg.push(MsgElement::OutOfLine(b.clone())),
                El::Right => msg.push(MsgElement::PortRight(anchor.clone())),
            }
        }
        prop_assert_eq!(msg.id(), id);
        prop_assert_eq!(msg.len(), els.len());
        let rights = els.iter().filter(|e| matches!(e, El::Right)).count();
        prop_assert_eq!(ObjRef::ref_count(&anchor) as usize, 1 + rights);
        for (i, el) in els.iter().enumerate() {
            match el {
                El::Int(v) => prop_assert_eq!(msg.int_at(i), Some(*v)),
                El::Bytes(b) | El::Ool(b) => prop_assert_eq!(msg.bytes_at(i), Some(&b[..])),
                El::Right => prop_assert!(msg.port_right_at(i).is_some()),
            }
        }
        drop(msg);
        prop_assert_eq!(ObjRef::ref_count(&anchor), 1, "all rights released");
    }

    #[test]
    fn message_through_port_preserves_order(ids in proptest::collection::vec(any::<u32>(), 1..40)) {
        let port = Port::create_with_limit(ids.len().max(1));
        for &id in &ids {
            port.send(Message::new(id)).unwrap();
        }
        for &id in &ids {
            prop_assert_eq!(port.receive().unwrap().id(), id, "FIFO order");
        }
    }

    #[test]
    fn namespace_tracks_oracle(ops in proptest::collection::vec(any::<bool>(), 0..64)) {
        // true = insert a fresh right; false = remove a random live name.
        let ns = PortNameSpace::new();
        let mut oracle: Vec<(PortName, ObjRef<Port>)> = Vec::new();
        let mut idx = 3usize;
        for insert in ops {
            idx = idx.wrapping_mul(29).wrapping_add(11);
            if insert {
                let port = Port::create();
                let name = ns.insert(port.clone());
                oracle.push((name, port));
            } else if !oracle.is_empty() {
                let (name, port) = oracle.swap_remove(idx % oracle.len());
                let removed = ns.remove(name).expect("live name");
                prop_assert!(ObjRef::ptr_eq(&removed, &port));
                drop(removed);
                prop_assert_eq!(ObjRef::ref_count(&port), 1);
            }
            prop_assert_eq!(ns.len(), oracle.len());
            // Every oracle name translates to the right port, with a
            // cloned (then released) reference.
            for (name, port) in &oracle {
                let right = ns.translate(*name).expect("translates");
                prop_assert!(ObjRef::ptr_eq(&right, port));
            }
        }
        let drained = ns.drain();
        prop_assert_eq!(drained.len(), oracle.len());
    }
}
