//! Regression (E17 under sim): a known injected failure — every event
//! wakeup dropped by `machk-fault` — must surface as a deterministic
//! [`machk_sim::SimError::Deadlock`], reproducing the *same* schedule on
//! every run, instead of hanging the suite the way it would on a real
//! host.
//!
//! Fault plans are process-wide, so this scenario lives alone in its
//! own test binary.

use std::time::Duration;

use machk_event::{assert_wait, thread_block, thread_wakeup, waiters_on, Event, WaitResult};
use machk_fault::{FaultPlan, FaultSite, ALWAYS};
use machk_sim::{run, SimConfig, SimError};
use machk_sync::host;

/// Each run gets a fresh event id: a dropped wakeup leaves its stale
/// wait record in the process-global event table (that is the injected
/// bug), and reusing the event would let one run's corpse shadow the
/// next run's waiter. The schedule is independent of the id, so traces
/// from different runs stay comparable.
fn lost_wakeup_scenario(ev: Event) {
    let waiter = host::spawn(move || {
        assert_wait(ev, false);
        // No timeout: if the wakeup is lost, this thread parks forever.
        let _ = thread_block();
    });
    while waiters_on(ev) == 0 {
        host::yield_now();
    }
    // The injected fault drops this wakeup on the floor.
    let woken = thread_wakeup(ev);
    assert_eq!(woken, 0, "fault plan must eat the wakeup");
    host::join(waiter);
}

#[test]
fn injected_lost_wakeup_deadlocks_deterministically() {
    machk_fault::install(FaultPlan::new(0xE17).with_rate(FaultSite::EventDropWakeup, ALWAYS));

    let cfg = SimConfig::DEFAULT.with_seed(0x17_17);
    let first = run(&cfg, || lost_wakeup_scenario(Event(0xA17))).unwrap_err();
    match &first {
        SimError::Deadlock { blocked, .. } => {
            assert!(
                blocked.iter().any(|b| b.contains("parked")),
                "waiter visible in the diagnosis: {blocked:?}"
            );
        }
        other => panic!("expected Deadlock, got {other}"),
    }

    // Same seed, same plan → the hang reproduces with the identical
    // schedule, which is what makes the injected bug debuggable.
    let second = run(&cfg, || lost_wakeup_scenario(Event(0xB17))).unwrap_err();
    assert_eq!(first.trace().tids, second.trace().tids);
    assert_eq!(first.token(), second.token());

    // Disarm and prove the same scenario completes: the deadlock was the
    // injected fault, not the protocol.
    machk_fault::disarm();
    let healthy = run(&cfg, || {
        const EV: Event = Event(0xC17);
        let waiter = host::spawn(|| {
            assert_wait(EV, false);
            assert_eq!(thread_block(), WaitResult::Awakened);
        });
        while waiters_on(EV) == 0 {
            host::yield_now();
        }
        assert_eq!(thread_wakeup(EV), 1);
        host::join(waiter);
        host::now()
    })
    .unwrap();
    assert!(healthy.clock_ns < Duration::from_secs(1).as_nanos() as u64);
}
