//! Property: a simulation is a pure function of `(seed, cores)` — the
//! schedule trace, the virtual clock, and the rendered experiment-style
//! output are byte-identical across repeated runs, for arbitrary seeds
//! and any core count.

use std::sync::Arc;

use machk_refcount::ShardedRefCount;
use machk_sim::{run, SimConfig};
use machk_sync::host;
use machk_sync::{Backoff, RawSimpleLock, SpinPolicy};
use proptest::prelude::*;

/// A mixed workload touching locks, refcounts, and virtual work, then
/// rendering an output string the way an experiment would.
fn scenario() -> String {
    let lock = Arc::new(RawSimpleLock::with_policy(
        SpinPolicy::Ticket,
        Backoff::DEFAULT,
    ));
    let count = Arc::new(ShardedRefCount::new());
    let ts: Vec<_> = (0..3)
        .map(|i| {
            let lock = Arc::clone(&lock);
            let count = Arc::clone(&count);
            host::spawn(move || {
                for _ in 0..6 {
                    count.take();
                    let g = lock.lock();
                    host::advance(200 + i * 50);
                    drop(g);
                    assert!(!count.release());
                }
            })
        })
        .collect();
    for t in ts {
        host::join(t);
    }
    format!(
        "audit.total={} now={}ns cpu={}",
        count.drain_audit().total,
        host::now(),
        host::cpu_id()
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn identical_seed_and_cores_give_identical_runs(
        seed in any::<u64>(),
        cores in prop_oneof![Just(1usize), Just(2), Just(8), Just(32)],
    ) {
        let cfg = SimConfig::DEFAULT.with_seed(seed).with_cores(cores);
        let a = run(&cfg, scenario).unwrap();
        let b = run(&cfg, scenario).unwrap();
        prop_assert_eq!(&a.trace.tids, &b.trace.tids, "schedules diverged");
        prop_assert_eq!(&a.trace.choices, &b.trace.choices);
        prop_assert_eq!(a.steps, b.steps);
        prop_assert_eq!(a.clock_ns, b.clock_ns);
        prop_assert_eq!(&a.value, &b.value, "experiment output diverged");
        prop_assert!(a.value.starts_with("audit.total=1 "), "ledger: {}", a.value);
    }
}
