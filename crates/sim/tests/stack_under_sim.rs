//! The real lock stack, unchanged, under the deterministic simulator:
//! simple locks of every policy, deadline timeouts measured in virtual
//! time, event wait/wakeup, the complex lock's blocking protocol, and
//! the sharded reference count's ledger — all scheduled by seed.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

use machk_event::{assert_wait, thread_block, thread_wakeup, waiters_on, Event, WaitResult};
use machk_lock::ComplexLock;
use machk_refcount::ShardedRefCount;
use machk_sim::{run, SimConfig, SimError};
use machk_sync::host;
use machk_sync::{Backoff, RawSimpleLock, SpinPolicy};

/// A counter that relies entirely on the lock protecting it (any lost
/// mutual exclusion shows up as a lost increment).
struct RacyCounter(UnsafeCell<u64>);
// Safety: every access in these tests happens under the lock under test.
unsafe impl Sync for RacyCounter {}

fn bump(c: &RacyCounter) {
    // Read-modify-write with a scheduling point inside the window, so a
    // broken lock loses updates under almost any explored schedule.
    unsafe {
        let v = *c.0.get();
        host::yield_now();
        *c.0.get() = v + 1;
    }
}

#[test]
fn simple_lock_excludes_under_every_policy() {
    for (name, policy) in [
        ("tas", SpinPolicy::Tas),
        ("ttas", SpinPolicy::Ttas),
        ("tas-then-ttas", SpinPolicy::TasThenTtas),
        ("ticket", SpinPolicy::Ticket),
        ("mcs", SpinPolicy::Mcs),
    ] {
        let report = run(&SimConfig::DEFAULT.with_seed(0xE1 + policy as u64), move || {
            let lock = Arc::new(RawSimpleLock::with_policy(policy, Backoff::DEFAULT));
            let counter = Arc::new(RacyCounter(UnsafeCell::new(0)));
            let ts: Vec<_> = (0..4)
                .map(|_| {
                    let lock = Arc::clone(&lock);
                    let counter = Arc::clone(&counter);
                    host::spawn(move || {
                        for _ in 0..20 {
                            let g = lock.lock();
                            bump(&counter);
                            drop(g);
                        }
                    })
                })
                .collect();
            for t in ts {
                host::join(t);
            }
            unsafe { *counter.0.get() }
        })
        .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(report.value, 80, "{name} lost increments");
    }
}

#[test]
fn deadline_expires_in_virtual_time() {
    let report = run(&SimConfig::DEFAULT, || {
        let lock = Arc::new(RawSimpleLock::new());
        let held = Arc::new(AtomicU32::new(0));
        let release = Arc::new(AtomicU32::new(0));
        let holder = {
            let lock = Arc::clone(&lock);
            let held = Arc::clone(&held);
            let release = Arc::clone(&release);
            host::spawn(move || {
                lock.lock_raw();
                held.store(1, Ordering::Release);
                // Sleep, don't spin: virtual sleeps let the clock jump
                // straight to the next timer, so the 5ms deadline below
                // expires in a few hundred scheduling steps.
                while release.load(Ordering::Acquire) == 0 {
                    host::sleep(Duration::from_micros(100));
                }
                lock.unlock_raw();
            })
        };
        while held.load(Ordering::Acquire) == 0 {
            host::yield_now();
        }
        let start = host::now();
        let res = lock.lock_with_deadline(Duration::from_millis(5));
        let waited_ns = host::now() - start;
        release.store(1, Ordering::Release);
        host::join(holder);
        (res.is_err(), waited_ns)
    })
    .unwrap();
    let (timed_out, waited_ns) = report.value;
    assert!(timed_out, "deadline must expire while the lock is held");
    assert!(
        waited_ns >= 5_000_000,
        "timeout honoured in virtual time (waited {waited_ns}ns)"
    );
    // A 5ms wait plus escalation sleeps completed in a handful of
    // scheduling steps — this is the whole point of virtual time.
    assert!(report.steps < 100_000);
}

#[test]
fn ab_ba_deadlock_is_caught_by_step_budget() {
    let mut cfg = SimConfig::DEFAULT;
    cfg.max_steps = 30_000;
    let err = run(&cfg, || {
        let a = Arc::new(RawSimpleLock::new());
        let b = Arc::new(RawSimpleLock::new());
        let got_a = Arc::new(AtomicU32::new(0));
        let got_b = Arc::new(AtomicU32::new(0));
        let t1 = {
            let (a, b) = (Arc::clone(&a), Arc::clone(&b));
            let (got_a, got_b) = (Arc::clone(&got_a), Arc::clone(&got_b));
            host::spawn(move || {
                a.lock_raw();
                got_a.store(1, Ordering::Release);
                // Handshake: wait until the peer holds B, guaranteeing
                // the cycle in every schedule.
                while got_b.load(Ordering::Acquire) == 0 {
                    host::yield_now();
                }
                b.lock_raw(); // never succeeds
                b.unlock_raw();
                a.unlock_raw();
            })
        };
        let t2 = {
            let (a, b) = (Arc::clone(&a), Arc::clone(&b));
            let (got_a, got_b) = (Arc::clone(&got_a), Arc::clone(&got_b));
            host::spawn(move || {
                b.lock_raw();
                got_b.store(1, Ordering::Release);
                while got_a.load(Ordering::Acquire) == 0 {
                    host::yield_now();
                }
                a.lock_raw(); // never succeeds
                a.unlock_raw();
                b.unlock_raw();
            })
        };
        host::join(t1);
        host::join(t2);
    })
    .unwrap_err();
    match &err {
        // Spinning deadlocks exhaust the step budget; if both sides have
        // escalated to parking when the budget hits, the scheduler may
        // instead catch the cycle as a timer-less deadlock. Either way
        // the run terminates with a replayable verdict instead of
        // hanging the process.
        SimError::StepLimit { .. } | SimError::Deadlock { .. } => {}
        other => panic!("expected StepLimit or Deadlock, got {other}"),
    }
    assert!(err.to_string().contains("replay=sim:v1:"));
}

#[test]
fn event_wait_wakeup_roundtrip() {
    let report = run(&SimConfig::DEFAULT.with_seed(0xEE), || {
        const EV: Event = Event(0x5150);
        let woke = Arc::new(AtomicU32::new(0));
        let waiter = {
            let woke = Arc::clone(&woke);
            host::spawn(move || {
                assert_wait(EV, false);
                let r = thread_block();
                assert_eq!(r, WaitResult::Awakened);
                woke.store(1, Ordering::Release);
            })
        };
        // Wake only once the waiter is actually enqueued (the paper's
        // split wait: assert_wait made the decision to block visible
        // before the thread parks, so this wakeup cannot be lost).
        while waiters_on(EV) == 0 {
            host::yield_now();
        }
        let n = thread_wakeup(EV);
        host::join(waiter);
        (n, woke.load(Ordering::Acquire))
    })
    .unwrap();
    assert_eq!(report.value, (1, 1));
}

#[test]
fn complex_lock_write_protocol_under_sim() {
    let report = run(&SimConfig::DEFAULT.with_seed(0xC0), || {
        let lock = Arc::new(ComplexLock::new(true));
        let counter = Arc::new(RacyCounter(UnsafeCell::new(0)));
        let ts: Vec<_> = (0..3)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let counter = Arc::clone(&counter);
                host::spawn(move || {
                    for _ in 0..10 {
                        lock.write_raw();
                        bump(&counter);
                        lock.done_raw();
                    }
                })
            })
            .collect();
        for t in ts {
            host::join(t);
        }
        unsafe { *counter.0.get() }
    })
    .unwrap();
    assert_eq!(report.value, 30);
}

#[test]
fn sharded_refcount_ledger_balances_under_sim() {
    let report = run(&SimConfig::DEFAULT.with_seed(0x6), || {
        let count = Arc::new(ShardedRefCount::new());
        let ts: Vec<_> = (0..4)
            .map(|_| {
                let count = Arc::clone(&count);
                host::spawn(move || {
                    for _ in 0..50 {
                        count.take();
                        host::yield_now();
                        assert!(!count.release(), "final release stolen from creator");
                    }
                })
            })
            .collect();
        for t in ts {
            host::join(t);
        }
        let audit = count.drain_audit();
        let last = count.release();
        (audit.total, last)
    })
    .unwrap();
    assert_eq!(report.value.0, 1, "creation reference outstanding after audit");
    assert!(report.value.1, "creator's release is the final one");
}

#[test]
fn stack_schedule_is_a_pure_function_of_seed() {
    let scenario = || {
        let lock = Arc::new(RawSimpleLock::with_policy(
            SpinPolicy::Mcs,
            Backoff::DEFAULT,
        ));
        let count = Arc::new(ShardedRefCount::new());
        let ts: Vec<_> = (0..4)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let count = Arc::clone(&count);
                host::spawn(move || {
                    for _ in 0..10 {
                        count.take();
                        let g = lock.lock();
                        host::advance(500);
                        drop(g);
                        assert!(!count.release());
                    }
                })
            })
            .collect();
        for t in ts {
            host::join(t);
        }
        count.drain_audit().total
    };
    let a = run(&SimConfig::DEFAULT.with_seed(0xABCD), scenario).unwrap();
    let b = run(&SimConfig::DEFAULT.with_seed(0xABCD), scenario).unwrap();
    assert_eq!(a.value, 1);
    assert_eq!(a.trace.tids, b.trace.tids, "byte-identical schedules");
    assert_eq!(a.clock_ns, b.clock_ns, "byte-identical virtual clocks");
    assert_eq!(a.steps, b.steps);
}
