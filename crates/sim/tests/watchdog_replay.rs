//! Satellite: a watchdog escalation under `machk-sim` must be
//! replayable *from the report alone* — the dump embeds the scheduler
//! seed, core count, and schedule trace, and pasting the embedded token
//! back into [`machk_sim::replay`] reproduces the identical hang.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

use machk_intr::watchdog::run_threads_with_deadline;
use machk_sim::{replay, run, ReplayToken, SimConfig};
use machk_sync::host;

/// One stuck worker beside a healthy one; the watchdog detects the
/// hang in virtual time, escalates, and the scenario returns the report
/// (after releasing the stuck worker so the run can drain).
fn hang_and_escalate() -> String {
    let release = Arc::new(AtomicU32::new(0));
    let r2 = Arc::clone(&release);
    let bodies: Vec<Box<dyn FnOnce() + Send>> = vec![
        Box::new(|| host::advance(10_000)),
        Box::new(move || {
            // "Deadlocked" until the test releases it after escalation.
            while r2.load(Ordering::Acquire) == 0 {
                host::sleep(Duration::from_micros(100));
            }
        }),
    ];
    let verdict = run_threads_with_deadline(bodies, Duration::from_millis(2));
    let report = verdict.expect_err("stuck worker must trip the watchdog").escalate();
    release.store(1, Ordering::Release);
    report.report
}

#[test]
fn escalation_report_replays_the_hang_byte_for_byte() {
    let cfg = SimConfig::DEFAULT.with_seed(0xD06_F00D).with_cores(8);
    let first = run(&cfg, hang_and_escalate).unwrap();
    assert!(
        first.value.contains("simulated host at detection"),
        "{}",
        first.value
    );
    assert!(first.value.contains("schedule tail:"), "{}", first.value);

    // Extract the replay token exactly as a human would: from the text.
    let token_str = first
        .value
        .lines()
        .find_map(|l| l.trim().strip_prefix("replay token: "))
        .expect("report embeds a replay token");
    let token: ReplayToken = token_str.parse().unwrap();
    assert_eq!(token.seed, 0xD06_F00D);
    assert_eq!(token.cores, 8);

    // Replaying from the printed token reproduces the identical run:
    // same schedule, same virtual clock, and a byte-identical report
    // (including the embedded schedule tail).
    let again = replay(&SimConfig::DEFAULT, &token, hang_and_escalate).unwrap();
    assert_eq!(first.trace.tids, again.trace.tids);
    assert_eq!(first.clock_ns, again.clock_ns);
    assert_eq!(first.value, again.value, "report is byte-identical");
}
