//! Simulation configuration, schedule traces, and replay tokens.

use core::fmt;
use std::str::FromStr;

/// Cost model for the simulated N-core machine, in virtual nanoseconds.
///
/// The model captures the two cache effects the paper's section 2 turns
/// on: word-spinning policies pay a coherence surcharge proportional to
/// how many *other* CPUs are concurrently spinning on the same line
/// (bounded by `cores - 1`, so a uniprocessor pays none), while local
/// spins (MCS nodes) stay flat. Charges are divided by the machine's
/// effective parallelism (`min(cores, runnable threads)`), so the same
/// step stream takes 8× less virtual wall time on 8 simulated cores —
/// that division is what makes contention *scaling* observable on a
/// 1-CPU host.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// Baseline charge for any scheduling step.
    pub step_ns: u64,
    /// Extra charge per concurrent same-line spinner for one shared-line
    /// spin step (coherence traffic of TAS/TTAS/ticket spinning).
    pub coherence_ns: u64,
    /// Extra charge per concurrent same-line spinner when a contended
    /// shared-line acquisition completes (the release invalidates the
    /// line in every spinner's cache).
    pub acquire_ns: u64,
    /// Charge per park/unpark transition (context-switch cost).
    pub park_ns: u64,
}

impl CostModel {
    /// Defaults loosely calibrated to 1991-vintage shared-bus ratios:
    /// a cache hit ~1 step, a coherence miss tens of ns.
    pub const DEFAULT: CostModel = CostModel {
        step_ns: 10,
        coherence_ns: 30,
        acquire_ns: 60,
        park_ns: 100,
    };
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::DEFAULT
    }
}

/// Configuration for one simulated host.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Scheduler seed: every scheduling decision derives from it.
    pub seed: u64,
    /// Number of simulated CPUs (8/32/64 all run on any box).
    pub cores: usize,
    /// Scheduling-step budget: a run exceeding it fails with
    /// [`crate::SimError::StepLimit`] instead of hanging (livelock backstop).
    pub max_steps: u64,
    /// Virtual-machine cost model.
    pub cost: CostModel,
    /// How many trailing schedule choices [`crate::SimHost`] includes in
    /// its watchdog description.
    pub trace_tail: usize,
}

impl SimConfig {
    /// Default: 8 simulated cores, seed `0x6d61_6368` (`"mach"`).
    pub const DEFAULT: SimConfig = SimConfig {
        seed: 0x6d61_6368,
        cores: 8,
        max_steps: 1_000_000,
        cost: CostModel::DEFAULT,
        trace_tail: 32,
    };

    /// This configuration with a different seed.
    pub fn with_seed(mut self, seed: u64) -> SimConfig {
        self.seed = seed;
        self
    }

    /// This configuration with a different core count.
    pub fn with_cores(mut self, cores: usize) -> SimConfig {
        self.cores = cores.max(1);
        self
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::DEFAULT
    }
}

/// How the scheduler fills choices beyond a forced prefix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedMode {
    /// Seeded uniform choice over the runnable set (random walks).
    Random,
    /// Non-preemptive default: keep running the previous thread while it
    /// is runnable, else take the lowest-numbered runnable thread. The
    /// DFS explorer injects preemptions only through its forced prefix
    /// (iterative context bounding).
    Dfs,
}

impl SchedMode {
    fn tag(self) -> char {
        match self {
            SchedMode::Random => 'r',
            SchedMode::Dfs => 'd',
        }
    }
}

/// The complete record of one run's scheduling decisions.
///
/// `tids` is the sequence of chosen thread ids — the canonical identity
/// of a schedule (two runs are "the same schedule" iff their `tids`
/// match). `choices`/`widths` record each decision as an index into the
/// runnable set of that step, which is what the DFS explorer backtracks
/// over, and `continuable` records whether the previously running thread
/// was still runnable (so preemptions can be counted).
#[derive(Clone, Debug, Default)]
pub struct ScheduleTrace {
    /// Chosen thread id per step.
    pub tids: Vec<u8>,
    /// Chosen index into the runnable set per step.
    pub choices: Vec<u8>,
    /// Size of the runnable set per step.
    pub widths: Vec<u8>,
    /// Index of the previously-running thread within the runnable set,
    /// `0xFF` when it was not runnable (blocked or finished).
    pub prev_index: Vec<u8>,
}

impl ScheduleTrace {
    /// FNV-1a hash of the chosen-thread sequence; used to count distinct
    /// schedules during exploration.
    pub fn hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &t in &self.tids {
            h ^= u64::from(t);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h ^= self.tids.len() as u64;
        h.wrapping_mul(0x100_0000_01b3)
    }

    /// Number of preemptive choices (previous thread runnable, someone
    /// else chosen).
    pub fn preemptions(&self) -> u32 {
        self.choices
            .iter()
            .zip(&self.prev_index)
            .filter(|&(&c, &p)| p != NOT_RUNNABLE && c != p)
            .count() as u32
    }

    /// The trailing `n` chosen thread ids, rendered compactly.
    pub fn tail(&self, n: usize) -> String {
        let start = self.tids.len().saturating_sub(n);
        let mut s = String::new();
        if start > 0 {
            s.push('…');
        }
        for &t in &self.tids[start..] {
            if !s.is_empty() {
                s.push(' ');
            }
            s.push_str(&t.to_string());
        }
        s
    }
}

/// Sentinel in [`ScheduleTrace::prev_index`]: previous thread not runnable.
pub const NOT_RUNNABLE: u8 = 0xFF;

/// Everything needed to replay a run byte-for-byte: seed, core count,
/// scheduling mode, and (for DFS runs) the forced choice prefix.
///
/// Round-trips through `Display`/`FromStr`, so a token printed in a
/// watchdog report or experiment table can be pasted back into
/// [`crate::replay`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplayToken {
    /// Scheduler seed.
    pub seed: u64,
    /// Simulated core count.
    pub cores: usize,
    /// Scheduling mode for choices beyond the prefix.
    pub mode: SchedMode,
    /// Forced choice prefix (indices into each step's runnable set).
    pub forced: Vec<u8>,
}

impl fmt::Display for ReplayToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sim:v1:{:016x}:{}:{}:",
            self.seed,
            self.cores,
            self.mode.tag()
        )?;
        for &c in &self.forced {
            write!(f, "{c:02x}")?;
        }
        Ok(())
    }
}

/// Error parsing a [`ReplayToken`] from its printed form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadReplayToken(pub String);

impl fmt::Display for BadReplayToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed replay token: {}", self.0)
    }
}

impl std::error::Error for BadReplayToken {}

impl FromStr for ReplayToken {
    type Err = BadReplayToken;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = || BadReplayToken(s.to_string());
        let mut parts = s.split(':');
        if parts.next() != Some("sim") || parts.next() != Some("v1") {
            return Err(bad());
        }
        let seed = u64::from_str_radix(parts.next().ok_or_else(bad)?, 16).map_err(|_| bad())?;
        let cores: usize = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let mode = match parts.next() {
            Some("r") => SchedMode::Random,
            Some("d") => SchedMode::Dfs,
            _ => return Err(bad()),
        };
        let hex = parts.next().ok_or_else(bad)?;
        if parts.next().is_some() || hex.len() % 2 != 0 {
            return Err(bad());
        }
        let forced = (0..hex.len() / 2)
            .map(|i| u8::from_str_radix(&hex[2 * i..2 * i + 2], 16).map_err(|_| bad()))
            .collect::<Result<Vec<u8>, _>>()?;
        Ok(ReplayToken {
            seed,
            cores,
            mode,
            forced,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_token_roundtrips() {
        let t = ReplayToken {
            seed: 0xDEAD_BEEF_0123_4567,
            cores: 8,
            mode: SchedMode::Dfs,
            forced: vec![0, 2, 1, 255],
        };
        let s = t.to_string();
        assert_eq!(s.parse::<ReplayToken>().unwrap(), t);
        let empty = ReplayToken {
            seed: 1,
            cores: 64,
            mode: SchedMode::Random,
            forced: vec![],
        };
        assert_eq!(empty.to_string().parse::<ReplayToken>().unwrap(), empty);
    }

    #[test]
    fn malformed_tokens_rejected() {
        for bad in ["", "sim:v2:0:8:r:", "sim:v1:zz:8:r:", "sim:v1:0:8:x:", "sim:v1:0:8:r:abc"] {
            assert!(bad.parse::<ReplayToken>().is_err(), "{bad}");
        }
    }

    #[test]
    fn trace_hash_distinguishes_orders() {
        let a = ScheduleTrace {
            tids: vec![0, 1, 0],
            ..Default::default()
        };
        let b = ScheduleTrace {
            tids: vec![1, 0, 0],
            ..Default::default()
        };
        assert_ne!(a.hash(), b.hash());
    }

    #[test]
    fn preemption_count() {
        let t = ScheduleTrace {
            tids: vec![0, 1, 1],
            choices: vec![0, 1, 0],
            widths: vec![2, 2, 1],
            prev_index: vec![NOT_RUNNABLE, 0, 0],
        };
        // Step 1: thread 0 still runnable at index 0, chose index 1.
        assert_eq!(t.preemptions(), 1);
    }
}
