//! The deterministic virtual-time scheduler.
//!
//! # How it works
//!
//! Simulated threads are real OS threads, but **exactly one runs at a
//! time**: every host operation (spin hint, yield, sleep, park, spawn …)
//! is a *scheduling point* where the running thread enters the scheduler,
//! charges virtual time to the global clock, picks the next thread to run
//! (seeded PRNG or a forced replay prefix), wakes that thread's condvar,
//! and blocks on its own until chosen again. Serialization plus
//! seed-derived choices make a run a pure function of
//! `(seed, cores, forced prefix, program)` — which is what lets any
//! failing interleaving be replayed byte-for-byte from its
//! [`ReplayToken`].
//!
//! # Virtual time
//!
//! The clock only moves at scheduling points. Each step charges a
//! [`crate::config::CostModel`] amount divided by the machine's effective parallelism
//! (`min(cores, runnable)`): with 8 runnable threads on 8 simulated
//! cores a step costs ⅛ of its serial time, which is how a 1-CPU host
//! exhibits 8-core scaling behaviour. When nothing is runnable the clock
//! jumps to the earliest sleeper/timeout — virtual sleeps are free, so
//! watchdog deadlines measured in virtual seconds expire in microseconds
//! of real time.
//!
//! # Hangs cannot hang
//!
//! A state with no runnable thread and no timer is reported as
//! [`SimError::Deadlock`]; a run that exceeds its step budget (pure
//! spin livelock) is reported as [`SimError::StepLimit`]. Both carry the
//! schedule trace and replay token.

// `SimError` embeds the full schedule trace so failures replay from the
// error alone; the Err path is terminal per run, so its size is fine.
#![allow(clippy::result_large_err)]

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Weak};
use std::time::Duration;

use machk_fault::plan::{splitmix64, stream_seed};
use machk_sync::host::{self, Host, SpinSite};

use crate::config::{ReplayToken, ScheduleTrace, SchedMode, SimConfig, NOT_RUNNABLE};

thread_local! {
    /// Sim thread id of the calling OS thread (None on unmanaged threads).
    static SIM_TID: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Panic payload used to unwind simulated threads after a run-level
/// failure; recognized (and swallowed) by the thread wrapper.
struct Abort;

/// A simulation failure. Every variant carries the replay token and the
/// schedule trace, so the failing interleaving can be re-run exactly.
#[derive(Clone, Debug)]
pub enum SimError {
    /// No thread runnable and no timer pending: a true deadlock.
    Deadlock {
        /// Scheduling step at which the deadlock was detected.
        step: u64,
        /// Virtual time of detection.
        clock_ns: u64,
        /// Status of every blocked thread, for diagnosis.
        blocked: Vec<String>,
        /// Replay token reproducing this exact run.
        token: ReplayToken,
        /// The schedule that led here.
        trace: ScheduleTrace,
    },
    /// The step budget was exhausted (spin livelock backstop).
    StepLimit {
        /// The configured budget that was exceeded.
        max_steps: u64,
        /// Virtual time when the budget ran out.
        clock_ns: u64,
        /// Replay token reproducing this exact run.
        token: ReplayToken,
        /// The schedule that led here.
        trace: ScheduleTrace,
    },
    /// A simulated thread panicked (scenario assertion failure).
    Panicked {
        /// Sim thread id of the panicking thread.
        tid: usize,
        /// Rendered panic payload.
        message: String,
        /// Replay token reproducing this exact run.
        token: ReplayToken,
        /// The schedule that led here.
        trace: ScheduleTrace,
    },
}

impl SimError {
    /// The replay token reproducing the failing run.
    pub fn token(&self) -> &ReplayToken {
        match self {
            SimError::Deadlock { token, .. }
            | SimError::StepLimit { token, .. }
            | SimError::Panicked { token, .. } => token,
        }
    }

    /// The schedule trace of the failing run.
    pub fn trace(&self) -> &ScheduleTrace {
        match self {
            SimError::Deadlock { trace, .. }
            | SimError::StepLimit { trace, .. }
            | SimError::Panicked { trace, .. } => trace,
        }
    }

    /// Short classification for tables: `deadlock`, `step-limit`, `panic`.
    pub fn kind(&self) -> &'static str {
        match self {
            SimError::Deadlock { .. } => "deadlock",
            SimError::StepLimit { .. } => "step-limit",
            SimError::Panicked { .. } => "panic",
        }
    }
}

impl core::fmt::Display for SimError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SimError::Deadlock {
                step,
                clock_ns,
                blocked,
                token,
                ..
            } => write!(
                f,
                "simulated deadlock at step {step} (t={clock_ns}ns): all live threads blocked \
                 [{}]; replay={token}",
                blocked.join(", ")
            ),
            SimError::StepLimit {
                max_steps,
                clock_ns,
                token,
                ..
            } => write!(
                f,
                "step budget {max_steps} exhausted (t={clock_ns}ns): livelock suspected; \
                 replay={token}"
            ),
            SimError::Panicked {
                tid,
                message,
                token,
                ..
            } => write!(
                f,
                "simulated thread {tid} panicked: {message}; replay={token}"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// A completed run: the root closure's value plus schedule/clock facts.
#[derive(Debug)]
pub struct SimReport<R> {
    /// What the root closure returned.
    pub value: R,
    /// Total scheduling steps taken.
    pub steps: u64,
    /// Final virtual time.
    pub clock_ns: u64,
    /// The full schedule.
    pub trace: ScheduleTrace,
    /// Token replaying this run.
    pub token: ReplayToken,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Status {
    /// Runnable (includes "currently running").
    Ready,
    /// In `park`/`park_timeout`; woken by `unpark` or the timer.
    Parked { until: Option<u64> },
    /// In `sleep`; woken only by the timer (`unpark` stores a permit).
    Sleeping { until: u64 },
    /// In `join(on)`; woken when thread `on` finishes.
    JoinWait { on: usize },
    /// Finished (normally or by abort).
    Done,
}

struct Th {
    status: Status,
    /// `unpark` arrived while not parked; consumed by the next `park`.
    permit: bool,
    /// Shared line this thread is currently spinning on, if any.
    spin_line: Option<usize>,
    /// Wakes this thread when the scheduler picks it.
    cv: Arc<Condvar>,
}

impl Th {
    fn new() -> Th {
        Th {
            status: Status::Ready,
            permit: false,
            spin_line: None,
            cv: Arc::new(Condvar::new()),
        }
    }
}

struct Sched {
    threads: Vec<Th>,
    running: Option<usize>,
    clock: u64,
    steps: u64,
    rng: u64,
    mode: SchedMode,
    forced: Vec<u8>,
    forced_pos: usize,
    trace: ScheduleTrace,
    /// Threads not yet `Done`.
    live: usize,
    failure: Option<SimError>,
    /// OS handles of every spawned thread, joined by `run`.
    os_handles: Vec<std::thread::JoinHandle<()>>,
    started: bool,
}

/// What a scheduling point reports about the thread entering it.
enum Ev {
    Spin(SpinSite),
    SpinBatch(u32),
    Yield,
    Advance(u64),
    Sleep(u64),
    Park { until: Option<u64> },
    JoinOn(usize),
}

/// A simulated N-core host. Implements [`Host`]; created and driven by
/// [`crate::run`] / [`crate::replay`].
pub struct SimHost {
    cfg: SimConfig,
    mode: SchedMode,
    /// Self-reference so `Host::spawn` (which only gets `&self`) can hand
    /// an `Arc<SimHost>` to carrier threads.
    me: Weak<SimHost>,
    st: Mutex<Sched>,
    /// Wakes the (non-simulated) `run` caller when the run completes.
    done_cv: Condvar,
}

impl SimHost {
    fn new(cfg: SimConfig, mode: SchedMode, forced: Vec<u8>, me: Weak<SimHost>) -> SimHost {
        SimHost {
            cfg,
            mode,
            me,
            st: Mutex::new(Sched {
                threads: Vec::new(),
                running: None,
                clock: 0,
                steps: 0,
                rng: if cfg.seed == 0 { 0x9E37_79B9 } else { cfg.seed },
                mode,
                forced,
                forced_pos: 0,
                trace: ScheduleTrace::default(),
                live: 0,
                failure: None,
                os_handles: Vec::new(),
                started: false,
            }),
            done_cv: Condvar::new(),
        }
    }

    /// The configuration this host was built with.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The replay token for this host's schedule source.
    pub fn replay_token(&self) -> ReplayToken {
        let st = self.lock_st();
        ReplayToken {
            seed: self.cfg.seed,
            cores: self.cfg.cores,
            mode: self.mode,
            forced: st.forced.clone(),
        }
    }

    fn lock_st(&self) -> MutexGuard<'_, Sched> {
        // A thread aborted by a run-level failure may unwind while the
        // lock is momentarily held elsewhere; the state is still
        // consistent (failure path only reads), so ignore poisoning.
        self.st.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn my_tid(&self) -> usize {
        SIM_TID.with(|t| t.get()).expect(
            "machk-sim host operation from a thread the simulator does not manage \
             (spawn threads through the sim, not std::thread)",
        )
    }

    /// Abort the calling thread: unwind to the wrapper, which marks it
    /// Done without scheduling. Never returns.
    fn abort(&self) -> ! {
        std::panic::panic_any(Abort);
    }

    fn record_failure(&self, st: &mut Sched, err: SimError) {
        if st.failure.is_none() {
            st.failure = Some(err);
        }
        st.running = None;
        // Every simulated thread must wake, observe the failure, and
        // unwind; the run caller must wake to collect the verdict.
        for th in &st.threads {
            th.cv.notify_all();
        }
        self.done_cv.notify_all();
    }

    /// Count of Ready threads (effective-parallelism denominator).
    fn ready_count(st: &Sched) -> u64 {
        st.threads
            .iter()
            .filter(|t| t.status == Status::Ready)
            .count() as u64
    }

    /// Other Ready threads spinning on `line` right now, capped at
    /// `cores - 1` (at most that many other CPUs can be spinning).
    fn spinners_on(&self, st: &Sched, line: usize, me: usize) -> u64 {
        let n = st
            .threads
            .iter()
            .enumerate()
            .filter(|&(i, t)| i != me && t.status == Status::Ready && t.spin_line == Some(line))
            .count() as u64;
        n.min(self.cfg.cores as u64 - 1)
    }

    /// Charge `cost` virtual ns, divided by effective parallelism.
    fn charge(&self, st: &mut Sched, cost: u64) {
        let eff = Self::ready_count(st).clamp(1, self.cfg.cores as u64);
        st.clock += (cost / eff).max(1);
    }

    /// The heart: one scheduling point for the calling thread.
    fn switch(&self, ev: Ev) {
        let me = self.my_tid();
        let mut st = self.lock_st();
        if st.failure.is_some() {
            drop(st);
            self.abort();
        }
        let c = self.cfg.cost;
        // Charge the step and update the spin bookkeeping.
        match &ev {
            Ev::Spin(SpinSite::SharedLine(line)) => {
                let k = self.spinners_on(&st, *line, me);
                st.threads[me].spin_line = Some(*line);
                self.charge(&mut st, c.step_ns + c.coherence_ns * k);
            }
            Ev::Spin(_) => {
                st.threads[me].spin_line = None;
                self.charge(&mut st, c.step_ns);
            }
            Ev::SpinBatch(n) => {
                st.threads[me].spin_line = None;
                self.charge(&mut st, c.step_ns * u64::from(*n).max(1));
            }
            Ev::Yield | Ev::JoinOn(_) => {
                st.threads[me].spin_line = None;
                self.charge(&mut st, c.step_ns);
            }
            Ev::Advance(w) => {
                st.threads[me].spin_line = None;
                self.charge(&mut st, c.step_ns + w);
            }
            Ev::Sleep(_) | Ev::Park { .. } => {
                st.threads[me].spin_line = None;
                self.charge(&mut st, c.park_ns);
            }
        }
        // Transition the calling thread.
        let clock = st.clock;
        st.threads[me].status = match ev {
            Ev::Spin(_) | Ev::SpinBatch(_) | Ev::Yield | Ev::Advance(_) => Status::Ready,
            Ev::Sleep(d) => Status::Sleeping { until: clock + d },
            Ev::Park { until } => {
                if st.threads[me].permit {
                    st.threads[me].permit = false;
                    Status::Ready
                } else {
                    Status::Parked {
                        until: until.map(|d| clock + d),
                    }
                }
            }
            Ev::JoinOn(on) => {
                if st.threads[on].status == Status::Done {
                    Status::Ready
                } else {
                    Status::JoinWait { on }
                }
            }
        };
        st.steps += 1;
        if st.steps > self.cfg.max_steps {
            let err = SimError::StepLimit {
                max_steps: self.cfg.max_steps,
                clock_ns: st.clock,
                token: self.token_of(&st),
                trace: st.trace.clone(),
            };
            self.record_failure(&mut st, err);
            drop(st);
            self.abort();
        }
        st.running = None;
        self.pick_next(&mut st);
        self.wait_until_running(st, me);
    }

    fn token_of(&self, st: &Sched) -> ReplayToken {
        ReplayToken {
            seed: self.cfg.seed,
            cores: self.cfg.cores,
            mode: self.mode,
            forced: st.forced.clone(),
        }
    }

    /// Choose the next thread to run (and advance timers / detect
    /// deadlock when nothing is runnable). Notifies the chosen thread.
    fn pick_next(&self, st: &mut Sched) {
        if st.failure.is_some() {
            return;
        }
        let prev = st.trace.tids.last().map(|&t| t as usize);
        loop {
            let runnable: Vec<usize> = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| t.status == Status::Ready)
                .map(|(i, _)| i)
                .collect();
            if !runnable.is_empty() {
                assert!(
                    runnable.len() <= usize::from(u8::MAX),
                    "machk-sim supports at most 255 concurrent threads"
                );
                let prev_index = prev
                    .and_then(|p| runnable.iter().position(|&r| r == p))
                    .map(|i| i as u8)
                    .unwrap_or(NOT_RUNNABLE);
                let idx = if st.forced_pos < st.forced.len() {
                    let f = st.forced[st.forced_pos];
                    st.forced_pos += 1;
                    usize::from(f) % runnable.len()
                } else {
                    match st.mode {
                        SchedMode::Random => {
                            (splitmix64(&mut st.rng) % runnable.len() as u64) as usize
                        }
                        // Non-preemptive default: stay on the previous
                        // thread when possible (the DFS prefix is the
                        // only source of preemptions).
                        SchedMode::Dfs => {
                            if prev_index != NOT_RUNNABLE {
                                usize::from(prev_index)
                            } else {
                                0
                            }
                        }
                    }
                };
                let chosen = runnable[idx];
                st.trace.tids.push(chosen as u8);
                st.trace.choices.push(idx as u8);
                st.trace.widths.push(runnable.len() as u8);
                st.trace.prev_index.push(prev_index);
                st.running = Some(chosen);
                st.threads[chosen].cv.notify_all();
                return;
            }
            // Nothing runnable: advance virtual time to the next timer.
            let next_timer = st
                .threads
                .iter()
                .filter_map(|t| match t.status {
                    Status::Parked { until: Some(u) } | Status::Sleeping { until: u } => Some(u),
                    _ => None,
                })
                .min();
            match next_timer {
                Some(u) => {
                    st.clock = st.clock.max(u);
                    let clock = st.clock;
                    for t in &mut st.threads {
                        match t.status {
                            Status::Parked { until: Some(when) } | Status::Sleeping { until: when }
                                if when <= clock =>
                            {
                                t.status = Status::Ready;
                            }
                            _ => {}
                        }
                    }
                }
                None => {
                    if st.live == 0 {
                        self.done_cv.notify_all();
                        return;
                    }
                    let blocked: Vec<String> = st
                        .threads
                        .iter()
                        .enumerate()
                        .filter(|(_, t)| t.status != Status::Done)
                        .map(|(i, t)| match t.status {
                            Status::Parked { .. } => format!("t{i}:parked"),
                            Status::JoinWait { on } => format!("t{i}:join(t{on})"),
                            _ => format!("t{i}:blocked"),
                        })
                        .collect();
                    let err = SimError::Deadlock {
                        step: st.steps,
                        clock_ns: st.clock,
                        blocked,
                        token: self.token_of(st),
                        trace: st.trace.clone(),
                    };
                    self.record_failure(st, err);
                    return;
                }
            }
        }
    }

    /// Block the calling thread until the scheduler picks it (or the run
    /// fails, in which case the thread aborts).
    fn wait_until_running(&self, mut st: MutexGuard<'_, Sched>, me: usize) {
        loop {
            if st.failure.is_some() {
                drop(st);
                self.abort();
            }
            if st.running == Some(me) {
                return;
            }
            let cv = Arc::clone(&st.threads[me].cv);
            st = cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Register a new simulated thread and start its OS carrier.
    fn spawn_thread(&self, body: Box<dyn FnOnce() + Send>) -> usize {
        let mut st = self.lock_st();
        let id = st.threads.len();
        assert!(id < usize::from(u8::MAX), "machk-sim thread id overflow");
        st.threads.push(Th::new());
        st.live += 1;
        let host: Arc<SimHost> = self.me.upgrade().expect("SimHost dropped while running");
        let handle = std::thread::Builder::new()
            .name(format!("sim-{id}"))
            .spawn(move || thread_main(host, id, body))
            .expect("spawn simulated thread carrier");
        st.os_handles.push(handle);
        drop(st);
        id
    }

    /// Called by the thread wrapper when its body ends (normally, by
    /// scenario panic, or by abort).
    fn finish(&self, me: usize, panic_msg: Option<String>) {
        let mut st = self.lock_st();
        st.threads[me].status = Status::Done;
        st.threads[me].spin_line = None;
        st.live -= 1;
        // Release joiners.
        for t in &mut st.threads {
            if t.status == (Status::JoinWait { on: me }) {
                t.status = Status::Ready;
            }
        }
        if let Some(message) = panic_msg {
            let err = SimError::Panicked {
                tid: me,
                message,
                token: self.token_of(&st),
                trace: st.trace.clone(),
            };
            self.record_failure(&mut st, err);
        }
        if st.failure.is_some() {
            // Failure path: no more scheduling; just let everyone drain.
            if st.live == 0 {
                self.done_cv.notify_all();
            }
            return;
        }
        if st.running == Some(me) {
            st.running = None;
        }
        st.steps += 1;
        if st.live == 0 {
            self.done_cv.notify_all();
            return;
        }
        self.pick_next(&mut st);
    }

    /// First gate: a fresh thread may not run until scheduled. Returns
    /// `false` if the run already failed (body must be skipped).
    fn wait_first_schedule(&self, me: usize) -> bool {
        let mut st = self.lock_st();
        loop {
            if st.failure.is_some() {
                return false;
            }
            if st.running == Some(me) {
                return true;
            }
            let cv = Arc::clone(&st.threads[me].cv);
            st = cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Kick off scheduling once the root thread is registered.
    fn start(&self) {
        let mut st = self.lock_st();
        if !st.started {
            st.started = true;
            self.pick_next(&mut st);
        }
    }

    /// Block the *run caller* (not a simulated thread) until every
    /// simulated thread is done, then return the verdict.
    fn wait_done(&self) -> Option<SimError> {
        let mut st = self.lock_st();
        while st.live > 0 {
            st = self.done_cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st.failure.clone()
    }

    fn take_handles(&self) -> Vec<std::thread::JoinHandle<()>> {
        std::mem::take(&mut self.lock_st().os_handles)
    }

    fn snapshot(&self) -> (u64, u64, ScheduleTrace) {
        let st = self.lock_st();
        (st.steps, st.clock, st.trace.clone())
    }
}

impl Host for SimHost {
    fn now(&self) -> u64 {
        self.lock_st().clock
    }

    fn cpu_id(&self) -> usize {
        self.my_tid() % self.cfg.cores
    }

    fn cores(&self) -> usize {
        self.cfg.cores
    }

    fn current_id(&self) -> u64 {
        self.my_tid() as u64
    }

    fn thread_seed(&self) -> u64 {
        let s = stream_seed(self.cfg.seed, self.my_tid() as u32 | 0x5150_0000);
        if s == 0 {
            0xA5A5_0001
        } else {
            s
        }
    }

    fn spin_hint(&self, site: SpinSite) {
        self.switch(Ev::Spin(site));
    }

    fn spin_batch(&self, hints: u32) {
        self.switch(Ev::SpinBatch(hints));
    }

    fn yield_now(&self) {
        self.switch(Ev::Yield);
    }

    fn sleep(&self, d: Duration) {
        self.switch(Ev::Sleep(d.as_nanos() as u64));
    }

    fn advance(&self, work_ns: u64) {
        self.switch(Ev::Advance(work_ns));
    }

    fn park(&self) {
        self.switch(Ev::Park { until: None });
    }

    fn park_timeout(&self, d: Duration) {
        self.switch(Ev::Park {
            until: Some(d.as_nanos() as u64),
        });
    }

    fn unpark(&self, id: u64) {
        let id = id as usize;
        {
            let mut st = self.lock_st();
            if st.failure.is_some() {
                return;
            }
            match st.threads.get_mut(id) {
                Some(t) => match t.status {
                    Status::Parked { .. } => t.status = Status::Ready,
                    Status::Done => {}
                    // Running/ready/sleeping/joining: store the permit,
                    // exactly like std's `Thread::unpark`.
                    _ => t.permit = true,
                },
                None => return,
            }
        }
        // If the *caller* is a simulated thread, the wakeup is also a
        // scheduling point — the scheduler may preempt the waker right
        // here, which is precisely the window lost-wakeup races live in.
        if SIM_TID.with(|t| t.get()).is_some() {
            self.switch(Ev::Yield);
        }
    }

    fn spawn(&self, body: Box<dyn FnOnce() + Send>) -> u64 {
        let id = self.spawn_thread(body);
        // Spawning is a scheduling point: the child may run first.
        self.switch(Ev::Yield);
        id as u64
    }

    fn join(&self, id: u64) {
        loop {
            {
                let st = self.lock_st();
                if st.failure.is_some() {
                    drop(st);
                    self.abort();
                }
                if st.threads[id as usize].status == Status::Done {
                    return;
                }
            }
            self.switch(Ev::JoinOn(id as usize));
        }
    }

    fn lock_acquired(&self, site: SpinSite) {
        // Cost-model hook only: charges the handoff invalidation for
        // shared-line locks, but is not a scheduling point (acquisition
        // already yielded while spinning).
        if let SpinSite::SharedLine(line) = site {
            let me = self.my_tid();
            let mut st = self.lock_st();
            if st.failure.is_some() {
                return;
            }
            let k = self.spinners_on(&st, line, me);
            st.threads[me].spin_line = None;
            let cost = self.cfg.cost.acquire_ns * k;
            if cost > 0 {
                self.charge(&mut st, cost);
            }
        } else {
            let me = self.my_tid();
            self.lock_st().threads[me].spin_line = None;
        }
    }

    fn describe(&self) -> String {
        let (steps, clock, trace) = self.snapshot();
        let token = self.replay_token();
        format!(
            "machk-sim host: cores={} seed={:#018x} step={} virtual-t={}ns\n\
             replay token: {}\n\
             schedule tail: [{}]",
            self.cfg.cores,
            self.cfg.seed,
            steps,
            clock,
            token,
            trace.tail(self.cfg.trace_tail),
        )
    }
}

/// Body wrapper run on every carrier OS thread.
fn thread_main(host: Arc<SimHost>, id: usize, body: Box<dyn FnOnce() + Send>) {
    host::set_thread_host(Some(host.clone() as Arc<dyn Host>));
    SIM_TID.with(|t| t.set(Some(id)));
    if !host.wait_first_schedule(id) {
        host.finish(id, None);
        return;
    }
    match catch_unwind(AssertUnwindSafe(body)) {
        Ok(()) => host.finish(id, None),
        Err(payload) => {
            if payload.is::<Abort>() {
                host.finish(id, None);
            } else {
                let msg = payload
                    .downcast_ref::<&'static str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                host.finish(id, Some(msg));
            }
        }
    }
}

/// Run `f` as the root thread of a fresh simulated host under `cfg`,
/// with seeded random scheduling.
pub fn run<R, F>(cfg: &SimConfig, f: F) -> Result<SimReport<R>, SimError>
where
    F: FnOnce() -> R + Send + 'static,
    R: Send + 'static,
{
    run_inner(cfg, SchedMode::Random, Vec::new(), f)
}

/// Replay a previous run byte-for-byte from its token. `cfg` supplies
/// the cost model and step budget (which must match the original run's
/// for exact replay); seed, cores, mode, and the forced prefix come
/// from the token.
pub fn replay<R, F>(cfg: &SimConfig, token: &ReplayToken, f: F) -> Result<SimReport<R>, SimError>
where
    F: FnOnce() -> R + Send + 'static,
    R: Send + 'static,
{
    let cfg = cfg.with_seed(token.seed).with_cores(token.cores);
    run_inner(&cfg, token.mode, token.forced.clone(), f)
}

/// Run with a forced choice prefix in a given mode (DFS exploration).
pub(crate) fn run_inner<R, F>(
    cfg: &SimConfig,
    mode: SchedMode,
    forced: Vec<u8>,
    f: F,
) -> Result<SimReport<R>, SimError>
where
    F: FnOnce() -> R + Send + 'static,
    R: Send + 'static,
{
    let host = Arc::new_cyclic(|me| SimHost::new(*cfg, mode, forced, me.clone()));
    let value: Arc<Mutex<Option<R>>> = Arc::new(Mutex::new(None));
    let slot = Arc::clone(&value);
    host.spawn_thread(Box::new(move || {
        let r = f();
        *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(r);
    }));
    host.start();
    let failure = host.wait_done();
    for handle in host.take_handles() {
        // Carrier threads never propagate panics (the wrapper catches
        // everything), so join cannot fail meaningfully.
        let _ = handle.join();
    }
    let (steps, clock_ns, trace) = host.snapshot();
    match failure {
        Some(err) => Err(err),
        None => {
            let value = value
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .expect("root thread finished without storing its value");
            Ok(SimReport {
                value,
                steps,
                clock_ns,
                trace,
                token: host.replay_token(),
            })
        }
    }
}
