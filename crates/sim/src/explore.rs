//! Schedule exploration: seeded random walks and bounded-exhaustive DFS.
//!
//! Two complementary strategies over the same deterministic scheduler:
//!
//! * **Random walks** ([`random_walks`]): each run draws a fresh seed
//!   from the base seed's stream and schedules uniformly at random over
//!   the runnable set at every step. Cheap, covers long interleavings,
//!   finds "needs many threads" bugs.
//! * **Bounded-exhaustive DFS** ([`dfs`]): systematic enumeration with
//!   *iterative context bounding* (the CHESS insight): the scheduler's
//!   default tail is non-preemptive (keep running the current thread),
//!   and the explorer injects divergences only through a forced choice
//!   prefix, bounded in depth and in the number of *preemptive* choices.
//!   Most concurrency bugs need very few preemptions, so a small bound
//!   covers the interesting space exhaustively.
//!
//! Both record every distinct schedule (by trace hash) and carry each
//! failure's [`ReplayToken`], so any hit reproduces byte-for-byte.

use std::collections::HashSet;

use machk_fault::plan::stream_seed;

use crate::config::{ReplayToken, SchedMode, SimConfig, NOT_RUNNABLE};
use crate::sched::{run_inner, SimError};

/// Bounds for [`dfs`] exploration.
#[derive(Clone, Copy, Debug)]
pub struct DfsBounds {
    /// Only branch on scheduling decisions earlier than this step.
    pub depth: usize,
    /// Maximum preemptive choices per schedule (context bound).
    pub max_preemptions: u32,
    /// Hard cap on total runs (the bounded tree can still be large).
    pub max_runs: usize,
}

impl DfsBounds {
    /// Modest defaults: branch within the first 40 steps, at most two
    /// preemptions, at most 2000 runs.
    pub const DEFAULT: DfsBounds = DfsBounds {
        depth: 40,
        max_preemptions: 2,
        max_runs: 2000,
    };
}

impl Default for DfsBounds {
    fn default() -> Self {
        DfsBounds::DEFAULT
    }
}

/// Aggregate results of an exploration campaign.
#[derive(Debug, Default)]
pub struct ExploreStats {
    /// Runs executed.
    pub runs: usize,
    /// Distinct schedules seen (by chosen-thread-sequence hash).
    pub distinct: usize,
    /// Deadlocks + step-limit hits (a real host would have hung).
    pub hangs: usize,
    /// Scenario panics (assertion failures under some schedule).
    pub panics: usize,
    /// Total scheduling steps across all runs.
    pub steps_total: u64,
    /// Total virtual nanoseconds across all runs.
    pub virtual_ns_total: u64,
    /// First few failures, each replayable from its token.
    pub failures: Vec<SimError>,
    seen: HashSet<u64>,
}

/// How many failures [`ExploreStats::failures`] retains.
const KEEP_FAILURES: usize = 8;

impl ExploreStats {
    fn absorb<R>(&mut self, outcome: &Result<crate::sched::SimReport<R>, SimError>) {
        self.runs += 1;
        match outcome {
            Ok(report) => {
                if self.seen.insert(report.trace.hash()) {
                    self.distinct += 1;
                }
                self.steps_total += report.steps;
                self.virtual_ns_total += report.clock_ns;
            }
            Err(err) => {
                if self.seen.insert(err.trace().hash()) {
                    self.distinct += 1;
                }
                match err {
                    SimError::Deadlock { .. } | SimError::StepLimit { .. } => self.hangs += 1,
                    SimError::Panicked { .. } => self.panics += 1,
                }
                if self.failures.len() < KEEP_FAILURES {
                    self.failures.push(err.clone());
                }
            }
        }
    }

    /// Merge another campaign's stats into this one (distinct-schedule
    /// sets union, so shared schedules are not double counted).
    pub fn merge(&mut self, other: ExploreStats) {
        self.runs += other.runs;
        self.hangs += other.hangs;
        self.panics += other.panics;
        self.steps_total += other.steps_total;
        self.virtual_ns_total += other.virtual_ns_total;
        for h in other.seen {
            if self.seen.insert(h) {
                self.distinct += 1;
            }
        }
        for f in other.failures {
            if self.failures.len() < KEEP_FAILURES {
                self.failures.push(f);
            }
        }
    }

    /// True when no schedule hung or panicked.
    pub fn clean(&self) -> bool {
        self.hangs == 0 && self.panics == 0
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "runs={} distinct={} hangs={} panics={} steps={} virtual={}us",
            self.runs,
            self.distinct,
            self.hangs,
            self.panics,
            self.steps_total,
            self.virtual_ns_total / 1_000
        )
    }
}

/// Run `walks` seeded random-walk schedules of the scenario built by
/// `mk` (called once per run with the walk index; it must return a
/// fresh, self-contained scenario closure).
pub fn random_walks<G, F>(cfg: &SimConfig, walks: usize, mut mk: G) -> ExploreStats
where
    G: FnMut(usize) -> F,
    F: FnOnce() + Send + 'static,
{
    let mut stats = ExploreStats::default();
    for i in 0..walks {
        let seed = stream_seed(cfg.seed, i as u32);
        let cfg_i = cfg.with_seed(if seed == 0 { 1 } else { seed });
        let outcome = run_inner(&cfg_i, SchedMode::Random, Vec::new(), mk(i));
        stats.absorb(&outcome);
    }
    stats
}

/// Bounded-exhaustive DFS over schedules of the scenario built by `mk`,
/// within `bounds`. The scheduler runs non-preemptively beyond each
/// forced prefix, so the tree enumerated is exactly "schedules with at
/// most `max_preemptions` preemptions among the first `depth` choices".
pub fn dfs<G, F>(cfg: &SimConfig, bounds: DfsBounds, mut mk: G) -> ExploreStats
where
    G: FnMut(usize) -> F,
    F: FnOnce() + Send + 'static,
{
    let mut stats = ExploreStats::default();
    // LIFO work stack of forced prefixes — deepest-first, like the call
    // stack of a recursive DFS.
    let mut work: Vec<Vec<u8>> = vec![Vec::new()];
    while let Some(prefix) = work.pop() {
        if stats.runs >= bounds.max_runs {
            break;
        }
        let outcome = run_inner(cfg, SchedMode::Dfs, prefix.clone(), mk(stats.runs));
        stats.absorb(&outcome);
        let trace = match &outcome {
            Ok(report) => &report.trace,
            Err(err) => err.trace(),
        };
        // Branch at every decision at or beyond this prefix (earlier
        // positions were branched by ancestors), within the depth bound.
        let horizon = trace.choices.len().min(bounds.depth);
        // Preemptions inside the prefix itself, accumulated as we sweep.
        let mut preempt_before: u32 = trace
            .choices
            .iter()
            .zip(&trace.prev_index)
            .take(prefix.len())
            .filter(|&(&c, &p)| p != NOT_RUNNABLE && c != p)
            .count() as u32;
        for p in prefix.len()..horizon {
            let width = trace.widths[p];
            let taken = trace.choices[p];
            let prev = trace.prev_index[p];
            for alt in 0..width {
                if alt == taken {
                    continue;
                }
                let is_preempt = prev != NOT_RUNNABLE && alt != prev;
                if preempt_before + u32::from(is_preempt) > bounds.max_preemptions {
                    continue;
                }
                let mut next = Vec::with_capacity(p + 1);
                next.extend_from_slice(&trace.choices[..p]);
                next.push(alt);
                work.push(next);
            }
            preempt_before += u32::from(prev != NOT_RUNNABLE && taken != prev);
            if preempt_before > bounds.max_preemptions {
                break;
            }
        }
    }
    stats
}

/// The token that replays DFS run `prefix` under `cfg` (exposed for
/// reporting; [`SimError`] already carries it on failures).
pub fn dfs_token(cfg: &SimConfig, prefix: &[u8]) -> ReplayToken {
    ReplayToken {
        seed: cfg.seed,
        cores: cfg.cores,
        mode: SchedMode::Dfs,
        forced: prefix.to_vec(),
    }
}
