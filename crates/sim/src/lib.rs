//! # machk-sim — deterministic virtual-time simulation of N-core hosts
//!
//! The paper's claims are about *interleavings*: a ref-count race only
//! bites when a release and a lookup interleave just so (§6), a
//! deactivation deadlock needs the VM path and the deactivation path to
//! meet in one window (§7). Real hosts explore interleavings by luck;
//! this crate explores them on purpose.
//!
//! It provides a [`Host`](machk_sync::Host) implementation — [`SimHost`]
//! — that runs the whole sync stack (`machk-sync`, `machk-lock`,
//! `machk-event`, `machk-intr`, `machk-fault`) unchanged on:
//!
//! * **simulated N cores** on any box (cores = 8/32/64 is a config
//!   field, not hardware),
//! * a **virtual clock** that advances only at scheduling points, with a
//!   cost model charging cache-coherence penalties to shared-line
//!   spinning — so the queued-vs-word-lock crossover of §2/E1 shows up
//!   at 8 simulated cores and vanishes at 1,
//! * a **seeded scheduler** that decides who runs at every spin, yield,
//!   sleep, park, and spawn, making a run a pure function of
//!   `(seed, cores, program)` — any failure replays byte-for-byte from
//!   its printed [`ReplayToken`],
//! * **exploration drivers** ([`random_walks`], [`dfs`]) that sweep
//!   thousands of distinct schedules, bounded-exhaustively or at random,
//!   and report every hang or assertion failure with its token.
//!
//! ## Example
//!
//! ```
//! use machk_sim::{run, SimConfig};
//! use std::sync::Arc;
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! let report = run(&SimConfig::DEFAULT.with_cores(8), || {
//!     let n = Arc::new(AtomicU64::new(0));
//!     let tokens: Vec<_> = (0..4)
//!         .map(|_| {
//!             let n = n.clone();
//!             machk_sync::host::spawn(move || {
//!                 n.fetch_add(1, Ordering::Relaxed);
//!             })
//!         })
//!         .collect();
//!     for t in tokens {
//!         machk_sync::host::join(t);
//!     }
//!     n.load(Ordering::Relaxed)
//! })
//! .unwrap();
//! assert_eq!(report.value, 4);
//! ```
//!
//! Deadlocks cannot hang the test process: a state with no runnable
//! thread and no pending timer returns [`SimError::Deadlock`]
//! immediately, and spin livelocks hit the step budget
//! ([`SimError::StepLimit`]). Virtual-time sleeps are free, so watchdog
//! deadlines measured in seconds expire in microseconds of real time.

pub mod config;
pub mod explore;
pub mod sched;

pub use config::{
    BadReplayToken, CostModel, ReplayToken, SchedMode, ScheduleTrace, SimConfig, NOT_RUNNABLE,
};
pub use explore::{dfs, dfs_token, random_walks, DfsBounds, ExploreStats};
pub use sched::{replay, run, SimError, SimHost, SimReport};

#[cfg(test)]
mod tests {
    use super::*;
    use machk_sync::host;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    fn cfg() -> SimConfig {
        SimConfig::DEFAULT
    }

    #[test]
    fn single_thread_completes() {
        let r = run(&cfg(), || 41 + 1).unwrap();
        assert_eq!(r.value, 42);
        assert!(r.steps >= 1);
        assert!(!r.trace.tids.is_empty());
    }

    #[test]
    fn spawn_and_join_children() {
        let r = run(&cfg(), || {
            let n = Arc::new(AtomicU64::new(0));
            let ts: Vec<_> = (0..5)
                .map(|i| {
                    let n = n.clone();
                    host::spawn(move || {
                        n.fetch_add(i, Ordering::Relaxed);
                    })
                })
                .collect();
            for t in ts {
                host::join(t);
            }
            n.load(Ordering::Relaxed)
        })
        .unwrap();
        assert_eq!(r.value, 1 + 2 + 3 + 4);
    }

    #[test]
    fn identical_seed_identical_schedule() {
        let scenario = || {
            let n = Arc::new(AtomicU64::new(0));
            let ts: Vec<_> = (0..4)
                .map(|_| {
                    let n = n.clone();
                    host::spawn(move || {
                        for _ in 0..8 {
                            n.fetch_add(1, Ordering::Relaxed);
                            host::yield_now();
                        }
                    })
                })
                .collect();
            for t in ts {
                host::join(t);
            }
            n.load(Ordering::Relaxed)
        };
        let a = run(&cfg().with_seed(77), scenario).unwrap();
        let b = run(&cfg().with_seed(77), scenario).unwrap();
        assert_eq!(a.trace.tids, b.trace.tids, "same seed, same schedule");
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.clock_ns, b.clock_ns);
        let c = run(&cfg().with_seed(78), scenario).unwrap();
        assert_ne!(
            a.trace.tids, c.trace.tids,
            "different seed should pick a different interleaving here"
        );
    }

    #[test]
    fn virtual_sleep_is_instant_and_charged() {
        let r = run(&cfg(), || {
            host::sleep(Duration::from_secs(5));
        })
        .unwrap();
        assert!(r.clock_ns >= 5_000_000_000, "clock advanced by the sleep");
        // Real time is not asserted, but the test itself finishing is
        // the point: a 5s virtual sleep costs one scheduling step.
    }

    #[test]
    fn parked_everyone_is_a_deadlock_not_a_hang() {
        let err = run(&cfg(), || {
            let t = host::spawn(|| {
                host::park(); // nobody will unpark us
            });
            host::join(t);
        })
        .unwrap_err();
        match &err {
            SimError::Deadlock { blocked, .. } => {
                assert!(blocked.iter().any(|b| b.contains("parked")), "{blocked:?}");
            }
            other => panic!("expected Deadlock, got {other:?}"),
        }
        // The error is replayable and printable.
        let shown = err.to_string();
        assert!(shown.contains("replay=sim:v1:"), "{shown}");
    }

    #[test]
    fn spin_livelock_hits_step_limit() {
        let mut c = cfg();
        c.max_steps = 2_000;
        let err = run(&c, || {
            let never = AtomicU64::new(0);
            while never.load(Ordering::Acquire) == 0 {
                host::spin_hint(machk_sync::SpinSite::Generic);
            }
        })
        .unwrap_err();
        assert!(matches!(err, SimError::StepLimit { .. }), "{err:?}");
    }

    #[test]
    fn unpark_before_park_leaves_permit() {
        let r = run(&cfg(), || {
            let me = host::current_host().unwrap().current_id();
            let t = host::spawn(move || {
                host::current_host().unwrap().unpark(me);
            });
            host::join(t);
            host::park(); // consumes the stored permit; must not block
            7u32
        })
        .unwrap();
        assert_eq!(r.value, 7);
    }

    #[test]
    fn park_timeout_wakes_by_timer() {
        let r = run(&cfg(), || {
            host::park_timeout(Duration::from_millis(3));
            host::now()
        })
        .unwrap();
        assert!(r.value >= 3_000_000);
    }

    #[test]
    fn scenario_panic_is_reported_with_replay_token() {
        let err = run(&cfg(), || {
            let t = host::spawn(|| {
                panic!("deliberate scenario failure");
            });
            host::join(t);
        })
        .unwrap_err();
        match &err {
            SimError::Panicked { message, token, .. } => {
                assert!(message.contains("deliberate"), "{message}");
                // Round-trip the token through its printed form.
                let reparsed: ReplayToken = token.to_string().parse().unwrap();
                assert_eq!(&reparsed, token);
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
    }

    #[test]
    fn failing_run_replays_byte_for_byte() {
        let scenario = || {
            let t = host::spawn(|| {
                host::park();
            });
            host::join(t);
        };
        let err = run(&cfg().with_seed(1234), scenario).unwrap_err();
        let err2 = replay(&cfg(), err.token(), scenario).unwrap_err();
        assert_eq!(err.trace().tids, err2.trace().tids);
        assert_eq!(err.kind(), err2.kind());
    }

    #[test]
    fn thread_seeds_are_stable_and_distinct() {
        let r = run(&cfg(), || {
            let mine = host::thread_seed();
            let t = host::spawn(move || {
                assert_ne!(host::thread_seed(), mine);
                assert_ne!(host::thread_seed(), 0);
            });
            host::join(t);
            mine
        })
        .unwrap();
        let r2 = run(&cfg(), host::thread_seed).unwrap();
        assert_eq!(r.value, r2.value, "seed derives from (sim seed, tid) only");
    }

    #[test]
    fn cores_and_cpu_ids_visible() {
        let r = run(&cfg().with_cores(32), || {
            let h = host::current_host().unwrap();
            (h.cores(), h.cpu_id())
        })
        .unwrap();
        assert_eq!(r.value.0, 32);
        assert!(r.value.1 < 32);
    }

    /// Two threads race a check-then-act on a shared cell; only a
    /// preemption inside the window trips the double-write. DFS with a
    /// 1-preemption budget must find it, and the failure must replay.
    #[test]
    fn dfs_finds_check_then_act_race() {
        fn scenario() -> impl FnOnce() + Send + 'static {
            move || {
                let cell = Arc::new(AtomicU64::new(0));
                let claims = Arc::new(AtomicU64::new(0));
                let ts: Vec<_> = (0..2)
                    .map(|_| {
                        let cell = cell.clone();
                        let claims = claims.clone();
                        host::spawn(move || {
                            if cell.load(Ordering::SeqCst) == 0 {
                                host::yield_now(); // the racy window
                                cell.store(1, Ordering::SeqCst);
                                claims.fetch_add(1, Ordering::SeqCst);
                            }
                        })
                    })
                    .collect();
                for t in ts {
                    host::join(t);
                }
                assert!(
                    claims.load(Ordering::SeqCst) <= 1,
                    "both threads claimed the cell"
                );
            }
        }
        let stats = dfs(
            &cfg(),
            DfsBounds {
                depth: 30,
                max_preemptions: 1,
                max_runs: 500,
            },
            |_| scenario(),
        );
        assert!(stats.panics > 0, "DFS must expose the race: {}", stats.summary());
        assert_eq!(stats.hangs, 0, "{}", stats.summary());
        assert!(stats.distinct > 1, "{}", stats.summary());
        // And the recorded failure replays to the same verdict.
        let failure = &stats.failures[0];
        let again = replay(&cfg(), failure.token(), scenario()).unwrap_err();
        assert_eq!(failure.trace().tids, again.trace().tids);
        assert!(matches!(again, SimError::Panicked { .. }));
    }

    #[test]
    fn random_walks_cover_distinct_schedules() {
        let stats = random_walks(&cfg().with_seed(9), 64, |_| {
            || {
                let n = Arc::new(AtomicU64::new(0));
                let ts: Vec<_> = (0..3)
                    .map(|_| {
                        let n = n.clone();
                        host::spawn(move || {
                            for _ in 0..4 {
                                n.fetch_add(1, Ordering::Relaxed);
                                host::yield_now();
                            }
                        })
                    })
                    .collect();
                for t in ts {
                    host::join(t);
                }
            }
        });
        assert!(stats.clean(), "{}", stats.summary());
        assert_eq!(stats.runs, 64);
        assert!(stats.distinct > 32, "walks explore: {}", stats.summary());
    }

    #[test]
    fn coherence_cost_scales_with_cores() {
        // The same spin-heavy program must cost more virtual time per
        // step at 1 core (no parallelism) than at 8 (steps divided by
        // eff), while shared-line spinning at 8 cores pays coherence
        // that a single core never sees. Just sanity-check both run and
        // produce different clocks.
        let scenario = || {
            let ts: Vec<_> = (0..4)
                .map(|_| {
                    host::spawn(|| {
                        for _ in 0..50 {
                            host::spin_hint(machk_sync::SpinSite::SharedLine(0x1000));
                        }
                    })
                })
                .collect();
            for t in ts {
                host::join(t);
            }
        };
        let one = run(&cfg().with_cores(1).with_seed(5), scenario).unwrap();
        let eight = run(&cfg().with_cores(8).with_seed(5), scenario).unwrap();
        assert_ne!(one.clock_ns, eight.clock_ns);
    }

    #[test]
    fn describe_contains_replay_token() {
        let r = run(&cfg(), || host::describe().unwrap()).unwrap();
        assert!(r.value.contains("machk-sim host"), "{}", r.value);
        assert!(r.value.contains("replay token: sim:v1:"), "{}", r.value);
    }
}
