//! Stress tests for the simulated multiprocessor: interrupt storms,
//! repeated barriers, nested spl, and timer interaction.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use machk_intr::{
    barrier_synchronize, spl_raise, spl_restore, BarrierOutcome, Machine, SplLevel, TimeKind,
    TimerBank,
};

#[test]
fn interrupt_storm_delivers_everything() {
    let machine = Arc::new(Machine::new(2));
    const N: usize = 2_000;
    let delivered = Arc::new(AtomicUsize::new(0));
    machine.run(|cpu| {
        if cpu.id() == 0 {
            // Bombard CPU 1.
            for i in 0..N {
                let d = Arc::clone(&delivered);
                let level = SplLevel::ALL[1 + (i % 5)];
                machine.cpu(1).post_interrupt(level, move || {
                    d.fetch_add(1, Ordering::Relaxed);
                });
            }
        } else {
            while delivered.load(Ordering::Relaxed) < N {
                cpu.poll();
                std::thread::yield_now();
            }
        }
    });
    assert_eq!(delivered.load(Ordering::Relaxed), N);
    assert_eq!(machine.cpu(1).interrupts_taken(), N as u64);
}

#[test]
fn repeated_barriers_all_complete() {
    let machine = Arc::new(Machine::new(3));
    const ROUNDS: usize = 50;
    let done = Arc::new(AtomicBool::new(false));
    let ran = Arc::new(AtomicUsize::new(0));
    let outcomes = machine.run(|cpu| {
        if cpu.id() == 0 {
            let mut completed = 0;
            for _ in 0..ROUNDS {
                let ran = Arc::clone(&ran);
                let action: Arc<dyn Fn(usize) + Send + Sync> = Arc::new(move |_| {
                    ran.fetch_add(1, Ordering::Relaxed);
                });
                if barrier_synchronize(&machine, action, &[], Duration::from_secs(30))
                    == BarrierOutcome::Completed
                {
                    completed += 1;
                }
            }
            done.store(true, Ordering::SeqCst);
            completed
        } else {
            while !done.load(Ordering::SeqCst) {
                cpu.poll();
                std::thread::yield_now();
            }
            0
        }
    });
    assert_eq!(outcomes[0], ROUNDS);
    assert_eq!(ran.load(Ordering::Relaxed), ROUNDS * 3);
}

#[test]
fn nested_spl_sections_restore_exactly() {
    let machine = Machine::new(1);
    machine.run(|cpu| {
        assert_eq!(cpu.spl(), SplLevel::Spl0);
        let a = spl_raise(SplLevel::SplNet);
        let b = spl_raise(SplLevel::SplVm);
        let c = spl_raise(SplLevel::SplHigh);
        assert_eq!(cpu.spl(), SplLevel::SplHigh);
        spl_restore(c);
        assert_eq!(cpu.spl(), SplLevel::SplVm);
        spl_restore(b);
        assert_eq!(cpu.spl(), SplLevel::SplNet);
        spl_restore(a);
        assert_eq!(cpu.spl(), SplLevel::Spl0);
    });
}

#[test]
fn masked_interrupts_queue_and_drain_in_priority_order() {
    let machine = Machine::new(1);
    let order = Arc::new(std::sync::Mutex::new(Vec::new()));
    machine.run(|cpu| {
        let tok = spl_raise(SplLevel::SplHigh);
        for (name, level) in [
            ("net", SplLevel::SplNet),
            ("clock", SplLevel::SplClock),
            ("soft", SplLevel::SplSoftClock),
            ("sched", SplLevel::SplSched),
        ] {
            let order = Arc::clone(&order);
            cpu.post_interrupt(level, move || order.lock().unwrap().push(name));
        }
        assert!(order.lock().unwrap().is_empty(), "all masked");
        spl_restore(tok); // drains highest-first
    });
    assert_eq!(
        *order.lock().unwrap(),
        vec!["sched", "clock", "net", "soft"]
    );
}

#[test]
fn timers_tick_under_interrupt_load() {
    // Clock interrupts drive the usage timers, as in the real kernel.
    let machine = Arc::new(Machine::new(2));
    let bank = Arc::new(TimerBank::new(2));
    const TICKS: usize = 500;
    machine.run(|cpu| {
        // Post ourselves clock interrupts and take them; the handler
        // runs on this CPU, so it is the single writer.
        for _ in 0..TICKS {
            let bank = Arc::clone(&bank);
            cpu.post_interrupt(SplLevel::SplClock, move || {
                bank.tick_current(TimeKind::System, 10);
            });
            cpu.poll();
        }
    });
    let t = bank.totals();
    assert_eq!(t.ticks, 2 * TICKS as u64);
    assert_eq!(t.system_us, 2 * TICKS as u64 * 10);
}
