//! Simulated CPUs and the machine that owns them.
//!
//! A [`Cpu`] is a record an OS thread binds to with [`Cpu::enter`]; the
//! thread then *is* that processor for spl and interrupt purposes.
//! Interrupts posted to a CPU wait in a queue until the bound thread
//! reaches a delivery point ([`Cpu::poll`], an spl lowering, or an
//! interrupt-aware spin) with its spl below the interrupt's level.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

use machk_sync::host;
use machk_sync::SimpleLocked;

use crate::spl::SplLevel;

/// A posted interrupt: a priority level and a handler to run on the
/// target CPU.
struct Pending {
    level: SplLevel,
    handler: Box<dyn FnOnce() + Send>,
}

/// One simulated processor.
pub struct Cpu {
    id: usize,
    spl: AtomicU8,
    queue: SimpleLocked<Vec<Pending>>,
    /// Count of interrupts taken (diagnostics / tests).
    taken: AtomicU64,
}

std::thread_local! {
    static CURRENT: RefCell<Option<Arc<Cpu>>> = const { RefCell::new(None) };
}

impl Cpu {
    fn new(id: usize) -> Arc<Cpu> {
        Arc::new(Cpu {
            id,
            spl: AtomicU8::new(SplLevel::Spl0 as u8),
            queue: SimpleLocked::new(Vec::new()),
            taken: AtomicU64::new(0),
        })
    }

    /// This CPU's index within its machine.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Bind the calling thread to this CPU until the guard drops.
    ///
    /// Panics if the thread is already bound (a thread is one processor
    /// at a time) — but note a CPU may only be driven by one thread at a
    /// time; binding the same CPU from two threads is a usage error the
    /// simulation does not police.
    pub fn enter(self: &Arc<Self>) -> CpuGuard {
        CURRENT.with(|c| {
            let mut cur = c.borrow_mut();
            assert!(cur.is_none(), "thread already bound to a CPU");
            *cur = Some(Arc::clone(self));
        });
        CpuGuard { _private: () }
    }

    /// Current spl level.
    pub fn spl(&self) -> SplLevel {
        // relaxed: the spl word is written only by the CPU's bound
        // thread; cross-thread readers get an advisory snapshot.
        SplLevel::from_u8(self.spl.load(Ordering::Relaxed))
    }

    pub(crate) fn raise_spl(&self, level: SplLevel) -> SplLevel {
        // relaxed: spl raise/restore is same-thread state — only the
        // bound thread mutates its own CPU's level, so program order
        // is the only ordering required.
        let old = SplLevel::from_u8(self.spl.load(Ordering::Relaxed));
        if level > old {
            self.spl.store(level as u8, Ordering::Relaxed); // relaxed: same-thread
        }
        old
    }

    pub(crate) fn set_spl(&self, level: SplLevel) {
        // relaxed: same-thread store, as in raise_spl.
        self.spl.store(level as u8, Ordering::Relaxed);
    }

    /// Number of interrupts this CPU has taken (diagnostics).
    pub fn interrupts_taken(&self) -> u64 {
        // relaxed: monotone diagnostics counter.
        self.taken.load(Ordering::Relaxed)
    }

    /// Post an interrupt to this CPU. Non-blocking; callable from any
    /// thread. The handler runs on the CPU's bound thread at the
    /// interrupt's level, when that thread next reaches a delivery point
    /// with spl below `level`.
    pub fn post_interrupt(&self, level: SplLevel, handler: impl FnOnce() + Send + 'static) {
        self.queue.lock().push(Pending {
            level,
            handler: Box::new(handler),
        });
    }

    /// Whether any posted interrupt is deliverable at the current spl.
    pub fn interrupt_pending(&self) -> bool {
        let cur = self.spl();
        self.queue.lock().iter().any(|p| p.level > cur)
    }

    /// Delivery point: take and run every deliverable interrupt
    /// (highest level first), each at its own level. Must be called by
    /// the bound thread.
    pub fn poll(&self) {
        loop {
            let cur = self.spl();
            let next = {
                let mut q = self.queue.lock();
                // Highest-priority deliverable interrupt first.
                let mut best: Option<usize> = None;
                for (i, p) in q.iter().enumerate() {
                    if p.level > cur && best.is_none_or(|b| p.level > q[b].level) {
                        best = Some(i);
                    }
                }
                best.map(|i| q.swap_remove(i))
            };
            let Some(p) = next else { return };
            // relaxed: diagnostics counter.
            self.taken.fetch_add(1, Ordering::Relaxed);
            // Run the handler with spl raised to the interrupt level, as
            // a real interrupt service routine would.
            // relaxed: the spl swap/restore pair is same-thread (poll
            // runs on the bound thread); the queue mutex ordered the
            // handoff of the pending interrupt itself.
            let old = self.spl.swap(p.level as u8, Ordering::Relaxed);
            (p.handler)();
            self.spl.store(old, Ordering::Relaxed); // relaxed: same-thread restore
        }
    }
}

impl core::fmt::Debug for Cpu {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Cpu")
            .field("id", &self.id)
            .field("spl", &self.spl())
            .finish()
    }
}

/// Unbinds the thread from its CPU on drop.
pub struct CpuGuard {
    _private: (),
}

impl Drop for CpuGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            *c.borrow_mut() = None;
        });
    }
}

/// The CPU the calling thread is bound to, if any.
pub fn current_cpu() -> Option<Arc<Cpu>> {
    CURRENT.with(|c| c.borrow().clone())
}

/// The id of the CPU the calling thread is bound to, if any.
pub fn current_cpu_id() -> Option<usize> {
    current_cpu().map(|c| c.id())
}

/// A simulated multiprocessor: a fixed set of CPUs.
pub struct Machine {
    cpus: Vec<Arc<Cpu>>,
}

impl Machine {
    /// A machine with `n` CPUs (n ≥ 1).
    pub fn new(n: usize) -> Machine {
        assert!(n >= 1, "a machine needs at least one CPU");
        Machine {
            cpus: (0..n).map(Cpu::new).collect(),
        }
    }

    /// Number of CPUs.
    pub fn ncpus(&self) -> usize {
        self.cpus.len()
    }

    /// CPU `i`.
    pub fn cpu(&self, i: usize) -> &Arc<Cpu> {
        &self.cpus[i]
    }

    /// All CPUs.
    pub fn cpus(&self) -> &[Arc<Cpu>] {
        &self.cpus
    }

    /// Run one closure per CPU, each on its own thread bound to that
    /// CPU, and join them all (convenience for tests and experiments).
    ///
    /// Threads come from the ambient [`machk_sync::host`]: with no host
    /// installed this is `std::thread::scope` on OS threads, unchanged;
    /// under a simulated host (machk-sim) the vCPU threads are spawned
    /// through [`host::spawn`], so the whole machine — barriers,
    /// shootdowns, interrupt storms — runs on the deterministic
    /// scheduler and replays from its seed.
    pub fn run<R: Send>(&self, f: impl Fn(&Arc<Cpu>) -> R + Sync) -> Vec<R> {
        if host::current_host().is_none() {
            return std::thread::scope(|s| {
                let handles: Vec<_> = self
                    .cpus
                    .iter()
                    .map(|cpu| {
                        let f = &f;
                        s.spawn(move || {
                            let _g = cpu.enter();
                            f(cpu)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
        }
        self.run_hosted(&f)
    }

    /// The hosted (simulated) spawn path of [`Machine::run`]: a
    /// hand-rolled scoped spawn, because [`host::spawn`] requires
    /// `'static` bodies while `run` deliberately accepts borrowing
    /// closures (every call site captures locks and flags by
    /// reference).
    fn run_hosted<R: Send>(&self, f: &(impl Fn(&Arc<Cpu>) -> R + Sync)) -> Vec<R> {
        type Slot<R> = Arc<std::sync::Mutex<Option<std::thread::Result<R>>>>;
        let slots: Vec<Slot<R>> = (0..self.cpus.len()).map(|_| Slot::default()).collect();
        let tokens: Vec<_> = self
            .cpus
            .iter()
            .zip(&slots)
            .map(|(cpu, slot)| {
                let cpu = Arc::clone(cpu);
                let slot = Arc::clone(slot);
                let body: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                    // Panics are captured into the slot (never unwound
                    // into the host runtime) and re-thrown after every
                    // vCPU joined — the same semantics thread::scope
                    // gives the OS path.
                    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let _g = cpu.enter();
                        f(&cpu)
                    }));
                    *slot.lock().unwrap() = Some(out);
                });
                // SAFETY: `body` borrows `f` (and `R` may borrow from
                // the caller), so its true lifetime is this stack
                // frame. Extending it to the `'static` that
                // `host::spawn` requires is sound because every token
                // is joined below before this frame returns: the body
                // has finished and been dropped while all its borrows
                // are still live. This is the classic scoped-spawn
                // contract, upheld manually.
                let body: Box<dyn FnOnce() + Send + 'static> =
                    unsafe { std::mem::transmute(body) };
                host::spawn(body)
            })
            .collect();
        for token in tokens {
            host::join(token);
        }
        slots
            .into_iter()
            .map(|slot| {
                match slot
                    .lock()
                    .unwrap()
                    .take()
                    .expect("joined vCPU left no result")
                {
                    Ok(r) => r,
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            })
            .collect()
    }
}

impl core::fmt::Debug for Machine {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Machine")
            .field("ncpus", &self.ncpus())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn binding_and_unbinding() {
        let m = Machine::new(2);
        assert!(current_cpu().is_none());
        {
            let _g = m.cpu(1).enter();
            assert_eq!(current_cpu_id(), Some(1));
        }
        assert!(current_cpu().is_none());
    }

    #[test]
    #[should_panic(expected = "already bound")]
    fn double_bind_panics() {
        let m = Machine::new(2);
        let _g1 = m.cpu(0).enter();
        let _g2 = m.cpu(1).enter();
    }

    #[test]
    fn interrupt_delivery_at_poll() {
        let m = Machine::new(1);
        let cpu = m.cpu(0);
        let _g = cpu.enter();
        let fired = Arc::new(AtomicUsize::new(0));
        let f = Arc::clone(&fired);
        cpu.post_interrupt(SplLevel::SplClock, move || {
            f.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(fired.load(Ordering::SeqCst), 0, "not delivered until poll");
        cpu.poll();
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        assert_eq!(cpu.interrupts_taken(), 1);
    }

    #[test]
    fn masked_interrupt_not_delivered() {
        let m = Machine::new(1);
        let cpu = m.cpu(0);
        let _g = cpu.enter();
        let fired = Arc::new(AtomicUsize::new(0));
        let f = Arc::clone(&fired);
        let tok = crate::spl::spl_raise(SplLevel::SplHigh);
        cpu.post_interrupt(SplLevel::SplClock, move || {
            f.fetch_add(1, Ordering::SeqCst);
        });
        cpu.poll();
        assert_eq!(fired.load(Ordering::SeqCst), 0, "masked at splhigh");
        assert!(!cpu.interrupt_pending(), "below current spl: not pending");
        // Lowering the level delivers it.
        crate::spl::spl_restore(tok);
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn handler_runs_at_interrupt_level() {
        let m = Machine::new(1);
        let cpu = m.cpu(0);
        let _g = cpu.enter();
        let seen = Arc::new(AtomicU8::new(0xff));
        let s = Arc::clone(&seen);
        let c2 = Arc::clone(cpu);
        cpu.post_interrupt(SplLevel::SplNet, move || {
            s.store(c2.spl() as u8, Ordering::SeqCst);
        });
        cpu.poll();
        assert_eq!(seen.load(Ordering::SeqCst), SplLevel::SplNet as u8);
        assert_eq!(cpu.spl(), SplLevel::Spl0, "level restored after handler");
    }

    #[test]
    fn higher_level_interrupt_delivered_first() {
        let m = Machine::new(1);
        let cpu = m.cpu(0);
        let _g = cpu.enter();
        let order = Arc::new(SimpleLocked::new(Vec::new()));
        let o1 = Arc::clone(&order);
        let o2 = Arc::clone(&order);
        cpu.post_interrupt(SplLevel::SplNet, move || o1.lock().push("net"));
        cpu.post_interrupt(SplLevel::SplClock, move || o2.lock().push("clock"));
        cpu.poll();
        assert_eq!(*order.lock(), vec!["clock", "net"]);
    }

    #[test]
    fn cross_thread_posting() {
        let m = Machine::new(2);
        let hits = Arc::new(AtomicUsize::new(0));
        let results = m.run(|cpu| {
            if cpu.id() == 0 {
                // Post to CPU 1 from CPU 0.
                let h = Arc::clone(&hits);
                m.cpu(1).post_interrupt(SplLevel::SplClock, move || {
                    h.fetch_add(1, Ordering::SeqCst);
                });
                0
            } else {
                // CPU 1 polls until the interrupt arrives.
                let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
                while hits.load(Ordering::SeqCst) == 0 {
                    assert!(std::time::Instant::now() < deadline);
                    cpu.poll();
                    std::hint::spin_loop();
                }
                1
            }
        });
        assert_eq!(results, vec![0, 1]);
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn machine_run_binds_each_thread() {
        let m = Machine::new(4);
        let ids = m.run(|cpu| {
            assert_eq!(current_cpu_id(), Some(cpu.id()));
            cpu.id()
        });
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }
}
