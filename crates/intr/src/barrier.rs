//! Interrupt-level barrier synchronization.
//!
//! The costly operation section 7 warns about: "all involved processors
//! must enter the interrupt service routine before any can leave." TLB
//! shootdown (in `machk-vm`) is its one sanctioned use.
//!
//! [`IntrBarrier`] is the rendezvous object. The initiator posts an IPI
//! to every *participating* CPU whose handler calls
//! [`IntrBarrier::arrive_and_wait`], then arrives itself. CPUs the
//! caller has *exempted* (the section-7 special logic for processors
//! holding or acquiring a lock the initiator holds) still get the
//! interrupt — carrying the action to perform — but are not counted in
//! the rendezvous.
//!
//! Every spin carries a deadline, so the section-7 deadlock — a CPU
//! sitting at high spl that never takes its IPI — surfaces as
//! [`BarrierOutcome::Deadlocked`] instead of hanging the simulation.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::cpu::{current_cpu, Machine};
use crate::spl::{spl_raise, spl_restore, SplLevel};
use crate::watchdog::Deadline;

/// Result of a barrier-synchronized operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BarrierOutcome {
    /// Every participant entered and left the rendezvous; the action ran
    /// on all interrupted CPUs.
    Completed,
    /// The rendezvous did not complete before the deadline — some
    /// participant never took its interrupt (the section-7 deadlock).
    Deadlocked,
}

/// The rendezvous all participants spin on.
pub struct IntrBarrier {
    needed: usize,
    arrived: AtomicUsize,
    failed: AtomicBool,
    deadline: Deadline,
}

impl IntrBarrier {
    /// A barrier expecting `needed` participants, giving up after
    /// `limit`.
    pub fn new(needed: usize, limit: Duration) -> Arc<IntrBarrier> {
        Arc::new(IntrBarrier {
            needed,
            arrived: AtomicUsize::new(0),
            failed: AtomicBool::new(false),
            deadline: Deadline::after(limit),
        })
    }

    /// Enter the rendezvous and spin until all participants have
    /// entered (or the deadline expires / another participant failed).
    pub fn arrive_and_wait(&self) -> BarrierOutcome {
        self.arrived.fetch_add(1, Ordering::AcqRel);
        let mut spins = 0u32;
        loop {
            // Failure wins over late completion: once any participant has
            // declared the rendezvous dead, stragglers (a masked CPU
            // finally taking its IPI) must not run the action.
            if self.failed.load(Ordering::Acquire) {
                return BarrierOutcome::Deadlocked;
            }
            if self.arrived.load(Ordering::Acquire) >= self.needed {
                return BarrierOutcome::Completed;
            }
            if self.deadline.expired() {
                self.failed.store(true, Ordering::Release);
                return BarrierOutcome::Deadlocked;
            }
            machk_sync::host::spin_hint(machk_sync::host::SpinSite::Generic);
            spins += 1;
            if spins >= 256 {
                // vCPUs are host threads; on an oversubscribed host the
                // other participants need CPU time to arrive.
                machk_sync::host::yield_now();
                spins = 0;
            }
        }
    }

    /// How many participants have entered (diagnostics).
    pub fn arrived(&self) -> usize {
        self.arrived.load(Ordering::Acquire)
    }
}

/// Perform `action` on every CPU of `machine` with barrier
/// synchronization at interrupt level, from the calling thread's CPU.
///
/// `exempt` lists CPU ids removed from the rendezvous (they still
/// receive the interrupt and run the action whenever they take it —
/// the paper's TLB-shootdown special logic). The initiator must be
/// bound to a CPU and must not be exempt.
///
/// The action runs on each CPU at IPI level; the initiator runs it
/// after the rendezvous completes, holding its spl at IPI level.
pub fn barrier_synchronize(
    machine: &Machine,
    action: Arc<dyn Fn(usize) + Send + Sync>,
    exempt: &[usize],
    limit: Duration,
) -> BarrierOutcome {
    let me = current_cpu().expect("barrier_synchronize: thread not bound to a CPU");
    assert!(
        !exempt.contains(&me.id()),
        "the initiating CPU cannot be exempt from its own barrier"
    );
    let participants = machine.ncpus() - exempt.iter().filter(|e| **e != me.id()).count();
    let barrier = IntrBarrier::new(participants, limit);

    for cpu in machine.cpus() {
        if cpu.id() == me.id() {
            continue;
        }
        let action = Arc::clone(&action);
        let id = cpu.id();
        if exempt.contains(&id) {
            // Exempted: interrupt still posted, action still performed,
            // but no rendezvous — "the TLB update is still posted for
            // that processor, and an interrupt is sent to it".
            cpu.post_interrupt(SplLevel::IPI, move || {
                action(id);
            });
        } else {
            let b = Arc::clone(&barrier);
            cpu.post_interrupt(SplLevel::IPI, move || {
                let outcome = b.arrive_and_wait();
                if outcome == BarrierOutcome::Completed {
                    action(id);
                }
            });
        }
    }

    // The initiator participates at IPI level (it must not take its own
    // barrier IPI recursively).
    let tok = spl_raise(SplLevel::IPI);
    let outcome = barrier.arrive_and_wait();
    if outcome == BarrierOutcome::Completed {
        action(me.id());
    }
    spl_restore(tok);
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::Machine;
    use crate::spl::spl_current;

    #[test]
    fn barrier_completes_on_responsive_machine() {
        let machine = Machine::new(4);
        let ran = Arc::new(AtomicUsize::new(0));
        let outcomes = machine.run(|cpu| {
            if cpu.id() == 0 {
                let ran = Arc::clone(&ran);
                let action: Arc<dyn Fn(usize) + Send + Sync> = Arc::new(move |_id| {
                    ran.fetch_add(1, Ordering::SeqCst);
                });
                Some(barrier_synchronize(
                    &machine,
                    action,
                    &[],
                    Duration::from_secs(10),
                ))
            } else {
                // Responsive CPU: polls at low spl until the barrier ran.
                while ran.load(Ordering::SeqCst) < 4 {
                    cpu.poll();
                    core::hint::spin_loop();
                }
                None
            }
        });
        assert_eq!(outcomes[0], Some(BarrierOutcome::Completed));
        assert_eq!(ran.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn barrier_deadlocks_when_a_cpu_is_masked() {
        // One CPU sits at splhigh and never takes its IPI: the barrier
        // must report a deadlock rather than hang.
        let machine = Machine::new(3);
        let ran = Arc::new(AtomicUsize::new(0));
        let done = Arc::new(AtomicBool::new(false));
        let outcomes = machine.run(|cpu| {
            match cpu.id() {
                0 => {
                    let ran = Arc::clone(&ran);
                    let action: Arc<dyn Fn(usize) + Send + Sync> = Arc::new(move |_| {
                        ran.fetch_add(1, Ordering::SeqCst);
                    });
                    let r = barrier_synchronize(&machine, action, &[], Duration::from_millis(200));
                    done.store(true, Ordering::SeqCst);
                    Some(r)
                }
                1 => {
                    // Masked CPU: interrupts disabled, never polls until
                    // the initiator gave up.
                    let tok = spl_raise(SplLevel::SplHigh);
                    while !done.load(Ordering::SeqCst) {
                        core::hint::spin_loop();
                    }
                    spl_restore(tok); // late delivery: handler sees failure
                    None
                }
                _ => {
                    // Responsive CPU.
                    while !done.load(Ordering::SeqCst) {
                        cpu.poll();
                        core::hint::spin_loop();
                    }
                    None
                }
            }
        });
        assert_eq!(outcomes[0], Some(BarrierOutcome::Deadlocked));
        assert_eq!(
            ran.load(Ordering::SeqCst),
            0,
            "action must not run partially"
        );
    }

    #[test]
    fn exempt_cpu_gets_action_without_rendezvous() {
        let machine = Machine::new(3);
        let ran = Arc::new(AtomicUsize::new(0));
        let outcomes = machine.run(|cpu| {
            match cpu.id() {
                0 => {
                    let ran = Arc::clone(&ran);
                    let action: Arc<dyn Fn(usize) + Send + Sync> = Arc::new(move |_| {
                        ran.fetch_add(1, Ordering::SeqCst);
                    });
                    // CPU 2 exempt: barrier needs only CPUs 0 and 1.
                    Some(barrier_synchronize(
                        &machine,
                        action,
                        &[2],
                        Duration::from_secs(10),
                    ))
                }
                1 => {
                    while ran.load(Ordering::SeqCst) < 2 {
                        cpu.poll();
                        core::hint::spin_loop();
                    }
                    None
                }
                _ => {
                    // Exempt CPU: busy elsewhere during the barrier, takes
                    // the posted update later.
                    while ran.load(Ordering::SeqCst) < 2 {
                        core::hint::spin_loop();
                    }
                    cpu.poll(); // now takes the posted action
                    None
                }
            }
        });
        assert_eq!(outcomes[0], Some(BarrierOutcome::Completed));
        assert_eq!(
            ran.load(Ordering::SeqCst),
            3,
            "exempt CPU ran the action late"
        );
    }

    #[test]
    fn initiator_runs_action_at_ipi_level() {
        let machine = Machine::new(1);
        let level = Arc::new(AtomicUsize::new(999));
        machine.run(|_cpu| {
            let level = Arc::clone(&level);
            let action: Arc<dyn Fn(usize) + Send + Sync> = Arc::new(move |_| {
                level.store(spl_current() as usize, Ordering::SeqCst);
            });
            let r = barrier_synchronize(&machine, action, &[], Duration::from_secs(5));
            assert_eq!(r, BarrierOutcome::Completed);
        });
        assert_eq!(level.load(Ordering::SeqCst), SplLevel::IPI as usize);
    }
}
