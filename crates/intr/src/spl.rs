//! Interrupt priority levels.
//!
//! The level set follows the classic Mach/BSD hierarchy the paper names
//! ("spl0, splvm, splnet, splclock, etc."). Raising the level masks
//! interrupts at or below it; restoring the previous level re-enables
//! them and is a delivery point for anything that arrived meanwhile.

use core::fmt;

use machk_sync::RawSimpleLock;

use crate::cpu::{current_cpu, Cpu};

/// An interrupt priority level. Higher value = more interrupts masked.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum SplLevel {
    /// Base level: all interrupts enabled.
    Spl0 = 0,
    /// Soft clock interrupts masked.
    SplSoftClock = 1,
    /// Network interrupts masked.
    SplNet = 2,
    /// VM (device paging) interrupts masked.
    SplVm = 3,
    /// Hard clock interrupts masked.
    SplClock = 4,
    /// Scheduler level — "the scheduler raises interrupt priority to its
    /// highest level (blocking all interrupts)" short of IPIs.
    SplSched = 5,
    /// All interrupts masked, including the interprocessor interrupt
    /// used for barrier synchronization.
    SplHigh = 6,
}

impl SplLevel {
    /// All levels in ascending order.
    pub const ALL: [SplLevel; 7] = [
        SplLevel::Spl0,
        SplLevel::SplSoftClock,
        SplLevel::SplNet,
        SplLevel::SplVm,
        SplLevel::SplClock,
        SplLevel::SplSched,
        SplLevel::SplHigh,
    ];

    /// The level of the interprocessor interrupt used for barrier
    /// synchronization. A CPU at `SplHigh` does not take IPIs — the
    /// machine-dependent fact at the root of the section-7 deadlock.
    pub const IPI: SplLevel = SplLevel::SplHigh;

    pub(crate) fn from_u8(v: u8) -> SplLevel {
        SplLevel::ALL[v as usize]
    }
}

impl fmt::Display for SplLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            SplLevel::Spl0 => "spl0",
            SplLevel::SplSoftClock => "splsoftclock",
            SplLevel::SplNet => "splnet",
            SplLevel::SplVm => "splvm",
            SplLevel::SplClock => "splclock",
            SplLevel::SplSched => "splsched",
            SplLevel::SplHigh => "splhigh",
        };
        f.write_str(name)
    }
}

/// Token returned by [`spl_raise`]; restores the previous level when
/// passed to [`spl_restore`] (the classic `s = splvm(); ...; splx(s)`).
#[derive(Debug)]
#[must_use = "the previous spl level must be restored with spl_restore"]
pub struct SplToken {
    pub(crate) previous: SplLevel,
}

/// Raise the current CPU's interrupt priority to at least `level`.
///
/// Raising never delivers interrupts. Panics if the calling thread is
/// not bound to a CPU (see [`Cpu::enter`]).
pub fn spl_raise(level: SplLevel) -> SplToken {
    let cpu = current_cpu().expect("spl_raise: thread not bound to a simulated CPU");
    #[cfg(feature = "obs")]
    machk_obs::emit(machk_obs::EventKind::SplRaise, 0, level as u64);
    SplToken {
        previous: cpu.raise_spl(level),
    }
}

/// Restore a previous interrupt priority level (`splx`). Lowering the
/// level is a delivery point: pending interrupts above the restored
/// level run before this returns.
pub fn spl_restore(token: SplToken) {
    let cpu = current_cpu().expect("spl_restore: thread not bound to a simulated CPU");
    #[cfg(feature = "obs")]
    machk_obs::emit(
        machk_obs::EventKind::SplRestore,
        0,
        token.previous as u64,
    );
    cpu.set_spl(token.previous);
    cpu.poll();
}

/// The current CPU's spl level.
pub fn spl_current() -> SplLevel {
    current_cpu()
        .expect("spl_current: thread not bound to a simulated CPU")
        .spl()
}

/// Violation of the section-7 one-level rule, reported (rather than
/// panicked) by [`SplLock::lock_result`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplViolation {
    /// The level the lock was established at.
    pub required: SplLevel,
    /// The level the offending acquisition arrived at.
    pub actual: SplLevel,
}

impl fmt::Display for SplViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "inconsistent interrupt protection: lock established at {} acquired at {}",
            self.required, self.actual
        )
    }
}

impl std::error::Error for SplViolation {}

/// A simple lock that enforces the section-7 design rule: "each lock
/// must always be acquired at the same interrupt priority level ... and
/// held at that level or higher".
///
/// The first acquisition records the CPU's spl level; every later
/// acquisition must happen at the same level, or the lock panics with a
/// diagnosis of the inconsistency that would otherwise deadlock barrier
/// synchronization. (The check runs only on threads bound to a CPU; the
/// lock degrades to a plain simple lock elsewhere.)
pub struct SplLock {
    lock: RawSimpleLock,
    /// Level this lock is acquired at; `u8::MAX` = not yet established.
    level: core::sync::atomic::AtomicU8,
}

use core::sync::atomic::{AtomicU8, Ordering};

const LEVEL_UNSET: u8 = u8::MAX;

impl SplLock {
    /// A lock whose required spl level is established by its first
    /// acquisition.
    pub const fn new() -> Self {
        SplLock {
            lock: RawSimpleLock::new(),
            level: AtomicU8::new(LEVEL_UNSET),
        }
    }

    /// A lock whose required spl level is fixed up front.
    pub const fn at_level(level: SplLevel) -> Self {
        SplLock {
            lock: RawSimpleLock::new(),
            level: AtomicU8::new(level as u8),
        }
    }

    /// [`SplLock::new`] with a lockstat name: with the `obs` feature,
    /// acquisitions of the inner simple lock report under `name`.
    /// Without the feature the name is ignored.
    pub const fn named(name: &'static str) -> Self {
        SplLock {
            lock: RawSimpleLock::named(name),
            level: AtomicU8::new(LEVEL_UNSET),
        }
    }

    /// [`SplLock::at_level`] with a lockstat name (see [`SplLock::named`]).
    pub const fn named_at_level(name: &'static str, level: SplLevel) -> Self {
        SplLock {
            lock: RawSimpleLock::named(name),
            level: AtomicU8::new(level as u8),
        }
    }

    /// The one-level rule as a result: `Err` names the established and
    /// actual levels instead of panicking.
    fn check_level_result(&self, cpu: &Cpu) -> Result<(), SplViolation> {
        let cur = cpu.spl() as u8;
        match self
            .level
            // relaxed: the level word is a sticky diagnostic binding —
            // the first locker's level wins and later calls only
            // compare; no data is published through it.
            .compare_exchange(LEVEL_UNSET, cur, Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => Ok(()),
            Err(required) if required == cur => Ok(()),
            Err(required) => Err(SplViolation {
                required: SplLevel::from_u8(required),
                actual: SplLevel::from_u8(cur),
            }),
        }
    }

    fn check_level(&self, cpu: &Cpu) {
        if let Err(v) = self.check_level_result(cpu) {
            panic!(
                "inconsistent interrupt protection: lock established at {} \
                 acquired at {} (paper section 7: each lock must always be \
                 acquired at the same interrupt priority level)",
                v.required, v.actual,
            );
        }
    }

    /// Acquire, spinning interrupt-aware (the spin loop polls for
    /// deliverable interrupts, as real hardware would take them between
    /// test-and-set attempts).
    pub fn lock(&self) {
        if let Some(cpu) = current_cpu() {
            self.check_level(&cpu);
            let mut spins = 0u32;
            while !self.lock.try_lock_raw() {
                // Spinning at low spl still takes interrupts — the
                // property that lets a disciplined system drain barriers.
                cpu.poll();
                machk_sync::host::spin_hint(machk_sync::host::SpinSite::Generic);
                spins += 1;
                if spins >= 256 {
                    // vCPUs are host threads: let a descheduled holder run.
                    machk_sync::host::yield_now();
                    spins = 0;
                }
            }
        } else {
            self.lock.lock_raw();
        }
    }

    /// Acquire with the one-level rule reported as a `Result` instead
    /// of a panic: a violation — real, or injected by the
    /// `spl_wrong_level` fault — is *diagnosed* to the caller, which
    /// can drop its claims and retry at the established level rather
    /// than take down the process.
    ///
    /// On `Err` the lock is **not** held.
    pub fn lock_result(&self) -> Result<(), SplViolation> {
        if let Some(cpu) = current_cpu() {
            self.check_level_result(&cpu)?;
            // Fault hook: pretend the acquisition arrived at the wrong
            // interrupt priority level even though it did not.
            #[cfg(feature = "fault")]
            if machk_fault::fire(machk_fault::FaultSite::SplWrongLevel) {
                return Err(SplViolation {
                    required: self.required_level().unwrap_or(SplLevel::Spl0),
                    actual: cpu.spl(),
                });
            }
            let mut spins = 0u32;
            while !self.lock.try_lock_raw() {
                cpu.poll();
                machk_sync::host::spin_hint(machk_sync::host::SpinSite::Generic);
                spins += 1;
                if spins >= 256 {
                    machk_sync::host::yield_now();
                    spins = 0;
                }
            }
        } else {
            self.lock.lock_raw();
        }
        Ok(())
    }

    /// Release.
    pub fn unlock(&self) {
        self.lock.unlock_raw();
    }

    /// Single attempt.
    #[must_use]
    pub fn try_lock(&self) -> bool {
        if let Some(cpu) = current_cpu() {
            self.check_level(&cpu);
        }
        self.lock.try_lock_raw()
    }

    /// The spl level this lock is bound to, if established.
    pub fn required_level(&self) -> Option<SplLevel> {
        // relaxed: advisory read of the sticky diagnostic binding.
        let v = self.level.load(Ordering::Relaxed);
        (v != LEVEL_UNSET).then(|| SplLevel::from_u8(v))
    }

    /// The underlying raw lock.
    pub fn raw(&self) -> &RawSimpleLock {
        &self.lock
    }
}

impl Default for SplLock {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::Machine;

    #[test]
    fn levels_are_ordered() {
        for w in SplLevel::ALL.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert_eq!(SplLevel::IPI, SplLevel::SplHigh);
    }

    #[test]
    fn display_names() {
        assert_eq!(SplLevel::SplVm.to_string(), "splvm");
        assert_eq!(SplLevel::Spl0.to_string(), "spl0");
    }

    #[test]
    fn raise_and_restore() {
        let machine = Machine::new(1);
        let _g = machine.cpu(0).enter();
        assert_eq!(spl_current(), SplLevel::Spl0);
        let t = spl_raise(SplLevel::SplVm);
        assert_eq!(spl_current(), SplLevel::SplVm);
        let t2 = spl_raise(SplLevel::SplHigh);
        assert_eq!(spl_current(), SplLevel::SplHigh);
        spl_restore(t2);
        assert_eq!(spl_current(), SplLevel::SplVm);
        spl_restore(t);
        assert_eq!(spl_current(), SplLevel::Spl0);
    }

    #[test]
    fn raise_to_lower_level_keeps_current() {
        let machine = Machine::new(1);
        let _g = machine.cpu(0).enter();
        let t = spl_raise(SplLevel::SplClock);
        let t2 = spl_raise(SplLevel::SplNet); // lower: no-op raise
        assert_eq!(spl_current(), SplLevel::SplClock);
        spl_restore(t2);
        spl_restore(t);
    }

    #[test]
    fn spl_lock_establishes_level() {
        let machine = Machine::new(1);
        let _g = machine.cpu(0).enter();
        let lock = SplLock::new();
        assert_eq!(lock.required_level(), None);
        let t = spl_raise(SplLevel::SplVm);
        lock.lock();
        lock.unlock();
        spl_restore(t);
        assert_eq!(lock.required_level(), Some(SplLevel::SplVm));
    }

    #[test]
    #[should_panic(expected = "inconsistent interrupt protection")]
    fn spl_lock_detects_inconsistent_level() {
        let machine = Machine::new(1);
        let _g = machine.cpu(0).enter();
        let lock = SplLock::at_level(SplLevel::SplVm);
        // Acquiring at spl0 violates the one-level rule.
        lock.lock();
    }

    #[test]
    fn spl_lock_result_diagnoses_instead_of_panicking() {
        let machine = Machine::new(1);
        let _g = machine.cpu(0).enter();
        let lock = SplLock::at_level(SplLevel::SplVm);
        // Acquiring at spl0 violates the one-level rule: diagnosed, not
        // panicked, and the lock is not held.
        let err = lock.lock_result().unwrap_err();
        assert_eq!(err.required, SplLevel::SplVm);
        assert_eq!(err.actual, SplLevel::Spl0);
        assert!(err.to_string().contains("inconsistent interrupt protection"));
        // Recovery: retry at the established level succeeds.
        let t = spl_raise(SplLevel::SplVm);
        assert!(lock.lock_result().is_ok());
        lock.unlock();
        spl_restore(t);
    }

    #[test]
    fn spl_lock_plain_off_cpu() {
        let lock = SplLock::new();
        lock.lock();
        assert!(!lock.try_lock());
        lock.unlock();
        assert!(lock.try_lock());
        lock.unlock();
        assert_eq!(lock.required_level(), None);
    }
}
