//! Deadline-based deadlock detection.
//!
//! The paper's section-7 and section-7.1 deadlocks are *real* deadlocks:
//! reproduced literally they would hang the process. Every spin loop in
//! the barrier machinery therefore carries a [`Deadline`], and the demos
//! report [`DeadlockDetected`] instead of hanging. The watchdog is part
//! of the simulation, not of the reproduced design — Mach had no such
//! escape hatch, which is why the paper's rules matter.

use std::fmt;
use std::time::Duration;

use machk_sync::host;

/// Error reported when a deadline expires while a coordination step is
/// still incomplete — the simulation's verdict that the configured
/// scenario deadlocked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadlockDetected {
    /// How long the watchdog waited.
    pub waited: Duration,
}

impl fmt::Display for DeadlockDetected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deadlock detected after {:?}", self.waited)
    }
}

impl std::error::Error for DeadlockDetected {}

impl DeadlockDetected {
    /// Escalate into a [`DeadlockReport`] (see [`escalate`]).
    pub fn escalate(self) -> DeadlockReport {
        escalate(self)
    }
}

/// The watchdog's escalation artifact: what was detected, plus whatever
/// diagnostic state the build can capture at the moment of detection.
#[derive(Debug, Clone)]
pub struct DeadlockReport {
    /// How long the watchdog waited before giving up.
    pub waited: Duration,
    /// Human-readable diagnostic dump.
    pub report: String,
}

impl fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.report)
    }
}

/// Escalate a detected deadlock into a diagnostic dump instead of a
/// bare error: the recovery discipline is *diagnose, never hang*, and a
/// diagnosis is only useful if it says what the system was doing.
///
/// With the `obs` feature the dump embeds the lockstat capture at the
/// instant of detection — hottest locks, lock-order cycles, trace
/// totals — which is precisely the state a kernel debugger would want
/// first. Without it, the dump says what was detected and how to get
/// the richer capture.
///
/// When the detecting thread runs under a simulated host (`machk-sim`),
/// the dump also embeds the host's self-description — scheduler seed,
/// core count, step position, and the schedule trace tail — so the hang
/// is replayable byte-for-byte from the report alone.
pub fn escalate(err: DeadlockDetected) -> DeadlockReport {
    let mut report = format!("WATCHDOG: {err}\n");
    if let Some(sim) = host::describe() {
        report.push_str("simulated host at detection (replay from this):\n");
        for line in sim.lines() {
            report.push_str("  ");
            report.push_str(line);
            report.push('\n');
        }
    }
    #[cfg(feature = "obs")]
    {
        let stat = machk_obs::Lockstat::collect();
        if stat.cycles.is_empty() {
            report.push_str("no lock-order cycles on record; lockstat at detection:\n");
        } else {
            report.push_str("lock-order cycles on record (likely culprit first):\n");
            for c in &stat.cycles {
                report.push_str(&machk_obs::order::render_cycle(c));
                report.push('\n');
            }
        }
        report.push_str(&stat.render_text(5, false));
    }
    #[cfg(not(feature = "obs"))]
    report.push_str("(build with the `obs` feature for a lockstat dump at detection)\n");
    DeadlockReport {
        waited: err.waited,
        report,
    }
}

/// A point in time after which spinning code must give up.
///
/// Measured on the host clock, so under `machk-sim` a deadline expires
/// in virtual time as a deterministic part of the schedule.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    start_ns: u64,
    limit: Duration,
}

impl Deadline {
    /// A deadline `limit` from now.
    pub fn after(limit: Duration) -> Deadline {
        Deadline {
            start_ns: host::now(),
            limit,
        }
    }

    /// Host time elapsed since the deadline was set.
    fn elapsed(&self) -> Duration {
        Duration::from_nanos(host::now().saturating_sub(self.start_ns))
    }

    /// Whether the deadline has passed.
    pub fn expired(&self) -> bool {
        self.elapsed() >= self.limit
    }

    /// The error describing the expiry.
    pub fn to_error(&self) -> DeadlockDetected {
        DeadlockDetected {
            waited: self.elapsed(),
        }
    }

    /// Spin until `cond` is true or the deadline expires.
    pub fn spin_until(&self, mut cond: impl FnMut() -> bool) -> Result<(), DeadlockDetected> {
        let mut spins = 0u32;
        while !cond() {
            if self.expired() {
                return Err(self.to_error());
            }
            host::spin_hint(host::SpinSite::Generic);
            spins += 1;
            if spins >= 256 {
                host::yield_now();
                spins = 0;
            }
        }
        Ok(())
    }
}

/// Run each closure on its own thread and wait up to `limit` for all of
/// them to finish.
///
/// Returns `Ok(results)` if every thread finished, or
/// `Err(DeadlockDetected)` if some were still running at the deadline.
/// Unfinished threads are **leaked** (detached) — the caller is a demo
/// or test process that exits soon after; a deadlocked kernel thread
/// cannot be cancelled, in the simulation any more than in Mach.
pub fn run_threads_with_deadline<R: Send + 'static>(
    bodies: Vec<Box<dyn FnOnce() -> R + Send>>,
    limit: Duration,
) -> Result<Vec<R>, DeadlockDetected> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Mutex};
    // Host threads + host-clock polling instead of an OS channel with a
    // wall-clock `recv_timeout`: the same watchdog then works unchanged
    // under `machk-sim`, where the deadline expires in virtual time and
    // a genuinely stuck schedule is reported (with its replay seed)
    // instead of hanging the suite.
    const POLL: Duration = Duration::from_micros(200);
    let deadline = Deadline::after(limit);
    let n = bodies.len();
    let slots: Arc<Mutex<Vec<Option<R>>>> = Arc::new(Mutex::new((0..n).map(|_| None).collect()));
    let done = Arc::new(AtomicUsize::new(0));
    for (i, body) in bodies.into_iter().enumerate() {
        let slots = Arc::clone(&slots);
        let done = Arc::clone(&done);
        // Dropping the token detaches the thread, as the old spawn did.
        let _detached = host::spawn(move || {
            let r = body();
            // No host scheduling point sits between this lock and its
            // release, so a simulated thread can never be suspended
            // while holding it (plain OS mutex: safe on both hosts).
            slots.lock().unwrap()[i] = Some(r);
            done.fetch_add(1, Ordering::Release);
        });
    }
    while done.load(Ordering::Acquire) < n {
        if deadline.expired() {
            return Err(deadline.to_error());
        }
        let remaining = deadline.limit.saturating_sub(deadline.elapsed());
        host::sleep(POLL.min(remaining.max(Duration::from_nanos(1))));
    }
    let mut slots = slots.lock().unwrap();
    Ok(slots.drain(..).map(|s| s.unwrap()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    #[test]
    fn escalation_carries_diagnosis() {
        let err = DeadlockDetected {
            waited: Duration::from_millis(7),
        };
        let report = err.escalate();
        assert_eq!(report.waited, Duration::from_millis(7));
        assert!(report.report.contains("WATCHDOG"));
        assert!(report.report.contains("deadlock detected"));
    }

    #[test]
    fn deadline_expires() {
        let d = Deadline::after(Duration::from_millis(5));
        std::thread::sleep(Duration::from_millis(10));
        assert!(d.expired());
        assert!(d.to_error().waited >= Duration::from_millis(5));
    }

    #[test]
    fn spin_until_success() {
        let d = Deadline::after(Duration::from_secs(5));
        let flag = Arc::new(AtomicBool::new(false));
        let f = Arc::clone(&flag);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            f.store(true, Ordering::SeqCst);
        });
        assert!(d.spin_until(|| flag.load(Ordering::SeqCst)).is_ok());
        t.join().unwrap();
    }

    #[test]
    fn spin_until_deadlock() {
        let d = Deadline::after(Duration::from_millis(10));
        assert!(d.spin_until(|| false).is_err());
    }

    #[test]
    fn threads_all_finish() {
        let bodies: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..4usize)
            .map(|i| Box::new(move || i * 2) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let r = run_threads_with_deadline(bodies, Duration::from_secs(10)).unwrap();
        assert_eq!(r, vec![0, 2, 4, 6]);
    }

    #[test]
    fn stuck_thread_detected() {
        let stop = Arc::new(AtomicBool::new(false));
        let s = Arc::clone(&stop);
        let bodies: Vec<Box<dyn FnOnce() + Send>> = vec![
            Box::new(|| ()),
            Box::new(move || {
                // "Deadlocked" thread: spins until the test releases it.
                while !s.load(Ordering::SeqCst) {
                    std::hint::spin_loop();
                }
            }),
        ];
        let r = run_threads_with_deadline(bodies, Duration::from_millis(50));
        assert!(r.is_err());
        stop.store(true, Ordering::SeqCst); // release the leaked thread
    }
}
