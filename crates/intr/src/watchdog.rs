//! Deadline-based deadlock detection.
//!
//! The paper's section-7 and section-7.1 deadlocks are *real* deadlocks:
//! reproduced literally they would hang the process. Every spin loop in
//! the barrier machinery therefore carries a [`Deadline`], and the demos
//! report [`DeadlockDetected`] instead of hanging. The watchdog is part
//! of the simulation, not of the reproduced design — Mach had no such
//! escape hatch, which is why the paper's rules matter.

use std::fmt;
use std::time::{Duration, Instant};

/// Error reported when a deadline expires while a coordination step is
/// still incomplete — the simulation's verdict that the configured
/// scenario deadlocked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadlockDetected {
    /// How long the watchdog waited.
    pub waited: Duration,
}

impl fmt::Display for DeadlockDetected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deadlock detected after {:?}", self.waited)
    }
}

impl std::error::Error for DeadlockDetected {}

impl DeadlockDetected {
    /// Escalate into a [`DeadlockReport`] (see [`escalate`]).
    pub fn escalate(self) -> DeadlockReport {
        escalate(self)
    }
}

/// The watchdog's escalation artifact: what was detected, plus whatever
/// diagnostic state the build can capture at the moment of detection.
#[derive(Debug, Clone)]
pub struct DeadlockReport {
    /// How long the watchdog waited before giving up.
    pub waited: Duration,
    /// Human-readable diagnostic dump.
    pub report: String,
}

impl fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.report)
    }
}

/// Escalate a detected deadlock into a diagnostic dump instead of a
/// bare error: the recovery discipline is *diagnose, never hang*, and a
/// diagnosis is only useful if it says what the system was doing.
///
/// With the `obs` feature the dump embeds the lockstat capture at the
/// instant of detection — hottest locks, lock-order cycles, trace
/// totals — which is precisely the state a kernel debugger would want
/// first. Without it, the dump says what was detected and how to get
/// the richer capture.
pub fn escalate(err: DeadlockDetected) -> DeadlockReport {
    let mut report = format!("WATCHDOG: {err}\n");
    #[cfg(feature = "obs")]
    {
        let stat = machk_obs::Lockstat::collect();
        if stat.cycles.is_empty() {
            report.push_str("no lock-order cycles on record; lockstat at detection:\n");
        } else {
            report.push_str("lock-order cycles on record (likely culprit first):\n");
            for c in &stat.cycles {
                report.push_str(&machk_obs::order::render_cycle(c));
                report.push('\n');
            }
        }
        report.push_str(&stat.render_text(5, false));
    }
    #[cfg(not(feature = "obs"))]
    report.push_str("(build with the `obs` feature for a lockstat dump at detection)\n");
    DeadlockReport {
        waited: err.waited,
        report,
    }
}

/// A point in time after which spinning code must give up.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    start: Instant,
    limit: Duration,
}

impl Deadline {
    /// A deadline `limit` from now.
    pub fn after(limit: Duration) -> Deadline {
        Deadline {
            start: Instant::now(),
            limit,
        }
    }

    /// Whether the deadline has passed.
    pub fn expired(&self) -> bool {
        self.start.elapsed() >= self.limit
    }

    /// The error describing the expiry.
    pub fn to_error(&self) -> DeadlockDetected {
        DeadlockDetected {
            waited: self.start.elapsed(),
        }
    }

    /// Spin until `cond` is true or the deadline expires.
    pub fn spin_until(&self, mut cond: impl FnMut() -> bool) -> Result<(), DeadlockDetected> {
        let mut spins = 0u32;
        while !cond() {
            if self.expired() {
                return Err(self.to_error());
            }
            core::hint::spin_loop();
            spins += 1;
            if spins >= 256 {
                std::thread::yield_now();
                spins = 0;
            }
        }
        Ok(())
    }
}

/// Run each closure on its own thread and wait up to `limit` for all of
/// them to finish.
///
/// Returns `Ok(results)` if every thread finished, or
/// `Err(DeadlockDetected)` if some were still running at the deadline.
/// Unfinished threads are **leaked** (detached) — the caller is a demo
/// or test process that exits soon after; a deadlocked kernel thread
/// cannot be cancelled, in the simulation any more than in Mach.
pub fn run_threads_with_deadline<R: Send + 'static>(
    bodies: Vec<Box<dyn FnOnce() -> R + Send>>,
    limit: Duration,
) -> Result<Vec<R>, DeadlockDetected> {
    use std::sync::mpsc;
    let deadline = Deadline::after(limit);
    let (tx, rx) = mpsc::channel();
    let n = bodies.len();
    for (i, body) in bodies.into_iter().enumerate() {
        let tx = tx.clone();
        std::thread::spawn(move || {
            let r = body();
            let _ = tx.send((i, r));
        });
    }
    drop(tx);
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let mut done = 0;
    while done < n {
        let remaining = deadline
            .limit
            .checked_sub(deadline.start.elapsed())
            .unwrap_or(Duration::ZERO);
        match rx.recv_timeout(remaining) {
            Ok((i, r)) => {
                slots[i] = Some(r);
                done += 1;
            }
            Err(_) => return Err(deadline.to_error()),
        }
    }
    Ok(slots.into_iter().map(|s| s.unwrap()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    #[test]
    fn escalation_carries_diagnosis() {
        let err = DeadlockDetected {
            waited: Duration::from_millis(7),
        };
        let report = err.escalate();
        assert_eq!(report.waited, Duration::from_millis(7));
        assert!(report.report.contains("WATCHDOG"));
        assert!(report.report.contains("deadlock detected"));
    }

    #[test]
    fn deadline_expires() {
        let d = Deadline::after(Duration::from_millis(5));
        std::thread::sleep(Duration::from_millis(10));
        assert!(d.expired());
        assert!(d.to_error().waited >= Duration::from_millis(5));
    }

    #[test]
    fn spin_until_success() {
        let d = Deadline::after(Duration::from_secs(5));
        let flag = Arc::new(AtomicBool::new(false));
        let f = Arc::clone(&flag);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            f.store(true, Ordering::SeqCst);
        });
        assert!(d.spin_until(|| flag.load(Ordering::SeqCst)).is_ok());
        t.join().unwrap();
    }

    #[test]
    fn spin_until_deadlock() {
        let d = Deadline::after(Duration::from_millis(10));
        assert!(d.spin_until(|| false).is_err());
    }

    #[test]
    fn threads_all_finish() {
        let bodies: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..4usize)
            .map(|i| Box::new(move || i * 2) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let r = run_threads_with_deadline(bodies, Duration::from_secs(10)).unwrap();
        assert_eq!(r, vec![0, 2, 4, 6]);
    }

    #[test]
    fn stuck_thread_detected() {
        let stop = Arc::new(AtomicBool::new(false));
        let s = Arc::clone(&stop);
        let bodies: Vec<Box<dyn FnOnce() + Send>> = vec![
            Box::new(|| ()),
            Box::new(move || {
                // "Deadlocked" thread: spins until the test releases it.
                while !s.load(Ordering::SeqCst) {
                    std::hint::spin_loop();
                }
            }),
        ];
        let r = run_threads_with_deadline(bodies, Duration::from_millis(50));
        assert!(r.is_err());
        stop.store(true, Ordering::SeqCst); // release the leaked thread
    }
}
