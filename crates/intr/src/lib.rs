//! # machk-intr — simulated multiprocessor, interrupts, and spl levels
//!
//! Section 7 of "Locking and Reference Counting in the Mach Kernel"
//! (ICPP 1991) is about the interaction of locks and interrupts. None of
//! it can be exercised from userspace directly, so this crate builds the
//! substrate the paper assumes: a simulated multiprocessor whose
//! "processors" are OS threads bound to [`Cpu`] records, with
//!
//! * **interrupt priority levels** (`spl0 < splsoftclock < splnet <
//!   splvm < splclock < splsched < splhigh`) raised and restored by the
//!   classic `splXXX`/`splx` calls ([`spl`]);
//! * **posted interrupts** delivered at *polling points* — a real CPU
//!   takes interrupts between instructions; the simulation takes them
//!   wherever code calls [`Cpu::poll`], lowers its spl, or spins through
//!   the interrupt-aware helpers. An interrupt is deliverable only when
//!   its level exceeds the CPU's current spl, which is exactly the
//!   property the paper's deadlock depends on;
//! * **interrupt-level barrier synchronization** ([`barrier`]) of the
//!   kind TLB shootdown requires: "all involved processors must enter
//!   the interrupt service routine before any can leave";
//! * a **deadline watchdog** ([`watchdog`]) so the paper's deadlocks
//!   (the three-processor scenario of section 7, experiment E7) can be
//!   *demonstrated and detected* instead of hanging the process.
//!
//! The crate also provides [`spl::SplLock`], a simple lock that checks
//! the paper's design rule — "each lock must always be acquired at the
//! same interrupt priority level, and held at that level or higher" —
//! at runtime.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod barrier;
pub mod cpu;
pub mod spl;
pub mod timer;
pub mod watchdog;

pub use barrier::{barrier_synchronize, BarrierOutcome, IntrBarrier};
pub use cpu::{current_cpu, current_cpu_id, Cpu, CpuGuard, Machine};
pub use spl::{spl_current, spl_raise, spl_restore, SplLevel, SplLock, SplToken, SplViolation};
pub use timer::{LockedTimerBank, TimeKind, TimerBank, UsageSnap};
pub use watchdog::{
    escalate, run_threads_with_deadline, Deadline, DeadlockDetected, DeadlockReport,
};
