//! The usage-timing subsystem — coordination *without* locks.
//!
//! The paper (section 2) singles out exactly one place where Mach does
//! operation coordination without multiprocessor locking: "access to
//! timer data structures in its usage timing subsystem". The design
//! (Black's timing facility) gives each processor its own timer cells,
//! written only by that processor on every tick — the "independently
//! accessible memory cell per processor" the paper describes — while
//! readers on any processor use a check/retry protocol.
//!
//! [`TimerBank`] reproduces it over the simulated machine:
//!
//! * each vCPU owns one [`machk_sync::SeqCell`] of accumulated times;
//! * [`TimerBank::tick_current`] is called only from the owning CPU's
//!   bound thread (the single-writer restriction, enforced by a runtime
//!   check of the CPU binding);
//! * [`TimerBank::read_cpu`] / [`TimerBank::totals`] read from anywhere
//!   without ever delaying a tick.
//!
//! [`LockedTimerBank`] is the ablation (experiment E15): the same
//! accounting under per-CPU simple locks, pricing what the lock-free
//! exception buys on the tick path.

use machk_sync::{seq::SeqCell, SimpleLocked};

use crate::cpu::current_cpu_id;

/// Accumulated usage of one CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UsageSnap {
    /// Microseconds charged to user mode.
    pub user_us: u64,
    /// Microseconds charged to system mode.
    pub system_us: u64,
    /// Clock ticks accounted.
    pub ticks: u64,
}

/// Where a tick's time is charged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeKind {
    /// User-mode time.
    User,
    /// System (kernel) time.
    System,
}

/// Per-CPU usage timers with lock-free single-writer updates.
pub struct TimerBank {
    timers: Vec<SeqCell<UsageSnap>>,
}

impl TimerBank {
    /// A bank for `ncpus` processors, all zeroed.
    pub fn new(ncpus: usize) -> TimerBank {
        TimerBank {
            timers: (0..ncpus)
                .map(|_| SeqCell::new_unowned(UsageSnap::default()))
                .collect(),
        }
    }

    /// Account one tick of `us` microseconds on the calling CPU.
    ///
    /// Must be called from a thread bound to a CPU; that binding is the
    /// single-writer restriction (panics otherwise). No lock is taken —
    /// the paper's one sanctioned lock-free update.
    pub fn tick_current(&self, kind: TimeKind, us: u64) {
        let cpu =
            current_cpu_id().expect("tick_current requires a bound CPU (it is the single writer)");
        let mut w = self.timers[cpu].writer();
        w.update(|mut s| {
            match kind {
                TimeKind::User => s.user_us += us,
                TimeKind::System => s.system_us += us,
            }
            s.ticks += 1;
            s
        });
    }

    /// Read one CPU's accumulated usage, from any thread. Retries past
    /// in-flight ticks; never delays the ticking CPU.
    pub fn read_cpu(&self, cpu: usize) -> UsageSnap {
        self.timers[cpu].read()
    }

    /// Sum across all CPUs (each CPU read consistently; the total is a
    /// moving target, as it was in Mach).
    pub fn totals(&self) -> UsageSnap {
        let mut t = UsageSnap::default();
        for cell in &self.timers {
            let s = cell.read();
            t.user_us += s.user_us;
            t.system_us += s.system_us;
            t.ticks += s.ticks;
        }
        t
    }

    /// Number of CPUs in the bank.
    pub fn ncpus(&self) -> usize {
        self.timers.len()
    }
}

/// The lock-based ablation: identical accounting under per-CPU simple
/// locks (what Mach would have done had it not made the exception).
pub struct LockedTimerBank {
    timers: Vec<SimpleLocked<UsageSnap>>,
}

impl LockedTimerBank {
    /// A bank for `ncpus` processors, all zeroed.
    pub fn new(ncpus: usize) -> LockedTimerBank {
        LockedTimerBank {
            timers: (0..ncpus)
                .map(|_| SimpleLocked::new(UsageSnap::default()))
                .collect(),
        }
    }

    /// Account one tick on the calling CPU — through the lock.
    pub fn tick_current(&self, kind: TimeKind, us: u64) {
        let cpu = current_cpu_id().expect("tick_current requires a bound CPU");
        let mut s = self.timers[cpu].lock();
        match kind {
            TimeKind::User => s.user_us += us,
            TimeKind::System => s.system_us += us,
        }
        s.ticks += 1;
    }

    /// Read one CPU's usage — through the lock.
    pub fn read_cpu(&self, cpu: usize) -> UsageSnap {
        *self.timers[cpu].lock()
    }

    /// Sum across all CPUs.
    pub fn totals(&self) -> UsageSnap {
        let mut t = UsageSnap::default();
        for cell in &self.timers {
            let s = *cell.lock();
            t.user_us += s.user_us;
            t.system_us += s.system_us;
            t.ticks += s.ticks;
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::Machine;

    #[test]
    fn ticks_accumulate_per_cpu() {
        let machine = Machine::new(2);
        let bank = TimerBank::new(2);
        machine.run(|cpu| {
            for _ in 0..100 {
                bank.tick_current(TimeKind::User, 10);
            }
            if cpu.id() == 0 {
                bank.tick_current(TimeKind::System, 5);
            }
        });
        let c0 = bank.read_cpu(0);
        let c1 = bank.read_cpu(1);
        assert_eq!(c0.user_us, 1_000);
        assert_eq!(c0.system_us, 5);
        assert_eq!(c0.ticks, 101);
        assert_eq!(
            c1,
            UsageSnap {
                user_us: 1_000,
                system_us: 0,
                ticks: 100
            }
        );
        assert_eq!(bank.totals().ticks, 201);
    }

    #[test]
    #[should_panic(expected = "bound CPU")]
    fn tick_off_cpu_panics() {
        let bank = TimerBank::new(1);
        bank.tick_current(TimeKind::User, 1);
    }

    #[test]
    fn readers_see_consistent_snapshots_under_tick_storm() {
        // Writer invariant: user_us == 10 * ticks. Readers must never
        // see it broken mid-tick.
        let machine = Machine::new(1);
        let bank = TimerBank::new(1);
        std::thread::scope(|s| {
            let bank = &bank;
            let machine = &machine;
            s.spawn(move || {
                let _g = machine.cpu(0).enter();
                for _ in 0..100_000 {
                    bank.tick_current(TimeKind::User, 10);
                }
            });
            for _ in 0..2 {
                s.spawn(move || loop {
                    let snap = bank.read_cpu(0);
                    assert_eq!(snap.user_us, 10 * snap.ticks, "torn timer read");
                    if snap.ticks == 100_000 {
                        break;
                    }
                });
            }
        });
    }

    #[test]
    fn locked_bank_matches_lockfree_results() {
        let machine = Machine::new(2);
        let a = TimerBank::new(2);
        let b = LockedTimerBank::new(2);
        machine.run(|_cpu| {
            for i in 0..500u64 {
                let kind = if i % 3 == 0 {
                    TimeKind::System
                } else {
                    TimeKind::User
                };
                a.tick_current(kind, i % 7);
                b.tick_current(kind, i % 7);
            }
        });
        for cpu in 0..2 {
            assert_eq!(a.read_cpu(cpu), b.read_cpu(cpu));
        }
        assert_eq!(a.totals(), b.totals());
    }
}
