(function() {
    const implementors = Object.fromEntries([["machk_lock",[["impl&lt;T: ?<a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/marker/trait.Sized.html\" title=\"trait core::marker::Sized\">Sized</a>&gt; <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/deref/trait.DerefMut.html\" title=\"trait core::ops::deref::DerefMut\">DerefMut</a> for <a class=\"struct\" href=\"machk_lock/rw_data/struct.RwWriteGuard.html\" title=\"struct machk_lock::rw_data::RwWriteGuard\">RwWriteGuard</a>&lt;'_, T&gt;",0]]],["machk_sync",[["impl&lt;T: ?<a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/marker/trait.Sized.html\" title=\"trait core::marker::Sized\">Sized</a>&gt; <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/deref/trait.DerefMut.html\" title=\"trait core::ops::deref::DerefMut\">DerefMut</a> for <a class=\"struct\" href=\"machk_sync/simple_locked/struct.SimpleLockedGuard.html\" title=\"struct machk_sync::simple_locked::SimpleLockedGuard\">SimpleLockedGuard</a>&lt;'_, T&gt;",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[484,512]}