(function() {
    const implementors = Object.fromEntries([["machk_intr",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/cmp/trait.PartialOrd.html\" title=\"trait core::cmp::PartialOrd\">PartialOrd</a> for <a class=\"enum\" href=\"machk_intr/spl/enum.SplLevel.html\" title=\"enum machk_intr::spl::SplLevel\">SplLevel</a>",0]]],["machk_ipc",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/cmp/trait.PartialOrd.html\" title=\"trait core::cmp::PartialOrd\">PartialOrd</a> for <a class=\"struct\" href=\"machk_ipc/namespace/struct.PortName.html\" title=\"struct machk_ipc::namespace::PortName\">PortName</a>",0]]],["machk_kernel",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/cmp/trait.PartialOrd.html\" title=\"trait core::cmp::PartialOrd\">PartialOrd</a> for <a class=\"struct\" href=\"machk_kernel/procset/struct.ProcessorId.html\" title=\"struct machk_kernel::procset::ProcessorId\">ProcessorId</a>",0]]],["machk_vm",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/cmp/trait.PartialOrd.html\" title=\"trait core::cmp::PartialOrd\">PartialOrd</a> for <a class=\"struct\" href=\"machk_vm/page/struct.PageId.html\" title=\"struct machk_vm::page::PageId\">PageId</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[291,307,321,288]}