/root/repo/target/debug/deps/prop_ipc-b01640695cbfd890.d: crates/ipc/tests/prop_ipc.rs

/root/repo/target/debug/deps/prop_ipc-b01640695cbfd890: crates/ipc/tests/prop_ipc.rs

crates/ipc/tests/prop_ipc.rs:
