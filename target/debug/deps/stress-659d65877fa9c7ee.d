/root/repo/target/debug/deps/stress-659d65877fa9c7ee.d: tests/stress.rs

/root/repo/target/debug/deps/stress-659d65877fa9c7ee: tests/stress.rs

tests/stress.rs:
