/root/repo/target/debug/deps/prop_model-66f163a47ebbdd40.d: crates/lock/tests/prop_model.rs Cargo.toml

/root/repo/target/debug/deps/libprop_model-66f163a47ebbdd40.rmeta: crates/lock/tests/prop_model.rs Cargo.toml

crates/lock/tests/prop_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
