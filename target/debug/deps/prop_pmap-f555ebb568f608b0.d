/root/repo/target/debug/deps/prop_pmap-f555ebb568f608b0.d: crates/vm/tests/prop_pmap.rs Cargo.toml

/root/repo/target/debug/deps/libprop_pmap-f555ebb568f608b0.rmeta: crates/vm/tests/prop_pmap.rs Cargo.toml

crates/vm/tests/prop_pmap.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
