/root/repo/target/debug/deps/mach_locking-376dc5c5a45a9458.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmach_locking-376dc5c5a45a9458.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
