/root/repo/target/debug/deps/proptest-2485471b07dd73ac.d: crates/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-2485471b07dd73ac.rmeta: crates/proptest/src/lib.rs Cargo.toml

crates/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
