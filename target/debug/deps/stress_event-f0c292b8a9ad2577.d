/root/repo/target/debug/deps/stress_event-f0c292b8a9ad2577.d: crates/event/tests/stress_event.rs Cargo.toml

/root/repo/target/debug/deps/libstress_event-f0c292b8a9ad2577.rmeta: crates/event/tests/stress_event.rs Cargo.toml

crates/event/tests/stress_event.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
