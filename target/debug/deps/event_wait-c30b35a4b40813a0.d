/root/repo/target/debug/deps/event_wait-c30b35a4b40813a0.d: crates/bench/benches/event_wait.rs Cargo.toml

/root/repo/target/debug/deps/libevent_wait-c30b35a4b40813a0.rmeta: crates/bench/benches/event_wait.rs Cargo.toml

crates/bench/benches/event_wait.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
