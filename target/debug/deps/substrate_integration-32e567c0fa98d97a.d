/root/repo/target/debug/deps/substrate_integration-32e567c0fa98d97a.d: tests/substrate_integration.rs Cargo.toml

/root/repo/target/debug/deps/libsubstrate_integration-32e567c0fa98d97a.rmeta: tests/substrate_integration.rs Cargo.toml

tests/substrate_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
