/root/repo/target/debug/deps/prop_lifecycle-10103fe85900258d.d: crates/refcount/tests/prop_lifecycle.rs

/root/repo/target/debug/deps/prop_lifecycle-10103fe85900258d: crates/refcount/tests/prop_lifecycle.rs

crates/refcount/tests/prop_lifecycle.rs:
