/root/repo/target/debug/deps/machk_event-7d16a88398c59139.d: crates/event/src/lib.rs crates/event/src/api.rs crates/event/src/queue.rs crates/event/src/record.rs crates/event/src/table.rs

/root/repo/target/debug/deps/libmachk_event-7d16a88398c59139.rlib: crates/event/src/lib.rs crates/event/src/api.rs crates/event/src/queue.rs crates/event/src/record.rs crates/event/src/table.rs

/root/repo/target/debug/deps/libmachk_event-7d16a88398c59139.rmeta: crates/event/src/lib.rs crates/event/src/api.rs crates/event/src/queue.rs crates/event/src/record.rs crates/event/src/table.rs

crates/event/src/lib.rs:
crates/event/src/api.rs:
crates/event/src/queue.rs:
crates/event/src/record.rs:
crates/event/src/table.rs:
