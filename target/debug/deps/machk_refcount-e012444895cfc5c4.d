/root/repo/target/debug/deps/machk_refcount-e012444895cfc5c4.d: crates/refcount/src/lib.rs crates/refcount/src/count.rs crates/refcount/src/header.rs crates/refcount/src/objref.rs crates/refcount/src/sharded.rs

/root/repo/target/debug/deps/libmachk_refcount-e012444895cfc5c4.rmeta: crates/refcount/src/lib.rs crates/refcount/src/count.rs crates/refcount/src/header.rs crates/refcount/src/objref.rs crates/refcount/src/sharded.rs

crates/refcount/src/lib.rs:
crates/refcount/src/count.rs:
crates/refcount/src/header.rs:
crates/refcount/src/objref.rs:
crates/refcount/src/sharded.rs:
