/root/repo/target/debug/deps/machk_bench-94a737be68132b09.d: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/e01_simple_lock.rs crates/bench/src/experiments/e02_granularity.rs crates/bench/src/experiments/e03_complex_lock.rs crates/bench/src/experiments/e04_upgrade.rs crates/bench/src/experiments/e05_refcount.rs crates/bench/src/experiments/e06_event_wait.rs crates/bench/src/experiments/e07_interrupt_deadlock.rs crates/bench/src/experiments/e08_task_locks.rs crates/bench/src/experiments/e09_pmap_order.rs crates/bench/src/experiments/e10_pageable.rs crates/bench/src/experiments/e11_vm_object.rs crates/bench/src/experiments/e12_rpc.rs crates/bench/src/experiments/e13_shutdown.rs crates/bench/src/experiments/e14_shootdown.rs crates/bench/src/experiments/e15_usage_timing.rs crates/bench/src/util.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/libmachk_bench-94a737be68132b09.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/e01_simple_lock.rs crates/bench/src/experiments/e02_granularity.rs crates/bench/src/experiments/e03_complex_lock.rs crates/bench/src/experiments/e04_upgrade.rs crates/bench/src/experiments/e05_refcount.rs crates/bench/src/experiments/e06_event_wait.rs crates/bench/src/experiments/e07_interrupt_deadlock.rs crates/bench/src/experiments/e08_task_locks.rs crates/bench/src/experiments/e09_pmap_order.rs crates/bench/src/experiments/e10_pageable.rs crates/bench/src/experiments/e11_vm_object.rs crates/bench/src/experiments/e12_rpc.rs crates/bench/src/experiments/e13_shutdown.rs crates/bench/src/experiments/e14_shootdown.rs crates/bench/src/experiments/e15_usage_timing.rs crates/bench/src/util.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/e01_simple_lock.rs:
crates/bench/src/experiments/e02_granularity.rs:
crates/bench/src/experiments/e03_complex_lock.rs:
crates/bench/src/experiments/e04_upgrade.rs:
crates/bench/src/experiments/e05_refcount.rs:
crates/bench/src/experiments/e06_event_wait.rs:
crates/bench/src/experiments/e07_interrupt_deadlock.rs:
crates/bench/src/experiments/e08_task_locks.rs:
crates/bench/src/experiments/e09_pmap_order.rs:
crates/bench/src/experiments/e10_pageable.rs:
crates/bench/src/experiments/e11_vm_object.rs:
crates/bench/src/experiments/e12_rpc.rs:
crates/bench/src/experiments/e13_shutdown.rs:
crates/bench/src/experiments/e14_shootdown.rs:
crates/bench/src/experiments/e15_usage_timing.rs:
crates/bench/src/util.rs:
crates/bench/src/workloads.rs:
