/root/repo/target/debug/deps/criterion-c01c31e8e880d85c.d: crates/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-c01c31e8e880d85c.rlib: crates/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-c01c31e8e880d85c.rmeta: crates/criterion/src/lib.rs

crates/criterion/src/lib.rs:
