/root/repo/target/debug/deps/prop_zone-dcbba67dadb0b3b7.d: crates/vm/tests/prop_zone.rs

/root/repo/target/debug/deps/prop_zone-dcbba67dadb0b3b7: crates/vm/tests/prop_zone.rs

crates/vm/tests/prop_zone.rs:
