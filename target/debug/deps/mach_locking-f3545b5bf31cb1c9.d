/root/repo/target/debug/deps/mach_locking-f3545b5bf31cb1c9.d: src/lib.rs

/root/repo/target/debug/deps/libmach_locking-f3545b5bf31cb1c9.rlib: src/lib.rs

/root/repo/target/debug/deps/libmach_locking-f3545b5bf31cb1c9.rmeta: src/lib.rs

src/lib.rs:
