/root/repo/target/debug/deps/queued_lock-75c1ee188bfd0525.d: crates/bench/benches/queued_lock.rs Cargo.toml

/root/repo/target/debug/deps/libqueued_lock-75c1ee188bfd0525.rmeta: crates/bench/benches/queued_lock.rs Cargo.toml

crates/bench/benches/queued_lock.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
