/root/repo/target/debug/deps/concurrent-dca39f2513f304c8.d: crates/lock/tests/concurrent.rs Cargo.toml

/root/repo/target/debug/deps/libconcurrent-dca39f2513f304c8.rmeta: crates/lock/tests/concurrent.rs Cargo.toml

crates/lock/tests/concurrent.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
