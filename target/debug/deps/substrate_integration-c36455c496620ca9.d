/root/repo/target/debug/deps/substrate_integration-c36455c496620ca9.d: tests/substrate_integration.rs

/root/repo/target/debug/deps/substrate_integration-c36455c496620ca9: tests/substrate_integration.rs

tests/substrate_integration.rs:
