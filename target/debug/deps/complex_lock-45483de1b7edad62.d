/root/repo/target/debug/deps/complex_lock-45483de1b7edad62.d: crates/bench/benches/complex_lock.rs Cargo.toml

/root/repo/target/debug/deps/libcomplex_lock-45483de1b7edad62.rmeta: crates/bench/benches/complex_lock.rs Cargo.toml

crates/bench/benches/complex_lock.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
