/root/repo/target/debug/deps/vm_integration-0eefd3b2f40dc202.d: tests/vm_integration.rs

/root/repo/target/debug/deps/vm_integration-0eefd3b2f40dc202: tests/vm_integration.rs

tests/vm_integration.rs:
