/root/repo/target/debug/deps/prop_map-22192dc8a9c45db0.d: crates/vm/tests/prop_map.rs

/root/repo/target/debug/deps/prop_map-22192dc8a9c45db0: crates/vm/tests/prop_map.rs

crates/vm/tests/prop_map.rs:
