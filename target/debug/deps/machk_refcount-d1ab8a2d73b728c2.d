/root/repo/target/debug/deps/machk_refcount-d1ab8a2d73b728c2.d: crates/refcount/src/lib.rs crates/refcount/src/count.rs crates/refcount/src/header.rs crates/refcount/src/objref.rs crates/refcount/src/sharded.rs

/root/repo/target/debug/deps/libmachk_refcount-d1ab8a2d73b728c2.rlib: crates/refcount/src/lib.rs crates/refcount/src/count.rs crates/refcount/src/header.rs crates/refcount/src/objref.rs crates/refcount/src/sharded.rs

/root/repo/target/debug/deps/libmachk_refcount-d1ab8a2d73b728c2.rmeta: crates/refcount/src/lib.rs crates/refcount/src/count.rs crates/refcount/src/header.rs crates/refcount/src/objref.rs crates/refcount/src/sharded.rs

crates/refcount/src/lib.rs:
crates/refcount/src/count.rs:
crates/refcount/src/header.rs:
crates/refcount/src/objref.rs:
crates/refcount/src/sharded.rs:
