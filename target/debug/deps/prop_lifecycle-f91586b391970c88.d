/root/repo/target/debug/deps/prop_lifecycle-f91586b391970c88.d: crates/refcount/tests/prop_lifecycle.rs Cargo.toml

/root/repo/target/debug/deps/libprop_lifecycle-f91586b391970c88.rmeta: crates/refcount/tests/prop_lifecycle.rs Cargo.toml

crates/refcount/tests/prop_lifecycle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
