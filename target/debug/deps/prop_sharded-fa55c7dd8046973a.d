/root/repo/target/debug/deps/prop_sharded-fa55c7dd8046973a.d: crates/refcount/tests/prop_sharded.rs Cargo.toml

/root/repo/target/debug/deps/libprop_sharded-fa55c7dd8046973a.rmeta: crates/refcount/tests/prop_sharded.rs Cargo.toml

crates/refcount/tests/prop_sharded.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
