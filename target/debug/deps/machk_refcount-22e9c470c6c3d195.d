/root/repo/target/debug/deps/machk_refcount-22e9c470c6c3d195.d: crates/refcount/src/lib.rs crates/refcount/src/count.rs crates/refcount/src/header.rs crates/refcount/src/objref.rs crates/refcount/src/sharded.rs Cargo.toml

/root/repo/target/debug/deps/libmachk_refcount-22e9c470c6c3d195.rmeta: crates/refcount/src/lib.rs crates/refcount/src/count.rs crates/refcount/src/header.rs crates/refcount/src/objref.rs crates/refcount/src/sharded.rs Cargo.toml

crates/refcount/src/lib.rs:
crates/refcount/src/count.rs:
crates/refcount/src/header.rs:
crates/refcount/src/objref.rs:
crates/refcount/src/sharded.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
