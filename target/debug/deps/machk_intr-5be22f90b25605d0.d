/root/repo/target/debug/deps/machk_intr-5be22f90b25605d0.d: crates/intr/src/lib.rs crates/intr/src/barrier.rs crates/intr/src/cpu.rs crates/intr/src/spl.rs crates/intr/src/timer.rs crates/intr/src/watchdog.rs

/root/repo/target/debug/deps/machk_intr-5be22f90b25605d0: crates/intr/src/lib.rs crates/intr/src/barrier.rs crates/intr/src/cpu.rs crates/intr/src/spl.rs crates/intr/src/timer.rs crates/intr/src/watchdog.rs

crates/intr/src/lib.rs:
crates/intr/src/barrier.rs:
crates/intr/src/cpu.rs:
crates/intr/src/spl.rs:
crates/intr/src/timer.rs:
crates/intr/src/watchdog.rs:
