/root/repo/target/debug/deps/machk_ipc-4d5113db9a13b3eb.d: crates/ipc/src/lib.rs crates/ipc/src/message.rs crates/ipc/src/namespace.rs crates/ipc/src/port.rs crates/ipc/src/portset.rs crates/ipc/src/rpc.rs

/root/repo/target/debug/deps/libmachk_ipc-4d5113db9a13b3eb.rlib: crates/ipc/src/lib.rs crates/ipc/src/message.rs crates/ipc/src/namespace.rs crates/ipc/src/port.rs crates/ipc/src/portset.rs crates/ipc/src/rpc.rs

/root/repo/target/debug/deps/libmachk_ipc-4d5113db9a13b3eb.rmeta: crates/ipc/src/lib.rs crates/ipc/src/message.rs crates/ipc/src/namespace.rs crates/ipc/src/port.rs crates/ipc/src/portset.rs crates/ipc/src/rpc.rs

crates/ipc/src/lib.rs:
crates/ipc/src/message.rs:
crates/ipc/src/namespace.rs:
crates/ipc/src/port.rs:
crates/ipc/src/portset.rs:
crates/ipc/src/rpc.rs:
