/root/repo/target/debug/deps/machk_vm-35aafd06985bd02d.d: crates/vm/src/lib.rs crates/vm/src/map.rs crates/vm/src/object.rs crates/vm/src/page.rs crates/vm/src/pageable.rs crates/vm/src/pmap.rs crates/vm/src/tlb.rs crates/vm/src/zone.rs

/root/repo/target/debug/deps/libmachk_vm-35aafd06985bd02d.rlib: crates/vm/src/lib.rs crates/vm/src/map.rs crates/vm/src/object.rs crates/vm/src/page.rs crates/vm/src/pageable.rs crates/vm/src/pmap.rs crates/vm/src/tlb.rs crates/vm/src/zone.rs

/root/repo/target/debug/deps/libmachk_vm-35aafd06985bd02d.rmeta: crates/vm/src/lib.rs crates/vm/src/map.rs crates/vm/src/object.rs crates/vm/src/page.rs crates/vm/src/pageable.rs crates/vm/src/pmap.rs crates/vm/src/tlb.rs crates/vm/src/zone.rs

crates/vm/src/lib.rs:
crates/vm/src/map.rs:
crates/vm/src/object.rs:
crates/vm/src/page.rs:
crates/vm/src/pageable.rs:
crates/vm/src/pmap.rs:
crates/vm/src/tlb.rs:
crates/vm/src/zone.rs:
