/root/repo/target/debug/deps/machk_vm-0eceee212ca53fac.d: crates/vm/src/lib.rs crates/vm/src/map.rs crates/vm/src/object.rs crates/vm/src/page.rs crates/vm/src/pageable.rs crates/vm/src/pmap.rs crates/vm/src/tlb.rs crates/vm/src/zone.rs Cargo.toml

/root/repo/target/debug/deps/libmachk_vm-0eceee212ca53fac.rmeta: crates/vm/src/lib.rs crates/vm/src/map.rs crates/vm/src/object.rs crates/vm/src/page.rs crates/vm/src/pageable.rs crates/vm/src/pmap.rs crates/vm/src/tlb.rs crates/vm/src/zone.rs Cargo.toml

crates/vm/src/lib.rs:
crates/vm/src/map.rs:
crates/vm/src/object.rs:
crates/vm/src/page.rs:
crates/vm/src/pageable.rs:
crates/vm/src/pmap.rs:
crates/vm/src/tlb.rs:
crates/vm/src/zone.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
