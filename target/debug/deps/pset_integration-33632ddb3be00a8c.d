/root/repo/target/debug/deps/pset_integration-33632ddb3be00a8c.d: crates/kernel/tests/pset_integration.rs

/root/repo/target/debug/deps/pset_integration-33632ddb3be00a8c: crates/kernel/tests/pset_integration.rs

crates/kernel/tests/pset_integration.rs:
