/root/repo/target/debug/deps/prop_kobj-534d9e9a6090db06.d: crates/core/tests/prop_kobj.rs Cargo.toml

/root/repo/target/debug/deps/libprop_kobj-534d9e9a6090db06.rmeta: crates/core/tests/prop_kobj.rs Cargo.toml

crates/core/tests/prop_kobj.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
