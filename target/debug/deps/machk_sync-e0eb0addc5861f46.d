/root/repo/target/debug/deps/machk_sync-e0eb0addc5861f46.d: crates/sync/src/lib.rs crates/sync/src/held.rs crates/sync/src/policy.rs crates/sync/src/queued.rs crates/sync/src/raw.rs crates/sync/src/seq.rs crates/sync/src/simple.rs crates/sync/src/simple_locked.rs crates/sync/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libmachk_sync-e0eb0addc5861f46.rmeta: crates/sync/src/lib.rs crates/sync/src/held.rs crates/sync/src/policy.rs crates/sync/src/queued.rs crates/sync/src/raw.rs crates/sync/src/seq.rs crates/sync/src/simple.rs crates/sync/src/simple_locked.rs crates/sync/src/stats.rs Cargo.toml

crates/sync/src/lib.rs:
crates/sync/src/held.rs:
crates/sync/src/policy.rs:
crates/sync/src/queued.rs:
crates/sync/src/raw.rs:
crates/sync/src/seq.rs:
crates/sync/src/simple.rs:
crates/sync/src/simple_locked.rs:
crates/sync/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
