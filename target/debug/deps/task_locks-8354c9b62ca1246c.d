/root/repo/target/debug/deps/task_locks-8354c9b62ca1246c.d: crates/bench/benches/task_locks.rs Cargo.toml

/root/repo/target/debug/deps/libtask_locks-8354c9b62ca1246c.rmeta: crates/bench/benches/task_locks.rs Cargo.toml

crates/bench/benches/task_locks.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
