/root/repo/target/debug/deps/prop_portset-db4029523fe49b95.d: crates/ipc/tests/prop_portset.rs Cargo.toml

/root/repo/target/debug/deps/libprop_portset-db4029523fe49b95.rmeta: crates/ipc/tests/prop_portset.rs Cargo.toml

crates/ipc/tests/prop_portset.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
