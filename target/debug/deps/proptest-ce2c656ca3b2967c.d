/root/repo/target/debug/deps/proptest-ce2c656ca3b2967c.d: crates/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-ce2c656ca3b2967c.rmeta: crates/proptest/src/lib.rs Cargo.toml

crates/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
