/root/repo/target/debug/deps/proptest-f0748be8854b8087.d: crates/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-f0748be8854b8087.rlib: crates/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-f0748be8854b8087.rmeta: crates/proptest/src/lib.rs

crates/proptest/src/lib.rs:
