/root/repo/target/debug/deps/prop_runqueue-989fa9a14b4f4ec7.d: crates/kernel/tests/prop_runqueue.rs

/root/repo/target/debug/deps/prop_runqueue-989fa9a14b4f4ec7: crates/kernel/tests/prop_runqueue.rs

crates/kernel/tests/prop_runqueue.rs:
