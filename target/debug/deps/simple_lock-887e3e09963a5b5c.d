/root/repo/target/debug/deps/simple_lock-887e3e09963a5b5c.d: crates/bench/benches/simple_lock.rs Cargo.toml

/root/repo/target/debug/deps/libsimple_lock-887e3e09963a5b5c.rmeta: crates/bench/benches/simple_lock.rs Cargo.toml

crates/bench/benches/simple_lock.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
