/root/repo/target/debug/deps/prop_exclusion-ee1b1d0ca9036020.d: crates/sync/tests/prop_exclusion.rs

/root/repo/target/debug/deps/prop_exclusion-ee1b1d0ca9036020: crates/sync/tests/prop_exclusion.rs

crates/sync/tests/prop_exclusion.rs:
