/root/repo/target/debug/deps/experiments-e47994336b988775.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-e47994336b988775: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
