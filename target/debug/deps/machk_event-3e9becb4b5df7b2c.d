/root/repo/target/debug/deps/machk_event-3e9becb4b5df7b2c.d: crates/event/src/lib.rs crates/event/src/api.rs crates/event/src/queue.rs crates/event/src/record.rs crates/event/src/table.rs

/root/repo/target/debug/deps/libmachk_event-3e9becb4b5df7b2c.rmeta: crates/event/src/lib.rs crates/event/src/api.rs crates/event/src/queue.rs crates/event/src/record.rs crates/event/src/table.rs

crates/event/src/lib.rs:
crates/event/src/api.rs:
crates/event/src/queue.rs:
crates/event/src/record.rs:
crates/event/src/table.rs:
