/root/repo/target/debug/deps/machk_intr-b8ddeb8628da4a0e.d: crates/intr/src/lib.rs crates/intr/src/barrier.rs crates/intr/src/cpu.rs crates/intr/src/spl.rs crates/intr/src/timer.rs crates/intr/src/watchdog.rs Cargo.toml

/root/repo/target/debug/deps/libmachk_intr-b8ddeb8628da4a0e.rmeta: crates/intr/src/lib.rs crates/intr/src/barrier.rs crates/intr/src/cpu.rs crates/intr/src/spl.rs crates/intr/src/timer.rs crates/intr/src/watchdog.rs Cargo.toml

crates/intr/src/lib.rs:
crates/intr/src/barrier.rs:
crates/intr/src/cpu.rs:
crates/intr/src/spl.rs:
crates/intr/src/timer.rs:
crates/intr/src/watchdog.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
