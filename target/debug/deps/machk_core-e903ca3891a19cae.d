/root/repo/target/debug/deps/machk_core-e903ca3891a19cae.d: crates/core/src/lib.rs crates/core/src/kobj.rs

/root/repo/target/debug/deps/libmachk_core-e903ca3891a19cae.rmeta: crates/core/src/lib.rs crates/core/src/kobj.rs

crates/core/src/lib.rs:
crates/core/src/kobj.rs:
