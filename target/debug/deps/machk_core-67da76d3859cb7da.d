/root/repo/target/debug/deps/machk_core-67da76d3859cb7da.d: crates/core/src/lib.rs crates/core/src/kobj.rs Cargo.toml

/root/repo/target/debug/deps/libmachk_core-67da76d3859cb7da.rmeta: crates/core/src/lib.rs crates/core/src/kobj.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/kobj.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
