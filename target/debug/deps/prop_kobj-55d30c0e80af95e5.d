/root/repo/target/debug/deps/prop_kobj-55d30c0e80af95e5.d: crates/core/tests/prop_kobj.rs

/root/repo/target/debug/deps/prop_kobj-55d30c0e80af95e5: crates/core/tests/prop_kobj.rs

crates/core/tests/prop_kobj.rs:
