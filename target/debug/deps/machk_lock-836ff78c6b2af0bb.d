/root/repo/target/debug/deps/machk_lock-836ff78c6b2af0bb.d: crates/lock/src/lib.rs crates/lock/src/appendix_b.rs crates/lock/src/complex.rs crates/lock/src/rw_data.rs crates/lock/src/stats.rs

/root/repo/target/debug/deps/libmachk_lock-836ff78c6b2af0bb.rlib: crates/lock/src/lib.rs crates/lock/src/appendix_b.rs crates/lock/src/complex.rs crates/lock/src/rw_data.rs crates/lock/src/stats.rs

/root/repo/target/debug/deps/libmachk_lock-836ff78c6b2af0bb.rmeta: crates/lock/src/lib.rs crates/lock/src/appendix_b.rs crates/lock/src/complex.rs crates/lock/src/rw_data.rs crates/lock/src/stats.rs

crates/lock/src/lib.rs:
crates/lock/src/appendix_b.rs:
crates/lock/src/complex.rs:
crates/lock/src/rw_data.rs:
crates/lock/src/stats.rs:
