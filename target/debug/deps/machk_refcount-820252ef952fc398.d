/root/repo/target/debug/deps/machk_refcount-820252ef952fc398.d: crates/refcount/src/lib.rs crates/refcount/src/count.rs crates/refcount/src/header.rs crates/refcount/src/objref.rs crates/refcount/src/sharded.rs

/root/repo/target/debug/deps/machk_refcount-820252ef952fc398: crates/refcount/src/lib.rs crates/refcount/src/count.rs crates/refcount/src/header.rs crates/refcount/src/objref.rs crates/refcount/src/sharded.rs

crates/refcount/src/lib.rs:
crates/refcount/src/count.rs:
crates/refcount/src/header.rs:
crates/refcount/src/objref.rs:
crates/refcount/src/sharded.rs:
