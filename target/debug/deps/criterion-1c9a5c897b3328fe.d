/root/repo/target/debug/deps/criterion-1c9a5c897b3328fe.d: crates/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-1c9a5c897b3328fe.rmeta: crates/criterion/src/lib.rs Cargo.toml

crates/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
