/root/repo/target/debug/deps/machk_ipc-bcda28728ff9b73a.d: crates/ipc/src/lib.rs crates/ipc/src/message.rs crates/ipc/src/namespace.rs crates/ipc/src/port.rs crates/ipc/src/portset.rs crates/ipc/src/rpc.rs

/root/repo/target/debug/deps/libmachk_ipc-bcda28728ff9b73a.rmeta: crates/ipc/src/lib.rs crates/ipc/src/message.rs crates/ipc/src/namespace.rs crates/ipc/src/port.rs crates/ipc/src/portset.rs crates/ipc/src/rpc.rs

crates/ipc/src/lib.rs:
crates/ipc/src/message.rs:
crates/ipc/src/namespace.rs:
crates/ipc/src/port.rs:
crates/ipc/src/portset.rs:
crates/ipc/src/rpc.rs:
