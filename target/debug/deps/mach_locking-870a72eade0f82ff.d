/root/repo/target/debug/deps/mach_locking-870a72eade0f82ff.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmach_locking-870a72eade0f82ff.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
