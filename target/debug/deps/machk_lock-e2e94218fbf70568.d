/root/repo/target/debug/deps/machk_lock-e2e94218fbf70568.d: crates/lock/src/lib.rs crates/lock/src/appendix_b.rs crates/lock/src/complex.rs crates/lock/src/rw_data.rs crates/lock/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libmachk_lock-e2e94218fbf70568.rmeta: crates/lock/src/lib.rs crates/lock/src/appendix_b.rs crates/lock/src/complex.rs crates/lock/src/rw_data.rs crates/lock/src/stats.rs Cargo.toml

crates/lock/src/lib.rs:
crates/lock/src/appendix_b.rs:
crates/lock/src/complex.rs:
crates/lock/src/rw_data.rs:
crates/lock/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
