/root/repo/target/debug/deps/machk_lock-5c765ab2dc702d31.d: crates/lock/src/lib.rs crates/lock/src/appendix_b.rs crates/lock/src/complex.rs crates/lock/src/rw_data.rs crates/lock/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libmachk_lock-5c765ab2dc702d31.rmeta: crates/lock/src/lib.rs crates/lock/src/appendix_b.rs crates/lock/src/complex.rs crates/lock/src/rw_data.rs crates/lock/src/stats.rs Cargo.toml

crates/lock/src/lib.rs:
crates/lock/src/appendix_b.rs:
crates/lock/src/complex.rs:
crates/lock/src/rw_data.rs:
crates/lock/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
