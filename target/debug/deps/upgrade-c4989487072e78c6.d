/root/repo/target/debug/deps/upgrade-c4989487072e78c6.d: crates/bench/benches/upgrade.rs Cargo.toml

/root/repo/target/debug/deps/libupgrade-c4989487072e78c6.rmeta: crates/bench/benches/upgrade.rs Cargo.toml

crates/bench/benches/upgrade.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
