/root/repo/target/debug/deps/proptest-486c2c37830de6d0.d: crates/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-486c2c37830de6d0: crates/proptest/src/lib.rs

crates/proptest/src/lib.rs:
