/root/repo/target/debug/deps/machk_kernel-6690f09deba56744.d: crates/kernel/src/lib.rs crates/kernel/src/mono.rs crates/kernel/src/ops.rs crates/kernel/src/ordering.rs crates/kernel/src/procset.rs crates/kernel/src/sched.rs crates/kernel/src/shutdown.rs crates/kernel/src/task.rs crates/kernel/src/thread.rs Cargo.toml

/root/repo/target/debug/deps/libmachk_kernel-6690f09deba56744.rmeta: crates/kernel/src/lib.rs crates/kernel/src/mono.rs crates/kernel/src/ops.rs crates/kernel/src/ordering.rs crates/kernel/src/procset.rs crates/kernel/src/sched.rs crates/kernel/src/shutdown.rs crates/kernel/src/task.rs crates/kernel/src/thread.rs Cargo.toml

crates/kernel/src/lib.rs:
crates/kernel/src/mono.rs:
crates/kernel/src/ops.rs:
crates/kernel/src/ordering.rs:
crates/kernel/src/procset.rs:
crates/kernel/src/sched.rs:
crates/kernel/src/shutdown.rs:
crates/kernel/src/task.rs:
crates/kernel/src/thread.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
