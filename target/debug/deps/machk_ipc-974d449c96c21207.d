/root/repo/target/debug/deps/machk_ipc-974d449c96c21207.d: crates/ipc/src/lib.rs crates/ipc/src/message.rs crates/ipc/src/namespace.rs crates/ipc/src/port.rs crates/ipc/src/portset.rs crates/ipc/src/rpc.rs

/root/repo/target/debug/deps/machk_ipc-974d449c96c21207: crates/ipc/src/lib.rs crates/ipc/src/message.rs crates/ipc/src/namespace.rs crates/ipc/src/port.rs crates/ipc/src/portset.rs crates/ipc/src/rpc.rs

crates/ipc/src/lib.rs:
crates/ipc/src/message.rs:
crates/ipc/src/namespace.rs:
crates/ipc/src/port.rs:
crates/ipc/src/portset.rs:
crates/ipc/src/rpc.rs:
