/root/repo/target/debug/deps/concurrent-e83a67e95d05c12a.d: crates/lock/tests/concurrent.rs

/root/repo/target/debug/deps/concurrent-e83a67e95d05c12a: crates/lock/tests/concurrent.rs

crates/lock/tests/concurrent.rs:
