/root/repo/target/debug/deps/machk_core-496f9560f17a905a.d: crates/core/src/lib.rs crates/core/src/kobj.rs

/root/repo/target/debug/deps/libmachk_core-496f9560f17a905a.rlib: crates/core/src/lib.rs crates/core/src/kobj.rs

/root/repo/target/debug/deps/libmachk_core-496f9560f17a905a.rmeta: crates/core/src/lib.rs crates/core/src/kobj.rs

crates/core/src/lib.rs:
crates/core/src/kobj.rs:
