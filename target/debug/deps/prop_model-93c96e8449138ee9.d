/root/repo/target/debug/deps/prop_model-93c96e8449138ee9.d: crates/lock/tests/prop_model.rs

/root/repo/target/debug/deps/prop_model-93c96e8449138ee9: crates/lock/tests/prop_model.rs

crates/lock/tests/prop_model.rs:
