/root/repo/target/debug/deps/machine_stress-b856382be902f1ca.d: crates/intr/tests/machine_stress.rs

/root/repo/target/debug/deps/machine_stress-b856382be902f1ca: crates/intr/tests/machine_stress.rs

crates/intr/tests/machine_stress.rs:
