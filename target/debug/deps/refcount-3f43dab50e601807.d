/root/repo/target/debug/deps/refcount-3f43dab50e601807.d: crates/bench/benches/refcount.rs Cargo.toml

/root/repo/target/debug/deps/librefcount-3f43dab50e601807.rmeta: crates/bench/benches/refcount.rs Cargo.toml

crates/bench/benches/refcount.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
