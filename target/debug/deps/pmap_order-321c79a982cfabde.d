/root/repo/target/debug/deps/pmap_order-321c79a982cfabde.d: crates/bench/benches/pmap_order.rs Cargo.toml

/root/repo/target/debug/deps/libpmap_order-321c79a982cfabde.rmeta: crates/bench/benches/pmap_order.rs Cargo.toml

crates/bench/benches/pmap_order.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
