/root/repo/target/debug/deps/prop_portset-14d6c40bcac1684b.d: crates/ipc/tests/prop_portset.rs

/root/repo/target/debug/deps/prop_portset-14d6c40bcac1684b: crates/ipc/tests/prop_portset.rs

crates/ipc/tests/prop_portset.rs:
