/root/repo/target/debug/deps/queued_fairness-a0b0302c3d4b92a1.d: crates/sync/tests/queued_fairness.rs Cargo.toml

/root/repo/target/debug/deps/libqueued_fairness-a0b0302c3d4b92a1.rmeta: crates/sync/tests/queued_fairness.rs Cargo.toml

crates/sync/tests/queued_fairness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
