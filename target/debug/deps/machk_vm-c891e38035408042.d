/root/repo/target/debug/deps/machk_vm-c891e38035408042.d: crates/vm/src/lib.rs crates/vm/src/map.rs crates/vm/src/object.rs crates/vm/src/page.rs crates/vm/src/pageable.rs crates/vm/src/pmap.rs crates/vm/src/tlb.rs crates/vm/src/zone.rs

/root/repo/target/debug/deps/machk_vm-c891e38035408042: crates/vm/src/lib.rs crates/vm/src/map.rs crates/vm/src/object.rs crates/vm/src/page.rs crates/vm/src/pageable.rs crates/vm/src/pmap.rs crates/vm/src/tlb.rs crates/vm/src/zone.rs

crates/vm/src/lib.rs:
crates/vm/src/map.rs:
crates/vm/src/object.rs:
crates/vm/src/page.rs:
crates/vm/src/pageable.rs:
crates/vm/src/pmap.rs:
crates/vm/src/tlb.rs:
crates/vm/src/zone.rs:
