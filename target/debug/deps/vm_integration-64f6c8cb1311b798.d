/root/repo/target/debug/deps/vm_integration-64f6c8cb1311b798.d: tests/vm_integration.rs Cargo.toml

/root/repo/target/debug/deps/libvm_integration-64f6c8cb1311b798.rmeta: tests/vm_integration.rs Cargo.toml

tests/vm_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
