/root/repo/target/debug/deps/machine_stress-2cb141c59088f18e.d: crates/intr/tests/machine_stress.rs Cargo.toml

/root/repo/target/debug/deps/libmachine_stress-2cb141c59088f18e.rmeta: crates/intr/tests/machine_stress.rs Cargo.toml

crates/intr/tests/machine_stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
