/root/repo/target/debug/deps/granularity-bffe3e8ae8005b92.d: crates/bench/benches/granularity.rs Cargo.toml

/root/repo/target/debug/deps/libgranularity-bffe3e8ae8005b92.rmeta: crates/bench/benches/granularity.rs Cargo.toml

crates/bench/benches/granularity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
