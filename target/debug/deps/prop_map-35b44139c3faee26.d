/root/repo/target/debug/deps/prop_map-35b44139c3faee26.d: crates/vm/tests/prop_map.rs Cargo.toml

/root/repo/target/debug/deps/libprop_map-35b44139c3faee26.rmeta: crates/vm/tests/prop_map.rs Cargo.toml

crates/vm/tests/prop_map.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
