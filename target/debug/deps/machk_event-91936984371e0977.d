/root/repo/target/debug/deps/machk_event-91936984371e0977.d: crates/event/src/lib.rs crates/event/src/api.rs crates/event/src/queue.rs crates/event/src/record.rs crates/event/src/table.rs

/root/repo/target/debug/deps/machk_event-91936984371e0977: crates/event/src/lib.rs crates/event/src/api.rs crates/event/src/queue.rs crates/event/src/record.rs crates/event/src/table.rs

crates/event/src/lib.rs:
crates/event/src/api.rs:
crates/event/src/queue.rs:
crates/event/src/record.rs:
crates/event/src/table.rs:
