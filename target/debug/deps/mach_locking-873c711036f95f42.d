/root/repo/target/debug/deps/mach_locking-873c711036f95f42.d: src/lib.rs

/root/repo/target/debug/deps/mach_locking-873c711036f95f42: src/lib.rs

src/lib.rs:
