/root/repo/target/debug/deps/prop_ipc-16cb6f91b0ecdcfd.d: crates/ipc/tests/prop_ipc.rs Cargo.toml

/root/repo/target/debug/deps/libprop_ipc-16cb6f91b0ecdcfd.rmeta: crates/ipc/tests/prop_ipc.rs Cargo.toml

crates/ipc/tests/prop_ipc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
