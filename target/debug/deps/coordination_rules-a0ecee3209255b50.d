/root/repo/target/debug/deps/coordination_rules-a0ecee3209255b50.d: tests/coordination_rules.rs Cargo.toml

/root/repo/target/debug/deps/libcoordination_rules-a0ecee3209255b50.rmeta: tests/coordination_rules.rs Cargo.toml

tests/coordination_rules.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
