/root/repo/target/debug/deps/experiments-5e410ae03b6696f9.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-5e410ae03b6696f9: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
