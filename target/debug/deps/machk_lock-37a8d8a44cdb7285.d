/root/repo/target/debug/deps/machk_lock-37a8d8a44cdb7285.d: crates/lock/src/lib.rs crates/lock/src/appendix_b.rs crates/lock/src/complex.rs crates/lock/src/rw_data.rs crates/lock/src/stats.rs

/root/repo/target/debug/deps/libmachk_lock-37a8d8a44cdb7285.rmeta: crates/lock/src/lib.rs crates/lock/src/appendix_b.rs crates/lock/src/complex.rs crates/lock/src/rw_data.rs crates/lock/src/stats.rs

crates/lock/src/lib.rs:
crates/lock/src/appendix_b.rs:
crates/lock/src/complex.rs:
crates/lock/src/rw_data.rs:
crates/lock/src/stats.rs:
