/root/repo/target/debug/deps/queued_fairness-8a1179813182d146.d: crates/sync/tests/queued_fairness.rs

/root/repo/target/debug/deps/queued_fairness-8a1179813182d146: crates/sync/tests/queued_fairness.rs

crates/sync/tests/queued_fairness.rs:
