/root/repo/target/debug/deps/prop_exclusion-40c11f8632f71dc8.d: crates/sync/tests/prop_exclusion.rs Cargo.toml

/root/repo/target/debug/deps/libprop_exclusion-40c11f8632f71dc8.rmeta: crates/sync/tests/prop_exclusion.rs Cargo.toml

crates/sync/tests/prop_exclusion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
