/root/repo/target/debug/deps/pset_integration-9299b0d89569a13b.d: crates/kernel/tests/pset_integration.rs Cargo.toml

/root/repo/target/debug/deps/libpset_integration-9299b0d89569a13b.rmeta: crates/kernel/tests/pset_integration.rs Cargo.toml

crates/kernel/tests/pset_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
