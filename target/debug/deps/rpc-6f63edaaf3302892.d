/root/repo/target/debug/deps/rpc-6f63edaaf3302892.d: crates/bench/benches/rpc.rs Cargo.toml

/root/repo/target/debug/deps/librpc-6f63edaaf3302892.rmeta: crates/bench/benches/rpc.rs Cargo.toml

crates/bench/benches/rpc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
