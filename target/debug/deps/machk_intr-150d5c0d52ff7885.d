/root/repo/target/debug/deps/machk_intr-150d5c0d52ff7885.d: crates/intr/src/lib.rs crates/intr/src/barrier.rs crates/intr/src/cpu.rs crates/intr/src/spl.rs crates/intr/src/timer.rs crates/intr/src/watchdog.rs

/root/repo/target/debug/deps/libmachk_intr-150d5c0d52ff7885.rmeta: crates/intr/src/lib.rs crates/intr/src/barrier.rs crates/intr/src/cpu.rs crates/intr/src/spl.rs crates/intr/src/timer.rs crates/intr/src/watchdog.rs

crates/intr/src/lib.rs:
crates/intr/src/barrier.rs:
crates/intr/src/cpu.rs:
crates/intr/src/spl.rs:
crates/intr/src/timer.rs:
crates/intr/src/watchdog.rs:
