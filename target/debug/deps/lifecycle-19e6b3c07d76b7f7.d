/root/repo/target/debug/deps/lifecycle-19e6b3c07d76b7f7.d: tests/lifecycle.rs Cargo.toml

/root/repo/target/debug/deps/liblifecycle-19e6b3c07d76b7f7.rmeta: tests/lifecycle.rs Cargo.toml

tests/lifecycle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
