/root/repo/target/debug/deps/vm_object-78889d92a8f98bfd.d: crates/bench/benches/vm_object.rs Cargo.toml

/root/repo/target/debug/deps/libvm_object-78889d92a8f98bfd.rmeta: crates/bench/benches/vm_object.rs Cargo.toml

crates/bench/benches/vm_object.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
