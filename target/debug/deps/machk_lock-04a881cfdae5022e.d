/root/repo/target/debug/deps/machk_lock-04a881cfdae5022e.d: crates/lock/src/lib.rs crates/lock/src/appendix_b.rs crates/lock/src/complex.rs crates/lock/src/rw_data.rs crates/lock/src/stats.rs

/root/repo/target/debug/deps/machk_lock-04a881cfdae5022e: crates/lock/src/lib.rs crates/lock/src/appendix_b.rs crates/lock/src/complex.rs crates/lock/src/rw_data.rs crates/lock/src/stats.rs

crates/lock/src/lib.rs:
crates/lock/src/appendix_b.rs:
crates/lock/src/complex.rs:
crates/lock/src/rw_data.rs:
crates/lock/src/stats.rs:
