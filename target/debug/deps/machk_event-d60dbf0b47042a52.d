/root/repo/target/debug/deps/machk_event-d60dbf0b47042a52.d: crates/event/src/lib.rs crates/event/src/api.rs crates/event/src/queue.rs crates/event/src/record.rs crates/event/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libmachk_event-d60dbf0b47042a52.rmeta: crates/event/src/lib.rs crates/event/src/api.rs crates/event/src/queue.rs crates/event/src/record.rs crates/event/src/table.rs Cargo.toml

crates/event/src/lib.rs:
crates/event/src/api.rs:
crates/event/src/queue.rs:
crates/event/src/record.rs:
crates/event/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
