/root/repo/target/debug/deps/lifecycle-109b472694272b61.d: tests/lifecycle.rs

/root/repo/target/debug/deps/lifecycle-109b472694272b61: tests/lifecycle.rs

tests/lifecycle.rs:
