/root/repo/target/debug/deps/machk_core-99346f8bfd091279.d: crates/core/src/lib.rs crates/core/src/kobj.rs

/root/repo/target/debug/deps/machk_core-99346f8bfd091279: crates/core/src/lib.rs crates/core/src/kobj.rs

crates/core/src/lib.rs:
crates/core/src/kobj.rs:
