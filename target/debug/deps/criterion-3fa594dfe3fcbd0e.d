/root/repo/target/debug/deps/criterion-3fa594dfe3fcbd0e.d: crates/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-3fa594dfe3fcbd0e.rmeta: crates/criterion/src/lib.rs Cargo.toml

crates/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
