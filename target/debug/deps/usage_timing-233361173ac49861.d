/root/repo/target/debug/deps/usage_timing-233361173ac49861.d: crates/bench/benches/usage_timing.rs Cargo.toml

/root/repo/target/debug/deps/libusage_timing-233361173ac49861.rmeta: crates/bench/benches/usage_timing.rs Cargo.toml

crates/bench/benches/usage_timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
