/root/repo/target/debug/deps/machk_ipc-d5b37b86d300285f.d: crates/ipc/src/lib.rs crates/ipc/src/message.rs crates/ipc/src/namespace.rs crates/ipc/src/port.rs crates/ipc/src/portset.rs crates/ipc/src/rpc.rs Cargo.toml

/root/repo/target/debug/deps/libmachk_ipc-d5b37b86d300285f.rmeta: crates/ipc/src/lib.rs crates/ipc/src/message.rs crates/ipc/src/namespace.rs crates/ipc/src/port.rs crates/ipc/src/portset.rs crates/ipc/src/rpc.rs Cargo.toml

crates/ipc/src/lib.rs:
crates/ipc/src/message.rs:
crates/ipc/src/namespace.rs:
crates/ipc/src/port.rs:
crates/ipc/src/portset.rs:
crates/ipc/src/rpc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
