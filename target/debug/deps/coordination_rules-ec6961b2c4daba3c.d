/root/repo/target/debug/deps/coordination_rules-ec6961b2c4daba3c.d: tests/coordination_rules.rs

/root/repo/target/debug/deps/coordination_rules-ec6961b2c4daba3c: tests/coordination_rules.rs

tests/coordination_rules.rs:
