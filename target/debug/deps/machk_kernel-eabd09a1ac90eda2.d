/root/repo/target/debug/deps/machk_kernel-eabd09a1ac90eda2.d: crates/kernel/src/lib.rs crates/kernel/src/mono.rs crates/kernel/src/ops.rs crates/kernel/src/ordering.rs crates/kernel/src/procset.rs crates/kernel/src/sched.rs crates/kernel/src/shutdown.rs crates/kernel/src/task.rs crates/kernel/src/thread.rs

/root/repo/target/debug/deps/libmachk_kernel-eabd09a1ac90eda2.rlib: crates/kernel/src/lib.rs crates/kernel/src/mono.rs crates/kernel/src/ops.rs crates/kernel/src/ordering.rs crates/kernel/src/procset.rs crates/kernel/src/sched.rs crates/kernel/src/shutdown.rs crates/kernel/src/task.rs crates/kernel/src/thread.rs

/root/repo/target/debug/deps/libmachk_kernel-eabd09a1ac90eda2.rmeta: crates/kernel/src/lib.rs crates/kernel/src/mono.rs crates/kernel/src/ops.rs crates/kernel/src/ordering.rs crates/kernel/src/procset.rs crates/kernel/src/sched.rs crates/kernel/src/shutdown.rs crates/kernel/src/task.rs crates/kernel/src/thread.rs

crates/kernel/src/lib.rs:
crates/kernel/src/mono.rs:
crates/kernel/src/ops.rs:
crates/kernel/src/ordering.rs:
crates/kernel/src/procset.rs:
crates/kernel/src/sched.rs:
crates/kernel/src/shutdown.rs:
crates/kernel/src/task.rs:
crates/kernel/src/thread.rs:
