/root/repo/target/debug/deps/criterion-552f83885bb3b951.d: crates/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-552f83885bb3b951.rlib: crates/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-552f83885bb3b951.rmeta: crates/criterion/src/lib.rs

crates/criterion/src/lib.rs:
