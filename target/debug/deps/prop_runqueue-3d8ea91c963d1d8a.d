/root/repo/target/debug/deps/prop_runqueue-3d8ea91c963d1d8a.d: crates/kernel/tests/prop_runqueue.rs Cargo.toml

/root/repo/target/debug/deps/libprop_runqueue-3d8ea91c963d1d8a.rmeta: crates/kernel/tests/prop_runqueue.rs Cargo.toml

crates/kernel/tests/prop_runqueue.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
