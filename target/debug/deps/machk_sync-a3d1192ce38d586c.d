/root/repo/target/debug/deps/machk_sync-a3d1192ce38d586c.d: crates/sync/src/lib.rs crates/sync/src/held.rs crates/sync/src/policy.rs crates/sync/src/queued.rs crates/sync/src/raw.rs crates/sync/src/seq.rs crates/sync/src/simple.rs crates/sync/src/simple_locked.rs crates/sync/src/stats.rs

/root/repo/target/debug/deps/machk_sync-a3d1192ce38d586c: crates/sync/src/lib.rs crates/sync/src/held.rs crates/sync/src/policy.rs crates/sync/src/queued.rs crates/sync/src/raw.rs crates/sync/src/seq.rs crates/sync/src/simple.rs crates/sync/src/simple_locked.rs crates/sync/src/stats.rs

crates/sync/src/lib.rs:
crates/sync/src/held.rs:
crates/sync/src/policy.rs:
crates/sync/src/queued.rs:
crates/sync/src/raw.rs:
crates/sync/src/seq.rs:
crates/sync/src/simple.rs:
crates/sync/src/simple_locked.rs:
crates/sync/src/stats.rs:
