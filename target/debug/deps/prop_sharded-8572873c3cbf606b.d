/root/repo/target/debug/deps/prop_sharded-8572873c3cbf606b.d: crates/refcount/tests/prop_sharded.rs

/root/repo/target/debug/deps/prop_sharded-8572873c3cbf606b: crates/refcount/tests/prop_sharded.rs

crates/refcount/tests/prop_sharded.rs:
