/root/repo/target/debug/deps/prop_zone-746c905ec9535ab6.d: crates/vm/tests/prop_zone.rs Cargo.toml

/root/repo/target/debug/deps/libprop_zone-746c905ec9535ab6.rmeta: crates/vm/tests/prop_zone.rs Cargo.toml

crates/vm/tests/prop_zone.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
