/root/repo/target/debug/deps/machk_ipc-02bf60581e07cc73.d: crates/ipc/src/lib.rs crates/ipc/src/message.rs crates/ipc/src/namespace.rs crates/ipc/src/port.rs crates/ipc/src/portset.rs crates/ipc/src/rpc.rs Cargo.toml

/root/repo/target/debug/deps/libmachk_ipc-02bf60581e07cc73.rmeta: crates/ipc/src/lib.rs crates/ipc/src/message.rs crates/ipc/src/namespace.rs crates/ipc/src/port.rs crates/ipc/src/portset.rs crates/ipc/src/rpc.rs Cargo.toml

crates/ipc/src/lib.rs:
crates/ipc/src/message.rs:
crates/ipc/src/namespace.rs:
crates/ipc/src/port.rs:
crates/ipc/src/portset.rs:
crates/ipc/src/rpc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
