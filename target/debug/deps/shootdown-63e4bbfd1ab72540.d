/root/repo/target/debug/deps/shootdown-63e4bbfd1ab72540.d: crates/bench/benches/shootdown.rs Cargo.toml

/root/repo/target/debug/deps/libshootdown-63e4bbfd1ab72540.rmeta: crates/bench/benches/shootdown.rs Cargo.toml

crates/bench/benches/shootdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
