/root/repo/target/debug/deps/stress_event-3a12f5e7869737bf.d: crates/event/tests/stress_event.rs

/root/repo/target/debug/deps/stress_event-3a12f5e7869737bf: crates/event/tests/stress_event.rs

crates/event/tests/stress_event.rs:
