/root/repo/target/debug/deps/criterion-a1651cb2f0dfbc73.d: crates/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-a1651cb2f0dfbc73: crates/criterion/src/lib.rs

crates/criterion/src/lib.rs:
