/root/repo/target/debug/deps/prop_pmap-f8cbbbeab5437187.d: crates/vm/tests/prop_pmap.rs

/root/repo/target/debug/deps/prop_pmap-f8cbbbeab5437187: crates/vm/tests/prop_pmap.rs

crates/vm/tests/prop_pmap.rs:
