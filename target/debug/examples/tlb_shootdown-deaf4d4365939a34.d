/root/repo/target/debug/examples/tlb_shootdown-deaf4d4365939a34.d: examples/tlb_shootdown.rs

/root/repo/target/debug/examples/tlb_shootdown-deaf4d4365939a34: examples/tlb_shootdown.rs

examples/tlb_shootdown.rs:
