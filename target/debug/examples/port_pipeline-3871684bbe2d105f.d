/root/repo/target/debug/examples/port_pipeline-3871684bbe2d105f.d: examples/port_pipeline.rs

/root/repo/target/debug/examples/port_pipeline-3871684bbe2d105f: examples/port_pipeline.rs

examples/port_pipeline.rs:
