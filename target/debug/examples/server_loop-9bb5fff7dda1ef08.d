/root/repo/target/debug/examples/server_loop-9bb5fff7dda1ef08.d: examples/server_loop.rs Cargo.toml

/root/repo/target/debug/examples/libserver_loop-9bb5fff7dda1ef08.rmeta: examples/server_loop.rs Cargo.toml

examples/server_loop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
