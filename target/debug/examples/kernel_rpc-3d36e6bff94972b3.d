/root/repo/target/debug/examples/kernel_rpc-3d36e6bff94972b3.d: examples/kernel_rpc.rs

/root/repo/target/debug/examples/kernel_rpc-3d36e6bff94972b3: examples/kernel_rpc.rs

examples/kernel_rpc.rs:
