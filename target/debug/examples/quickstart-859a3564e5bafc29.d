/root/repo/target/debug/examples/quickstart-859a3564e5bafc29.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-859a3564e5bafc29: examples/quickstart.rs

examples/quickstart.rs:
