/root/repo/target/debug/examples/server_loop-8cade5e16cbe3435.d: examples/server_loop.rs

/root/repo/target/debug/examples/server_loop-8cade5e16cbe3435: examples/server_loop.rs

examples/server_loop.rs:
