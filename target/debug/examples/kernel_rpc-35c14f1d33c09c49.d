/root/repo/target/debug/examples/kernel_rpc-35c14f1d33c09c49.d: examples/kernel_rpc.rs Cargo.toml

/root/repo/target/debug/examples/libkernel_rpc-35c14f1d33c09c49.rmeta: examples/kernel_rpc.rs Cargo.toml

examples/kernel_rpc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
