/root/repo/target/debug/examples/quickstart-d0f2cfa508080f74.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-d0f2cfa508080f74.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
