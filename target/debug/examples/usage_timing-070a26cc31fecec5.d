/root/repo/target/debug/examples/usage_timing-070a26cc31fecec5.d: examples/usage_timing.rs Cargo.toml

/root/repo/target/debug/examples/libusage_timing-070a26cc31fecec5.rmeta: examples/usage_timing.rs Cargo.toml

examples/usage_timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
