/root/repo/target/debug/examples/tlb_shootdown-d7210740003634d5.d: examples/tlb_shootdown.rs Cargo.toml

/root/repo/target/debug/examples/libtlb_shootdown-d7210740003634d5.rmeta: examples/tlb_shootdown.rs Cargo.toml

examples/tlb_shootdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
