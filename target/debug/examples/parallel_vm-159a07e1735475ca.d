/root/repo/target/debug/examples/parallel_vm-159a07e1735475ca.d: examples/parallel_vm.rs Cargo.toml

/root/repo/target/debug/examples/libparallel_vm-159a07e1735475ca.rmeta: examples/parallel_vm.rs Cargo.toml

examples/parallel_vm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
