/root/repo/target/debug/examples/parallel_vm-ea957234f26a42ac.d: examples/parallel_vm.rs

/root/repo/target/debug/examples/parallel_vm-ea957234f26a42ac: examples/parallel_vm.rs

examples/parallel_vm.rs:
