/root/repo/target/debug/examples/usage_timing-47e1886e72b6d1a9.d: examples/usage_timing.rs

/root/repo/target/debug/examples/usage_timing-47e1886e72b6d1a9: examples/usage_timing.rs

examples/usage_timing.rs:
