/root/repo/target/debug/examples/port_pipeline-6883277fd86b0dd0.d: examples/port_pipeline.rs Cargo.toml

/root/repo/target/debug/examples/libport_pipeline-6883277fd86b0dd0.rmeta: examples/port_pipeline.rs Cargo.toml

examples/port_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
