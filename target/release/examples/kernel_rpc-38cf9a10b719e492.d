/root/repo/target/release/examples/kernel_rpc-38cf9a10b719e492.d: examples/kernel_rpc.rs

/root/repo/target/release/examples/kernel_rpc-38cf9a10b719e492: examples/kernel_rpc.rs

examples/kernel_rpc.rs:
