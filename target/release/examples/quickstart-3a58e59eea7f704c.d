/root/repo/target/release/examples/quickstart-3a58e59eea7f704c.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-3a58e59eea7f704c: examples/quickstart.rs

examples/quickstart.rs:
