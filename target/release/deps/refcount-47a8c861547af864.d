/root/repo/target/release/deps/refcount-47a8c861547af864.d: crates/bench/benches/refcount.rs

/root/repo/target/release/deps/refcount-47a8c861547af864: crates/bench/benches/refcount.rs

crates/bench/benches/refcount.rs:
