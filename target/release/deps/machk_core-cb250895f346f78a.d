/root/repo/target/release/deps/machk_core-cb250895f346f78a.d: crates/core/src/lib.rs crates/core/src/kobj.rs

/root/repo/target/release/deps/libmachk_core-cb250895f346f78a.rlib: crates/core/src/lib.rs crates/core/src/kobj.rs

/root/repo/target/release/deps/libmachk_core-cb250895f346f78a.rmeta: crates/core/src/lib.rs crates/core/src/kobj.rs

crates/core/src/lib.rs:
crates/core/src/kobj.rs:
