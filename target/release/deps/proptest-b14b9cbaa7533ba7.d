/root/repo/target/release/deps/proptest-b14b9cbaa7533ba7.d: crates/proptest/src/lib.rs

/root/repo/target/release/deps/proptest-b14b9cbaa7533ba7: crates/proptest/src/lib.rs

crates/proptest/src/lib.rs:
