/root/repo/target/release/deps/mach_locking-a57a29d070224a9e.d: src/lib.rs

/root/repo/target/release/deps/libmach_locking-a57a29d070224a9e.rlib: src/lib.rs

/root/repo/target/release/deps/libmach_locking-a57a29d070224a9e.rmeta: src/lib.rs

src/lib.rs:
