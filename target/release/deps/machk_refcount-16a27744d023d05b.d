/root/repo/target/release/deps/machk_refcount-16a27744d023d05b.d: crates/refcount/src/lib.rs crates/refcount/src/count.rs crates/refcount/src/header.rs crates/refcount/src/objref.rs crates/refcount/src/sharded.rs

/root/repo/target/release/deps/machk_refcount-16a27744d023d05b: crates/refcount/src/lib.rs crates/refcount/src/count.rs crates/refcount/src/header.rs crates/refcount/src/objref.rs crates/refcount/src/sharded.rs

crates/refcount/src/lib.rs:
crates/refcount/src/count.rs:
crates/refcount/src/header.rs:
crates/refcount/src/objref.rs:
crates/refcount/src/sharded.rs:
