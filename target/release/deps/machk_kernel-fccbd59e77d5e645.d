/root/repo/target/release/deps/machk_kernel-fccbd59e77d5e645.d: crates/kernel/src/lib.rs crates/kernel/src/mono.rs crates/kernel/src/ops.rs crates/kernel/src/ordering.rs crates/kernel/src/procset.rs crates/kernel/src/sched.rs crates/kernel/src/shutdown.rs crates/kernel/src/task.rs crates/kernel/src/thread.rs

/root/repo/target/release/deps/machk_kernel-fccbd59e77d5e645: crates/kernel/src/lib.rs crates/kernel/src/mono.rs crates/kernel/src/ops.rs crates/kernel/src/ordering.rs crates/kernel/src/procset.rs crates/kernel/src/sched.rs crates/kernel/src/shutdown.rs crates/kernel/src/task.rs crates/kernel/src/thread.rs

crates/kernel/src/lib.rs:
crates/kernel/src/mono.rs:
crates/kernel/src/ops.rs:
crates/kernel/src/ordering.rs:
crates/kernel/src/procset.rs:
crates/kernel/src/sched.rs:
crates/kernel/src/shutdown.rs:
crates/kernel/src/task.rs:
crates/kernel/src/thread.rs:
