/root/repo/target/release/deps/criterion-35d94bc344d3681c.d: crates/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-35d94bc344d3681c.rlib: crates/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-35d94bc344d3681c.rmeta: crates/criterion/src/lib.rs

crates/criterion/src/lib.rs:
