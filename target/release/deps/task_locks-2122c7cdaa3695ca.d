/root/repo/target/release/deps/task_locks-2122c7cdaa3695ca.d: crates/bench/benches/task_locks.rs

/root/repo/target/release/deps/task_locks-2122c7cdaa3695ca: crates/bench/benches/task_locks.rs

crates/bench/benches/task_locks.rs:
