/root/repo/target/release/deps/pmap_order-8ae4fd0c542febd5.d: crates/bench/benches/pmap_order.rs

/root/repo/target/release/deps/pmap_order-8ae4fd0c542febd5: crates/bench/benches/pmap_order.rs

crates/bench/benches/pmap_order.rs:
