/root/repo/target/release/deps/machk_intr-d989d74522a94ed1.d: crates/intr/src/lib.rs crates/intr/src/barrier.rs crates/intr/src/cpu.rs crates/intr/src/spl.rs crates/intr/src/timer.rs crates/intr/src/watchdog.rs

/root/repo/target/release/deps/libmachk_intr-d989d74522a94ed1.rlib: crates/intr/src/lib.rs crates/intr/src/barrier.rs crates/intr/src/cpu.rs crates/intr/src/spl.rs crates/intr/src/timer.rs crates/intr/src/watchdog.rs

/root/repo/target/release/deps/libmachk_intr-d989d74522a94ed1.rmeta: crates/intr/src/lib.rs crates/intr/src/barrier.rs crates/intr/src/cpu.rs crates/intr/src/spl.rs crates/intr/src/timer.rs crates/intr/src/watchdog.rs

crates/intr/src/lib.rs:
crates/intr/src/barrier.rs:
crates/intr/src/cpu.rs:
crates/intr/src/spl.rs:
crates/intr/src/timer.rs:
crates/intr/src/watchdog.rs:
