/root/repo/target/release/deps/experiments-35af9982c420edea.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-35af9982c420edea: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
