/root/repo/target/release/deps/task_locks-758ee9d08d247e8d.d: crates/bench/benches/task_locks.rs

/root/repo/target/release/deps/task_locks-758ee9d08d247e8d: crates/bench/benches/task_locks.rs

crates/bench/benches/task_locks.rs:
