/root/repo/target/release/deps/machk_lock-a2b446fecc94285f.d: crates/lock/src/lib.rs crates/lock/src/appendix_b.rs crates/lock/src/complex.rs crates/lock/src/rw_data.rs crates/lock/src/stats.rs

/root/repo/target/release/deps/machk_lock-a2b446fecc94285f: crates/lock/src/lib.rs crates/lock/src/appendix_b.rs crates/lock/src/complex.rs crates/lock/src/rw_data.rs crates/lock/src/stats.rs

crates/lock/src/lib.rs:
crates/lock/src/appendix_b.rs:
crates/lock/src/complex.rs:
crates/lock/src/rw_data.rs:
crates/lock/src/stats.rs:
