/root/repo/target/release/deps/complex_lock-fbde25e1a6c7d9ec.d: crates/bench/benches/complex_lock.rs

/root/repo/target/release/deps/complex_lock-fbde25e1a6c7d9ec: crates/bench/benches/complex_lock.rs

crates/bench/benches/complex_lock.rs:
