/root/repo/target/release/deps/vm_object-d9e72a9d430be9c3.d: crates/bench/benches/vm_object.rs

/root/repo/target/release/deps/vm_object-d9e72a9d430be9c3: crates/bench/benches/vm_object.rs

crates/bench/benches/vm_object.rs:
