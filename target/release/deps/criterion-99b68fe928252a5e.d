/root/repo/target/release/deps/criterion-99b68fe928252a5e.d: crates/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-99b68fe928252a5e.rlib: crates/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-99b68fe928252a5e.rmeta: crates/criterion/src/lib.rs

crates/criterion/src/lib.rs:
