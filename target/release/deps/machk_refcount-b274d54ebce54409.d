/root/repo/target/release/deps/machk_refcount-b274d54ebce54409.d: crates/refcount/src/lib.rs crates/refcount/src/count.rs crates/refcount/src/header.rs crates/refcount/src/objref.rs crates/refcount/src/sharded.rs

/root/repo/target/release/deps/libmachk_refcount-b274d54ebce54409.rlib: crates/refcount/src/lib.rs crates/refcount/src/count.rs crates/refcount/src/header.rs crates/refcount/src/objref.rs crates/refcount/src/sharded.rs

/root/repo/target/release/deps/libmachk_refcount-b274d54ebce54409.rmeta: crates/refcount/src/lib.rs crates/refcount/src/count.rs crates/refcount/src/header.rs crates/refcount/src/objref.rs crates/refcount/src/sharded.rs

crates/refcount/src/lib.rs:
crates/refcount/src/count.rs:
crates/refcount/src/header.rs:
crates/refcount/src/objref.rs:
crates/refcount/src/sharded.rs:
