/root/repo/target/release/deps/shootdown-5fe41e2795d451de.d: crates/bench/benches/shootdown.rs

/root/repo/target/release/deps/shootdown-5fe41e2795d451de: crates/bench/benches/shootdown.rs

crates/bench/benches/shootdown.rs:
