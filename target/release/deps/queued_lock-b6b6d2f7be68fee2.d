/root/repo/target/release/deps/queued_lock-b6b6d2f7be68fee2.d: crates/bench/benches/queued_lock.rs

/root/repo/target/release/deps/queued_lock-b6b6d2f7be68fee2: crates/bench/benches/queued_lock.rs

crates/bench/benches/queued_lock.rs:
