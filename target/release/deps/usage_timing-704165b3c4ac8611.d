/root/repo/target/release/deps/usage_timing-704165b3c4ac8611.d: crates/bench/benches/usage_timing.rs

/root/repo/target/release/deps/usage_timing-704165b3c4ac8611: crates/bench/benches/usage_timing.rs

crates/bench/benches/usage_timing.rs:
