/root/repo/target/release/deps/upgrade-0e33ef37a7c190ae.d: crates/bench/benches/upgrade.rs

/root/repo/target/release/deps/upgrade-0e33ef37a7c190ae: crates/bench/benches/upgrade.rs

crates/bench/benches/upgrade.rs:
