/root/repo/target/release/deps/machk_core-f0bb761fe921750f.d: crates/core/src/lib.rs crates/core/src/kobj.rs

/root/repo/target/release/deps/machk_core-f0bb761fe921750f: crates/core/src/lib.rs crates/core/src/kobj.rs

crates/core/src/lib.rs:
crates/core/src/kobj.rs:
