/root/repo/target/release/deps/vm_object-69019830f0e7289c.d: crates/bench/benches/vm_object.rs

/root/repo/target/release/deps/vm_object-69019830f0e7289c: crates/bench/benches/vm_object.rs

crates/bench/benches/vm_object.rs:
