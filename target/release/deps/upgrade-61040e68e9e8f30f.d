/root/repo/target/release/deps/upgrade-61040e68e9e8f30f.d: crates/bench/benches/upgrade.rs

/root/repo/target/release/deps/upgrade-61040e68e9e8f30f: crates/bench/benches/upgrade.rs

crates/bench/benches/upgrade.rs:
