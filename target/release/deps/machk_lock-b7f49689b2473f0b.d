/root/repo/target/release/deps/machk_lock-b7f49689b2473f0b.d: crates/lock/src/lib.rs crates/lock/src/appendix_b.rs crates/lock/src/complex.rs crates/lock/src/rw_data.rs crates/lock/src/stats.rs

/root/repo/target/release/deps/libmachk_lock-b7f49689b2473f0b.rlib: crates/lock/src/lib.rs crates/lock/src/appendix_b.rs crates/lock/src/complex.rs crates/lock/src/rw_data.rs crates/lock/src/stats.rs

/root/repo/target/release/deps/libmachk_lock-b7f49689b2473f0b.rmeta: crates/lock/src/lib.rs crates/lock/src/appendix_b.rs crates/lock/src/complex.rs crates/lock/src/rw_data.rs crates/lock/src/stats.rs

crates/lock/src/lib.rs:
crates/lock/src/appendix_b.rs:
crates/lock/src/complex.rs:
crates/lock/src/rw_data.rs:
crates/lock/src/stats.rs:
