/root/repo/target/release/deps/experiments-7412be7d9b132d40.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-7412be7d9b132d40: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
