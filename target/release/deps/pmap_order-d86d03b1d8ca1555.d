/root/repo/target/release/deps/pmap_order-d86d03b1d8ca1555.d: crates/bench/benches/pmap_order.rs

/root/repo/target/release/deps/pmap_order-d86d03b1d8ca1555: crates/bench/benches/pmap_order.rs

crates/bench/benches/pmap_order.rs:
