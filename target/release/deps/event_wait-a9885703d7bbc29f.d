/root/repo/target/release/deps/event_wait-a9885703d7bbc29f.d: crates/bench/benches/event_wait.rs

/root/repo/target/release/deps/event_wait-a9885703d7bbc29f: crates/bench/benches/event_wait.rs

crates/bench/benches/event_wait.rs:
