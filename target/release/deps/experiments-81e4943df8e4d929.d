/root/repo/target/release/deps/experiments-81e4943df8e4d929.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-81e4943df8e4d929: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
