/root/repo/target/release/deps/mach_locking-21adf36fc5900bd3.d: src/lib.rs

/root/repo/target/release/deps/mach_locking-21adf36fc5900bd3: src/lib.rs

src/lib.rs:
