/root/repo/target/release/deps/proptest-e47ff8c1dc930f28.d: crates/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-e47ff8c1dc930f28.rlib: crates/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-e47ff8c1dc930f28.rmeta: crates/proptest/src/lib.rs

crates/proptest/src/lib.rs:
