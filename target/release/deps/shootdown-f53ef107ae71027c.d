/root/repo/target/release/deps/shootdown-f53ef107ae71027c.d: crates/bench/benches/shootdown.rs

/root/repo/target/release/deps/shootdown-f53ef107ae71027c: crates/bench/benches/shootdown.rs

crates/bench/benches/shootdown.rs:
