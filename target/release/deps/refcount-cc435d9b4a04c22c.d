/root/repo/target/release/deps/refcount-cc435d9b4a04c22c.d: crates/bench/benches/refcount.rs

/root/repo/target/release/deps/refcount-cc435d9b4a04c22c: crates/bench/benches/refcount.rs

crates/bench/benches/refcount.rs:
