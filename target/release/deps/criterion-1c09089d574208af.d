/root/repo/target/release/deps/criterion-1c09089d574208af.d: crates/criterion/src/lib.rs

/root/repo/target/release/deps/criterion-1c09089d574208af: crates/criterion/src/lib.rs

crates/criterion/src/lib.rs:
