/root/repo/target/release/deps/machk_event-18b82a48ae7a79ec.d: crates/event/src/lib.rs crates/event/src/api.rs crates/event/src/queue.rs crates/event/src/record.rs crates/event/src/table.rs

/root/repo/target/release/deps/machk_event-18b82a48ae7a79ec: crates/event/src/lib.rs crates/event/src/api.rs crates/event/src/queue.rs crates/event/src/record.rs crates/event/src/table.rs

crates/event/src/lib.rs:
crates/event/src/api.rs:
crates/event/src/queue.rs:
crates/event/src/record.rs:
crates/event/src/table.rs:
