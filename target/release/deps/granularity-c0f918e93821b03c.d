/root/repo/target/release/deps/granularity-c0f918e93821b03c.d: crates/bench/benches/granularity.rs

/root/repo/target/release/deps/granularity-c0f918e93821b03c: crates/bench/benches/granularity.rs

crates/bench/benches/granularity.rs:
