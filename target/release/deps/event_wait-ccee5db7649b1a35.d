/root/repo/target/release/deps/event_wait-ccee5db7649b1a35.d: crates/bench/benches/event_wait.rs

/root/repo/target/release/deps/event_wait-ccee5db7649b1a35: crates/bench/benches/event_wait.rs

crates/bench/benches/event_wait.rs:
