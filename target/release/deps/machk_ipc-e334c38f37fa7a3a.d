/root/repo/target/release/deps/machk_ipc-e334c38f37fa7a3a.d: crates/ipc/src/lib.rs crates/ipc/src/message.rs crates/ipc/src/namespace.rs crates/ipc/src/port.rs crates/ipc/src/portset.rs crates/ipc/src/rpc.rs

/root/repo/target/release/deps/libmachk_ipc-e334c38f37fa7a3a.rlib: crates/ipc/src/lib.rs crates/ipc/src/message.rs crates/ipc/src/namespace.rs crates/ipc/src/port.rs crates/ipc/src/portset.rs crates/ipc/src/rpc.rs

/root/repo/target/release/deps/libmachk_ipc-e334c38f37fa7a3a.rmeta: crates/ipc/src/lib.rs crates/ipc/src/message.rs crates/ipc/src/namespace.rs crates/ipc/src/port.rs crates/ipc/src/portset.rs crates/ipc/src/rpc.rs

crates/ipc/src/lib.rs:
crates/ipc/src/message.rs:
crates/ipc/src/namespace.rs:
crates/ipc/src/port.rs:
crates/ipc/src/portset.rs:
crates/ipc/src/rpc.rs:
