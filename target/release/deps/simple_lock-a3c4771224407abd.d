/root/repo/target/release/deps/simple_lock-a3c4771224407abd.d: crates/bench/benches/simple_lock.rs

/root/repo/target/release/deps/simple_lock-a3c4771224407abd: crates/bench/benches/simple_lock.rs

crates/bench/benches/simple_lock.rs:
