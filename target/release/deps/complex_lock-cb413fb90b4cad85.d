/root/repo/target/release/deps/complex_lock-cb413fb90b4cad85.d: crates/bench/benches/complex_lock.rs

/root/repo/target/release/deps/complex_lock-cb413fb90b4cad85: crates/bench/benches/complex_lock.rs

crates/bench/benches/complex_lock.rs:
