/root/repo/target/release/deps/machk_vm-f74a621f838b9208.d: crates/vm/src/lib.rs crates/vm/src/map.rs crates/vm/src/object.rs crates/vm/src/page.rs crates/vm/src/pageable.rs crates/vm/src/pmap.rs crates/vm/src/tlb.rs crates/vm/src/zone.rs

/root/repo/target/release/deps/libmachk_vm-f74a621f838b9208.rlib: crates/vm/src/lib.rs crates/vm/src/map.rs crates/vm/src/object.rs crates/vm/src/page.rs crates/vm/src/pageable.rs crates/vm/src/pmap.rs crates/vm/src/tlb.rs crates/vm/src/zone.rs

/root/repo/target/release/deps/libmachk_vm-f74a621f838b9208.rmeta: crates/vm/src/lib.rs crates/vm/src/map.rs crates/vm/src/object.rs crates/vm/src/page.rs crates/vm/src/pageable.rs crates/vm/src/pmap.rs crates/vm/src/tlb.rs crates/vm/src/zone.rs

crates/vm/src/lib.rs:
crates/vm/src/map.rs:
crates/vm/src/object.rs:
crates/vm/src/page.rs:
crates/vm/src/pageable.rs:
crates/vm/src/pmap.rs:
crates/vm/src/tlb.rs:
crates/vm/src/zone.rs:
