/root/repo/target/release/deps/rpc-a079c3262785adef.d: crates/bench/benches/rpc.rs

/root/repo/target/release/deps/rpc-a079c3262785adef: crates/bench/benches/rpc.rs

crates/bench/benches/rpc.rs:
