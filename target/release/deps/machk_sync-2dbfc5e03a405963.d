/root/repo/target/release/deps/machk_sync-2dbfc5e03a405963.d: crates/sync/src/lib.rs crates/sync/src/held.rs crates/sync/src/policy.rs crates/sync/src/queued.rs crates/sync/src/raw.rs crates/sync/src/seq.rs crates/sync/src/simple.rs crates/sync/src/simple_locked.rs crates/sync/src/stats.rs

/root/repo/target/release/deps/machk_sync-2dbfc5e03a405963: crates/sync/src/lib.rs crates/sync/src/held.rs crates/sync/src/policy.rs crates/sync/src/queued.rs crates/sync/src/raw.rs crates/sync/src/seq.rs crates/sync/src/simple.rs crates/sync/src/simple_locked.rs crates/sync/src/stats.rs

crates/sync/src/lib.rs:
crates/sync/src/held.rs:
crates/sync/src/policy.rs:
crates/sync/src/queued.rs:
crates/sync/src/raw.rs:
crates/sync/src/seq.rs:
crates/sync/src/simple.rs:
crates/sync/src/simple_locked.rs:
crates/sync/src/stats.rs:
