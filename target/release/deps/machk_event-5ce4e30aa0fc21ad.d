/root/repo/target/release/deps/machk_event-5ce4e30aa0fc21ad.d: crates/event/src/lib.rs crates/event/src/api.rs crates/event/src/queue.rs crates/event/src/record.rs crates/event/src/table.rs

/root/repo/target/release/deps/libmachk_event-5ce4e30aa0fc21ad.rlib: crates/event/src/lib.rs crates/event/src/api.rs crates/event/src/queue.rs crates/event/src/record.rs crates/event/src/table.rs

/root/repo/target/release/deps/libmachk_event-5ce4e30aa0fc21ad.rmeta: crates/event/src/lib.rs crates/event/src/api.rs crates/event/src/queue.rs crates/event/src/record.rs crates/event/src/table.rs

crates/event/src/lib.rs:
crates/event/src/api.rs:
crates/event/src/queue.rs:
crates/event/src/record.rs:
crates/event/src/table.rs:
