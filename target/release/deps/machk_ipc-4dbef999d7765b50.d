/root/repo/target/release/deps/machk_ipc-4dbef999d7765b50.d: crates/ipc/src/lib.rs crates/ipc/src/message.rs crates/ipc/src/namespace.rs crates/ipc/src/port.rs crates/ipc/src/portset.rs crates/ipc/src/rpc.rs

/root/repo/target/release/deps/machk_ipc-4dbef999d7765b50: crates/ipc/src/lib.rs crates/ipc/src/message.rs crates/ipc/src/namespace.rs crates/ipc/src/port.rs crates/ipc/src/portset.rs crates/ipc/src/rpc.rs

crates/ipc/src/lib.rs:
crates/ipc/src/message.rs:
crates/ipc/src/namespace.rs:
crates/ipc/src/port.rs:
crates/ipc/src/portset.rs:
crates/ipc/src/rpc.rs:
