/root/repo/target/release/deps/machk_vm-d5cecdf35d8eed3b.d: crates/vm/src/lib.rs crates/vm/src/map.rs crates/vm/src/object.rs crates/vm/src/page.rs crates/vm/src/pageable.rs crates/vm/src/pmap.rs crates/vm/src/tlb.rs crates/vm/src/zone.rs

/root/repo/target/release/deps/machk_vm-d5cecdf35d8eed3b: crates/vm/src/lib.rs crates/vm/src/map.rs crates/vm/src/object.rs crates/vm/src/page.rs crates/vm/src/pageable.rs crates/vm/src/pmap.rs crates/vm/src/tlb.rs crates/vm/src/zone.rs

crates/vm/src/lib.rs:
crates/vm/src/map.rs:
crates/vm/src/object.rs:
crates/vm/src/page.rs:
crates/vm/src/pageable.rs:
crates/vm/src/pmap.rs:
crates/vm/src/tlb.rs:
crates/vm/src/zone.rs:
