/root/repo/target/release/deps/simple_lock-b2b06cb7218053c9.d: crates/bench/benches/simple_lock.rs

/root/repo/target/release/deps/simple_lock-b2b06cb7218053c9: crates/bench/benches/simple_lock.rs

crates/bench/benches/simple_lock.rs:
