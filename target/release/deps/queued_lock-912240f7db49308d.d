/root/repo/target/release/deps/queued_lock-912240f7db49308d.d: crates/bench/benches/queued_lock.rs

/root/repo/target/release/deps/queued_lock-912240f7db49308d: crates/bench/benches/queued_lock.rs

crates/bench/benches/queued_lock.rs:
