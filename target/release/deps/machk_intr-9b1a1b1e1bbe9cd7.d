/root/repo/target/release/deps/machk_intr-9b1a1b1e1bbe9cd7.d: crates/intr/src/lib.rs crates/intr/src/barrier.rs crates/intr/src/cpu.rs crates/intr/src/spl.rs crates/intr/src/timer.rs crates/intr/src/watchdog.rs

/root/repo/target/release/deps/machk_intr-9b1a1b1e1bbe9cd7: crates/intr/src/lib.rs crates/intr/src/barrier.rs crates/intr/src/cpu.rs crates/intr/src/spl.rs crates/intr/src/timer.rs crates/intr/src/watchdog.rs

crates/intr/src/lib.rs:
crates/intr/src/barrier.rs:
crates/intr/src/cpu.rs:
crates/intr/src/spl.rs:
crates/intr/src/timer.rs:
crates/intr/src/watchdog.rs:
