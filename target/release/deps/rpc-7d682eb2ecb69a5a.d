/root/repo/target/release/deps/rpc-7d682eb2ecb69a5a.d: crates/bench/benches/rpc.rs

/root/repo/target/release/deps/rpc-7d682eb2ecb69a5a: crates/bench/benches/rpc.rs

crates/bench/benches/rpc.rs:
