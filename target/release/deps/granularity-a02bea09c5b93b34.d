/root/repo/target/release/deps/granularity-a02bea09c5b93b34.d: crates/bench/benches/granularity.rs

/root/repo/target/release/deps/granularity-a02bea09c5b93b34: crates/bench/benches/granularity.rs

crates/bench/benches/granularity.rs:
