/root/repo/target/release/deps/usage_timing-1b35ecf40f955a0a.d: crates/bench/benches/usage_timing.rs

/root/repo/target/release/deps/usage_timing-1b35ecf40f955a0a: crates/bench/benches/usage_timing.rs

crates/bench/benches/usage_timing.rs:
