//! # mach-locking — reproduction of "Locking and Reference Counting in
//! # the Mach Kernel" (ICPP 1991)
//!
//! This is the facade crate of the workspace: it re-exports the
//! mechanism layer ([`core`], i.e. `machk-core`) and the kernel
//! substrates built on it, so examples and downstream users need a
//! single dependency.
//!
//! | Module | Crate | Paper sections |
//! |---|---|---|
//! | [`core`] | `machk-core` | 4, 6, 8, 9 (locks, event wait, references) |
//! | [`ipc`] | `machk-ipc` | 3, 10 (ports, messages, kernel RPC) |
//! | [`kernel`] | `machk-kernel` | 3, 5, 9, 10 (tasks, threads, shutdown) |
//! | [`vm`] | `machk-vm` | 5, 7, 7.1 (maps, objects, pmaps, TLB) |
//! | [`intr`] | `machk-intr` | 7 (spl, interrupts, barrier sync) |
//!
//! See `DESIGN.md` for the system inventory and the experiment index
//! (E1–E14), and `EXPERIMENTS.md` for measured results.
//!
//! ## Quickstart
//!
//! ```
//! use mach_locking::core::{ComplexLock, ObjRef, RwData, SimpleLocked};
//!
//! // A Mach simple lock protecting data:
//! let counter = SimpleLocked::new(0u64);
//! *counter.lock() += 1;
//!
//! // A complex (readers/writer) lock with write-then-downgrade:
//! let table = RwData::new(vec![1, 2, 3], true);
//! let w = table.write();
//! let r = w.downgrade();
//! assert_eq!(r.len(), 3);
//! ```

pub use machk_core as core;
pub use machk_intr as intr;
pub use machk_ipc as ipc;
pub use machk_kernel as kernel;
pub use machk_vm as vm;
