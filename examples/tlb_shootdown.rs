//! TLB shootdown on a simulated 4-CPU machine.
//!
//! Run with `cargo run --example tlb_shootdown`.
//!
//! Section 7's one sanctioned use of interrupt-level barrier
//! synchronization: a pmap change must invalidate every CPU's cached
//! translations, with all processors entering the interrupt service
//! routine before any leaves. Includes the special-logic case — a CPU
//! spinning for the initiator's pmap lock is exempted from the barrier
//! and picks up the flush when it re-enables interrupts.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use mach_locking::intr::{BarrierOutcome, Machine};
use mach_locking::vm::{PageId, TlbSystem};

fn main() {
    let machine = Arc::new(Machine::new(4));
    let tlb = Arc::new(TlbSystem::new(Arc::clone(&machine), 2));
    let stage = Arc::new(AtomicUsize::new(0));

    machine.run(|cpu| {
        // Everyone caches translations for pmap 0.
        tlb.cache_translation(0, 0xA000, PageId(1));
        tlb.cache_translation(1, 0xB000, PageId(2)); // unrelated pmap
        stage.fetch_add(1, Ordering::SeqCst);
        while stage.load(Ordering::SeqCst) < 4 {
            cpu.poll();
            core::hint::spin_loop();
        }

        if cpu.id() == 0 {
            // The initiator: change pmap 0 and shoot down.
            let outcome = tlb.shootdown_update(0, || {}, Duration::from_secs(10));
            assert_eq!(outcome, BarrierOutcome::Completed);
            println!(
                "cpu0: shootdown completed; {} TLB entries invalidated machine-wide",
                tlb.invalidation_count()
            );
            stage.store(10, Ordering::SeqCst);
        } else {
            // Responsive CPUs: take the barrier IPI at a poll point.
            while stage.load(Ordering::SeqCst) < 10 {
                cpu.poll();
                core::hint::spin_loop();
            }
        }

        // Post-condition on every CPU: pmap 0 flushed, pmap 1 intact.
        assert_eq!(tlb.cached_translation(0, 0xA000), None);
        assert_eq!(tlb.cached_translation(1, 0xB000), Some(PageId(2)));
    });

    println!(
        "all CPUs consistent: stale(0,0xA000)={} shootdowns={}",
        tlb.stale_anywhere(0, 0xA000),
        tlb.shootdown_count()
    );
    println!("tlb_shootdown done");
}
