//! A message pipeline over ports, with rights transferred in messages.
//!
//! Run with `cargo run --example port_pipeline`.
//!
//! Builds a three-stage pipeline (source → transform → sink) where each
//! stage is a thread receiving from its port. The source discovers the
//! downstream ports by *receiving their send rights in a message* —
//! the reference-carrying property of Mach messages — and every stage
//! blocks on the section-6 event-wait mechanism inside
//! `Port::receive`.

use std::sync::Arc;

use mach_locking::core::ObjRef;
use mach_locking::ipc::{Message, Port};

const MSG_DATA: u32 = 1;
const MSG_SETUP: u32 = 2;
const MSG_EOF: u32 = 3;

fn main() {
    let source_port = Port::create_with_limit(8);
    let transform_port = Port::create_with_limit(8);
    let sink_port = Port::create_with_limit(8);

    // Hand the source the downstream rights *through its own port*:
    // rights move inside messages, references and all.
    source_port
        .send(
            Message::new(MSG_SETUP)
                .with_port_right(transform_port.clone())
                .with_port_right(sink_port.clone()),
        )
        .unwrap();
    assert_eq!(
        ObjRef::ref_count(&transform_port),
        2,
        "message holds a right"
    );

    let total = 1_000u64;
    std::thread::scope(|s| {
        // Stage 1: source.
        let sp = source_port.clone();
        s.spawn(move || {
            let mut setup = sp.receive().unwrap();
            assert_eq!(setup.id(), MSG_SETUP);
            let transform = setup.take_port_right(0).unwrap();
            let _sink = setup.take_port_right(0).unwrap(); // not used here
            for i in 0..total {
                transform.send(Message::new(MSG_DATA).with_int(i)).unwrap();
            }
            transform.send(Message::new(MSG_EOF)).unwrap();
        });

        // Stage 2: transform (doubles each value).
        let tp = transform_port.clone();
        let sk = sink_port.clone();
        s.spawn(move || loop {
            let msg = tp.receive().unwrap();
            match msg.id() {
                MSG_DATA => {
                    let v = msg.int_at(0).unwrap();
                    sk.send(Message::new(MSG_DATA).with_int(v * 2)).unwrap();
                }
                MSG_EOF => {
                    sk.send(Message::new(MSG_EOF)).unwrap();
                    break;
                }
                _ => unreachable!(),
            }
        });

        // Stage 3: sink.
        let sk = sink_port.clone();
        let sum = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let sum2 = Arc::clone(&sum);
        let sink = s.spawn(move || {
            loop {
                let msg = sk.receive().unwrap();
                match msg.id() {
                    MSG_DATA => {
                        sum2.fetch_add(
                            msg.int_at(0).unwrap(),
                            std::sync::atomic::Ordering::Relaxed,
                        );
                    }
                    MSG_EOF => break,
                    _ => unreachable!(),
                }
            }
            sum2.load(std::sync::atomic::Ordering::Relaxed)
        });

        let got = sink.join().unwrap();
        let expect = (0..total).map(|i| i * 2).sum::<u64>();
        println!("pipeline: sum of doubled 0..{total} = {got} (expected {expect})");
        assert_eq!(got, expect);
    });

    // Tear down: destroy the ports; queued rights (none left) released.
    source_port.destroy().unwrap();
    transform_port.destroy().unwrap();
    sink_port.destroy().unwrap();
    println!(
        "ports dead; remaining references: source={}, transform={}, sink={}",
        ObjRef::ref_count(&source_port),
        ObjRef::ref_count(&transform_port),
        ObjRef::ref_count(&sink_port)
    );
    println!("port_pipeline done");
}
