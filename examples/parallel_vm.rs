//! Parallel VM operations on one map, and the wired-memory deadlock.
//!
//! Run with `cargo run --example parallel_vm`.
//!
//! Part 1: concurrent faults on distinct ranges of one map, all under
//! the map's sleepable complex lock (readers in parallel).
//! Part 2: the section-7.1 experiment — wiring memory under a
//! recursive read lock deadlocks when the pageout daemon needs the
//! map's write lock; the rewritten `vm_map_pageable` completes.

use std::sync::Arc;
use std::time::Duration;

use mach_locking::vm::{
    vm_map_pageable_recursive, vm_map_pageable_rewritten, MapError, PageOutDaemon, PagePool, VmMap,
    WireScenario, PAGE_SIZE,
};

fn main() {
    // ---- Part 1: parallel faults ------------------------------------------
    let pool = Arc::new(PagePool::new(128));
    let map = Arc::new(VmMap::new(Arc::clone(&pool)));
    map.allocate(0, 128 * PAGE_SIZE).expect("allocate");
    std::thread::scope(|s| {
        for t in 0..4usize {
            let map = Arc::clone(&map);
            s.spawn(move || {
                for i in 0..32u64 {
                    let addr = (t as u64 * 32 + i) * PAGE_SIZE;
                    map.fault(addr, None).expect("fault");
                }
            });
        }
    });
    println!(
        "parallel faults: {} pages resident, {} frames free",
        map.resident_total(),
        pool.free_count()
    );

    // ---- Part 2: the vm_map_pageable story ---------------------------------
    // Recursive form under shortage with a pageout daemon: deadlock
    // (observed via the bounded wait).
    let scenario = WireScenario::build(8, 8);
    let daemon = PageOutDaemon::start(Arc::clone(&scenario.map), 4);
    let r = vm_map_pageable_recursive(
        &scenario.map,
        scenario.target_start,
        scenario.wire_pages,
        Duration::from_millis(400),
    );
    match r {
        Err(MapError::ShortageTimeout) => {
            println!(
                "recursive vm_map_pageable: DEADLOCK under memory shortage (as the paper reports)"
            )
        }
        other => println!("recursive vm_map_pageable: unexpected {other:?}"),
    }
    daemon.stop();

    // Rewritten form, same shortage: completes, the daemon reclaims.
    let scenario = WireScenario::build(8, 8);
    let daemon = PageOutDaemon::start(Arc::clone(&scenario.map), 4);
    vm_map_pageable_rewritten(
        &scenario.map,
        scenario.target_start,
        scenario.wire_pages,
        Duration::from_secs(30),
    )
    .expect("the rewrite eliminates the deadlock");
    let entry = scenario.map.lookup(scenario.target_start).unwrap();
    println!(
        "rewritten vm_map_pageable: wired {} pages; daemon reclaimed {} donor pages",
        entry.resident_count(),
        daemon.stop()
    );
    println!("parallel_vm done");

    // With `--features obs`, end with the lockstat view of the run —
    // the vm_map lock's reader parallelism and the §7.1 write-lock
    // contention show up as numbers instead of anecdotes.
    #[cfg(feature = "obs")]
    {
        println!();
        print!("{}", machk_obs::Lockstat::collect().render_text(8, false));
    }
}
