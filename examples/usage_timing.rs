//! The usage-timing subsystem: coordination without locks.
//!
//! Run with `cargo run --example usage_timing`.
//!
//! Paper §2 singles out one place where Mach coordinates without
//! multiprocessor locking: the per-processor timer cells of the usage
//! timing subsystem, each written by exactly one processor. This
//! example drives a 2-vCPU machine whose clock interrupts tick the
//! timers while an unbound observer thread reads consistent totals the
//! whole time.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use mach_locking::intr::{Machine, SplLevel, TimeKind, TimerBank};

fn main() {
    let machine = Arc::new(Machine::new(2));
    let bank = Arc::new(TimerBank::new(2));
    let stop = Arc::new(AtomicBool::new(false));
    const TICKS: usize = 50_000;

    std::thread::scope(|s| {
        // An observer with no CPU binding: reads must always be
        // consistent snapshots (user_us == 10 * ticks on every CPU).
        {
            let bank = Arc::clone(&bank);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut reads = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for cpu in 0..2 {
                        let snap = bank.read_cpu(cpu);
                        assert_eq!(
                            snap.user_us,
                            10 * snap.ticks,
                            "reader observed a torn timer"
                        );
                    }
                    reads += 1;
                }
                println!("observer performed {reads} consistent reads");
            });
        }

        // The vCPUs: clock interrupts drive the ticks, the handler
        // running on the owning CPU (the single writer).
        let bank2 = Arc::clone(&bank);
        let machine2 = Arc::clone(&machine);
        s.spawn(move || {
            machine2.run(|cpu| {
                for _ in 0..TICKS {
                    let bank = Arc::clone(&bank2);
                    cpu.post_interrupt(SplLevel::SplClock, move || {
                        bank.tick_current(TimeKind::User, 10);
                    });
                    cpu.poll();
                }
            });
            stop.store(true, Ordering::Relaxed);
        });
    });

    let totals = bank.totals();
    println!(
        "ticks = {} (expected {}), user time = {} us — no locks taken on the tick path",
        totals.ticks,
        2 * TICKS,
        totals.user_us
    );
    assert_eq!(totals.ticks, 2 * TICKS as u64);
    println!("usage_timing done");
}
