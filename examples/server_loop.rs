//! A kernel-style server loop over a port set.
//!
//! Run with `cargo run --example server_loop`.
//!
//! The canonical Mach server structure: one thread blocks on a *port
//! set* and services whichever object port has traffic, using the
//! MiG-style dispatch table. Demonstrates port sets, reply ports
//! carried as rights inside request messages, and clean shutdown of
//! the whole arrangement.

use std::sync::Arc;

use mach_locking::core::{Kobj, ObjRef};
use mach_locking::ipc::{DispatchTable, KernError, Message, Port, PortSet, RefSemantics, RpcStats};

type Counter = Kobj<u64>;

const OP_ADD: u32 = 1;
const OP_STOP: u32 = 99;

fn main() {
    // Three counter objects, each behind its own port, all serviced by
    // one port set.
    let mut table = DispatchTable::new();
    table.register::<Counter>(OP_ADD, |c, msg| {
        let d = msg.int_at(0).ok_or(KernError::InvalidArgument)?;
        let v = c.with_active(|n| {
            *n += d;
            *n
        })?;
        Ok(Message::new(OP_ADD).with_int(v))
    });
    let table = Arc::new(table);

    let set = PortSet::create();
    let counters: Vec<ObjRef<Counter>> = (0..3).map(|_| Kobj::create(0u64)).collect();
    let ports: Vec<ObjRef<Port>> = counters
        .iter()
        .map(|c| {
            let p = Port::create_with_limit(16);
            p.set_kernel_object(c.clone().into_dyn());
            set.add(p.clone()).unwrap();
            p
        })
        .collect();

    let stats = RpcStats::new();
    std::thread::scope(|s| {
        // The server: one blocking point for all three objects.
        let set2 = set.clone();
        let table2 = Arc::clone(&table);
        let stats = &stats;
        let server = s.spawn(move || {
            let mut served = 0u64;
            loop {
                let (mut request, from) = set2.receive().expect("set alive");
                if request.id() == OP_STOP {
                    return served;
                }
                // The request carries its reply port as a right.
                let reply_port = request.take_port_right(1).expect("reply right");
                // Service against the port the message arrived on:
                // translation + dispatch + reference bookkeeping.
                let reply = match table2.msg_rpc(&from, request, RefSemantics::Mach30, stats) {
                    Ok(r) => r,
                    Err(e) => Message::new(0).with_bytes(format!("{e}").into_bytes()),
                };
                reply_port.send(reply).expect("client waits");
                served += 1;
            }
        });

        // Three clients, each hammering its own counter.
        for (i, port) in ports.iter().enumerate() {
            let port = port.clone();
            s.spawn(move || {
                let reply_port = Port::create();
                for k in 1..=100u64 {
                    port.send(
                        Message::new(OP_ADD)
                            .with_int(1)
                            .with_port_right(reply_port.clone()),
                    )
                    .unwrap();
                    let reply = reply_port.receive().unwrap();
                    assert_eq!(reply.int_at(0), Some(k), "counter {i} monotone");
                }
            });
        }

        // Stop the server once every counter reaches 100 (all clients
        // done); the stop message arrives through a member port like any
        // other traffic.
        let ports2: Vec<_> = ports.to_vec();
        let counters2: Vec<_> = counters.to_vec();
        s.spawn(move || loop {
            let done = counters2.iter().all(|c| c.with_state(|n| *n) >= 100);
            if done {
                ports2[0].send(Message::new(OP_STOP)).unwrap();
                return;
            }
            std::thread::yield_now();
        });

        let served = server.join().unwrap();
        println!("server serviced {served} requests across 3 object ports");
    });

    for (i, c) in counters.iter().enumerate() {
        println!("counter {i} = {}", c.with_state(|n| *n));
        assert_eq!(c.with_state(|n| *n), 100);
    }
    assert!(stats.balanced(), "reference ledger balanced");
    set.destroy().unwrap();
    println!("server_loop done");
}
