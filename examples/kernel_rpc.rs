//! Kernel operations as message RPCs, and the four-step shutdown.
//!
//! Run with `cargo run --example kernel_rpc`.
//!
//! Reproduces the section-10 sequence end to end: a task is exported
//! through a port; clients invoke `task_suspend`/`task_info` by
//! message id; concurrent workers hammer the task while a terminator
//! runs the shutdown protocol; every late operation fails cleanly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mach_locking::ipc::{Message, RefSemantics, RpcError, RpcStats};
use mach_locking::kernel::{
    kernel_dispatch_table, op_ids, ops::create_task_with_port, shutdown::shutdown_task,
    TaskRefExt as _,
};

fn main() {
    let table = Arc::new(kernel_dispatch_table());
    let (task, port) = create_task_with_port();
    let stats = RpcStats::new();

    // A couple of threads in the task, created directly.
    for _ in 0..3 {
        task.thread_create().expect("task is alive");
    }

    // A kernel RPC: message in, reply out (the MiG pair).
    let reply = table
        .msg_rpc(
            &port,
            Message::new(op_ids::TASK_INFO),
            RefSemantics::Mach30,
            &stats,
        )
        .expect("task_info");
    println!(
        "task_info -> threads={} suspend_count={}",
        reply.int_at(0).unwrap(),
        reply.int_at(1).unwrap()
    );

    // Workers race operations against a shutdown.
    let completed = AtomicU64::new(0);
    let refused = AtomicU64::new(0);
    std::thread::scope(|s| {
        for _ in 0..4 {
            let table = Arc::clone(&table);
            let port = port.clone();
            let (completed, refused, stats) = (&completed, &refused, &stats);
            s.spawn(move || {
                for _ in 0..5_000 {
                    match table.msg_rpc(
                        &port,
                        Message::new(op_ids::TASK_SUSPEND),
                        RefSemantics::Mach30,
                        stats,
                    ) {
                        Ok(_) => completed.fetch_add(1, Ordering::Relaxed),
                        Err(RpcError::Operation(_)) | Err(RpcError::Port(_)) => {
                            refused.fetch_add(1, Ordering::Relaxed)
                        }
                        Err(e) => panic!("unexpected rpc error: {e}"),
                    };
                }
            });
        }
        // The terminator: the four-step shutdown of section 10.
        let port = port.clone();
        let task_for_shutdown = task.clone();
        s.spawn(move || {
            let task = task_for_shutdown;
            std::thread::yield_now();
            shutdown_task(&port, task).expect("sole terminator");
            println!("shutdown: object deactivated, translation disabled, state torn down");
        });
        drop(task);
    });

    println!(
        "operations: {} completed, {} refused cleanly after shutdown",
        completed.load(Ordering::Relaxed),
        refused.load(Ordering::Relaxed)
    );
    assert!(stats.balanced(), "every translated reference was released");
    assert!(port.kernel_object().is_err(), "port no longer translates");
    println!("reference ledger balanced; kernel_rpc done");
}
