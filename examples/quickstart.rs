//! Quickstart: a tour of the Mach coordination toolkit.
//!
//! Run with `cargo run --example quickstart`.
//!
//! Walks the four mechanisms of the paper in order: simple locks
//! (section 4 / Appendix A), complex locks (section 4 / Appendix B),
//! event wait (section 6), and references + deactivation (sections
//! 8–9).

use mach_locking::core::{
    lock::{lock_done, lock_read, lock_write}, // Appendix-B style free functions
    sync::{simple_lock, simple_unlock},       // Appendix-A style free functions
    ComplexLock,
    Kobj,
    ObjRef,
    RawSimpleLock,
    RwData,
    SimpleLocked,
};

fn main() {
    // ---- 1. Simple locks -------------------------------------------------
    // The raw, Appendix-A shape: a lock with no attached data.
    let raw = RawSimpleLock::new();
    simple_lock(&raw);
    // ... critical section ...
    simple_unlock(&raw);

    // The idiomatic shape: lock the data, not the code.
    let counter = SimpleLocked::new(0u64);
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                for _ in 0..10_000 {
                    *counter.lock() += 1;
                }
            });
        }
    });
    println!(
        "simple lock: 4 threads x 10k increments = {}",
        *counter.lock()
    );

    // ---- 2. Complex locks -------------------------------------------------
    // Readers share; writers exclude; writers have priority.
    let table = RwData::new(vec![1u32, 2, 3], true);
    {
        let r1 = table.read();
        let r2 = table.read();
        println!(
            "complex lock: two readers see len {} and {}",
            r1.len(),
            r2.len()
        );
    }
    // The paper's recommended write-then-downgrade idiom:
    {
        let mut w = table.write();
        w.push(4);
        let r = w.downgrade(); // cannot fail
        println!("complex lock: wrote then downgraded; len = {}", r.len());
    }
    // The Appendix-B functions on a bare lock:
    let lk = ComplexLock::new(true);
    lock_read(&lk);
    lock_done(&lk);
    lock_write(&lk);
    lock_done(&lk);

    // ---- 3. Event wait ----------------------------------------------------
    // assert_wait / thread_block / thread_wakeup: the split protocol that
    // closes the lost-wakeup race.
    use mach_locking::core::{assert_wait, thread_block, thread_wakeup, Event};
    let ready = SimpleLocked::new(false);
    let ev = Event::from_addr(&ready);
    std::thread::scope(|s| {
        s.spawn(|| loop {
            {
                let mut g = ready.lock();
                if *g {
                    *g = false;
                    break;
                }
                assert_wait(ev, false); // declare first...
            } // ...release the lock...
            thread_block(); // ...then block (no-op if already woken)
        });
        {
            *ready.lock() = true;
        }
        let woken = thread_wakeup(ev);
        println!("event wait: woke {woken} waiter(s) (0 is fine — it saw the flag first)");
    });

    // ---- 4. References and deactivation ------------------------------------
    // An object is created with a single reference; clones take more;
    // destruction happens exactly at count zero. Deactivation kills the
    // object but not the data structure.
    let thread_obj: ObjRef<Kobj<u32>> = Kobj::create(7);
    let extra = thread_obj.clone();
    println!(
        "refcount: {} references outstanding",
        ObjRef::ref_count(&thread_obj)
    );
    thread_obj.deactivate().expect("first terminator wins");
    match extra.with_active(|v| *v) {
        Err(e) => println!("deactivated object refuses operations: {e}"),
        Ok(_) => unreachable!(),
    }
    // The data structure is still valid while references exist:
    println!(
        "...but its data structure survives: value = {}",
        extra.with_state(|v| *v)
    );
    drop(thread_obj);
    drop(extra); // destroyed here, at count zero

    println!("quickstart done");
}
